"""Derived symbolic operations: lexicographic order maps.

The pipeline algebra of the paper repeatedly relates points of one space by
lexicographic order (the ``D'`` map of Section 4.1, the ``lexleset`` of
Section 4.2).  A lexicographic comparison ``x < y`` over ``d`` dimensions is
the union of ``d`` basic maps — one per position of the first strict
difference — which is exactly how these builders assemble it.
"""

from __future__ import annotations

from . import cache
from .basic_map import BasicMap
from .constraint import Constraint
from .imap import Map
from .space import MapSpace, Space


def _piece(space: Space, strict_at: int, strict: bool) -> BasicMap:
    """The basic map ``x_0=y_0, …, x_{k-1}=y_{k-1}, x_k (<|<=) y_k``."""
    n = space.ndim
    mspace = MapSpace(space, space)
    cons: list[Constraint] = []
    for j in range(strict_at):
        coeffs = [0] * (2 * n)
        coeffs[j] = 1
        coeffs[n + j] = -1
        cons.append(Constraint.eq(tuple(coeffs), 0))
    coeffs = [0] * (2 * n)
    coeffs[strict_at] = -1
    coeffs[n + strict_at] = 1
    # y_k - x_k >= 1 (strict) or >= 0 (final non-strict piece)
    cons.append(Constraint.ge(tuple(coeffs), -1 if strict else 0))
    return BasicMap(mspace, tuple(cons))


def lex_lt_map(space: Space) -> Map:
    """``{ x -> y : x <lex y }`` over ``space``."""
    return cache.memoized(
        "ops.lex_lt_map",
        lambda: Map(
            MapSpace(space, space),
            tuple(_piece(space, k, strict=True) for k in range(space.ndim)),
        ),
        space,
    )


def lex_le_map(space: Space) -> Map:
    """``{ x -> y : x <=lex y }`` over ``space``."""
    return cache.memoized(
        "ops.lex_le_map", lambda: _lex_le_map(space), space
    )


def _lex_le_map(space: Space) -> Map:
    n = space.ndim
    pieces = [_piece(space, k, strict=True) for k in range(n - 1)]
    pieces.append(_piece(space, n - 1, strict=False))
    return Map(MapSpace(space, space), tuple(pieces))


def lex_gt_map(space: Space) -> Map:
    return lex_lt_map(space).inverse()


def lex_ge_map(space: Space) -> Map:
    return lex_le_map(space).inverse()
