"""Enumeration of bounded integer sets into NumPy point arrays.

This bridges the symbolic layer (constraint systems) and the explicit layer
(:mod:`repro.presburger.explicit`): a bounded :class:`BasicSet` is scanned
level by level, with per-level rational bounds obtained by Fourier–Motzkin
elimination, and the resulting candidate points filtered exactly against the
original constraints.  All per-level work is vectorized over the set of
partial prefixes, following the HPC guides' "no Python loops over points"
rule.
"""

from __future__ import annotations

import numpy as np

from . import cache
from .basic_set import BasicSet
from .constraint import Constraint, Kind
from .iset import Set


class UnboundedSetError(ValueError):
    """Enumeration was asked for a set with an unbounded dimension."""


def _as_inequalities(constraints: tuple[Constraint, ...]) -> list[Constraint]:
    """Replace each equality by the two opposite inequalities."""
    out: list[Constraint] = []
    for c in constraints:
        if c.kind is Kind.EQ:
            out.append(Constraint.ge(c.coeffs, c.const))
            out.append(Constraint.ge(tuple(-a for a in c.coeffs), -c.const))
        else:
            out.append(c)
    return out


def _eliminate_last(cons: list[Constraint], ncols: int) -> list[Constraint]:
    """Fourier–Motzkin elimination of the last column (exact integers)."""
    lowers, uppers, rest = [], [], []
    for c in cons:
        a = c.coeffs[ncols - 1]
        if a > 0:
            lowers.append(c)
        elif a < 0:
            uppers.append(c)
        else:
            rest.append(Constraint.ge(c.coeffs[: ncols - 1], c.const))
    combined: set[tuple[tuple[int, ...], int]] = set()
    for lo in lowers:
        al = lo.coeffs[ncols - 1]
        for up in uppers:
            au = -up.coeffs[ncols - 1]
            coeffs = tuple(
                au * cl + al * cu
                for cl, cu in zip(lo.coeffs[: ncols - 1], up.coeffs[: ncols - 1])
            )
            const = au * lo.const + al * up.const
            combined.add((coeffs, const))
    out = rest + [Constraint.ge(c, k).normalized() for c, k in combined]
    # Deduplicate to contain FM blowup.
    seen: set[tuple[tuple[int, ...], int]] = set()
    deduped: list[Constraint] = []
    for c in out:
        key = (c.coeffs, c.const)
        if key not in seen and not c.is_trivial():
            seen.add(key)
            deduped.append(c)
    return deduped


def enumerate_basic_set(bs: BasicSet) -> np.ndarray:
    """All integer points of a bounded basic set, lexicographically sorted.

    Existential columns are scanned too, then projected away with
    deduplication, so sets whose divs encode floor divisions enumerate
    correctly.  Raises :class:`UnboundedSetError` when a scanned column has
    no finite rational bound.

    Results are memoized; the returned array is marked read-only because
    cache hits share one array across callers.
    """
    return cache.memoized(
        "enumeration.basic_set", lambda: _frozen(_enumerate_basic_set(bs)), bs
    )


def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


def _enumerate_basic_set(bs: BasicSet) -> np.ndarray:
    ncols = bs.ncols
    if ncols == 0:
        return np.zeros((1, 0), dtype=np.int64)

    ineqs = _as_inequalities(bs.constraints)
    # Per-level systems via successive FM elimination from the last column.
    levels: list[list[Constraint]] = [[] for _ in range(ncols)]
    current = [c.padded(ncols) for c in ineqs]
    for k in range(ncols - 1, -1, -1):
        levels[k] = current
        if k > 0:
            current = _eliminate_last(current, k + 1)
            if any(c.is_contradiction() for c in current):
                return np.zeros((0, bs.ndim), dtype=np.int64)

    prefixes = np.zeros((1, 0), dtype=np.int64)
    for k in range(ncols):
        lows, ups = [], []
        for c in levels[k]:
            a = c.coeffs[k]
            head = np.asarray(c.coeffs[:k], dtype=np.int64)
            if a > 0:
                lows.append((a, head, c.const))
            elif a < 0:
                ups.append((a, head, c.const))
        if not lows or not ups:
            raise UnboundedSetError(
                f"column {k} of {bs} has no finite bound"
            )
        n = prefixes.shape[0]
        if n == 0:
            return np.zeros((0, bs.ndim), dtype=np.int64)
        lb = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
        ub = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        for a, head, const in lows:
            # a*x_k >= -(head·prefix + const); x_k >= ceil(rhs / a)
            rhs = -(prefixes @ head + const)
            np.maximum(lb, -((-rhs) // a), out=lb)
        for a, head, const in ups:
            # a*x_k >= -(head·prefix + const) with a < 0; x_k <= floor(rhs/-a)
            rhs = prefixes @ head + const
            np.minimum(ub, rhs // (-a), out=ub)
        counts = np.clip(ub - lb + 1, 0, None)
        total = int(counts.sum())
        if total == 0:
            return np.zeros((0, bs.ndim), dtype=np.int64)
        rows = np.repeat(np.arange(n), counts)
        starts = np.repeat(lb, counts)
        # offset within each run: global arange minus run start index
        run_starts = np.repeat(np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        values = starts + (np.arange(total) - run_starts)
        prefixes = np.concatenate(
            [prefixes[rows], values[:, None]], axis=1
        )

    # Exact integral filter against original constraints (incl. equalities).
    if bs.constraints:
        keep = np.ones(prefixes.shape[0], dtype=bool)
        for c in bs.constraints:
            vals = prefixes @ np.asarray(c.coeffs, dtype=np.int64) + c.const
            keep &= (vals == 0) if c.kind is Kind.EQ else (vals >= 0)
        prefixes = prefixes[keep]

    pts = prefixes[:, : bs.ndim]
    if bs.n_div:
        pts = np.unique(pts, axis=0)
    else:
        pts = _lexsorted(pts)
    return np.ascontiguousarray(pts)


def enumerate_set(s: Set) -> np.ndarray:
    """All integer points of a bounded set union, sorted and deduplicated."""
    chunks = [enumerate_basic_set(bs) for bs in s.pieces]
    chunks = [c for c in chunks if c.shape[0]]
    if not chunks:
        return np.zeros((0, s.ndim), dtype=np.int64)
    return np.unique(np.concatenate(chunks, axis=0), axis=0)


def _lexsorted(arr: np.ndarray) -> np.ndarray:
    if arr.shape[0] <= 1:
        return arr
    order = np.lexsort(arr.T[::-1])
    return arr[order]
