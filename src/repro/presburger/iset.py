"""Unions of basic sets (``isl_set`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from . import cache
from .basic_set import BasicSet
from .space import Space


@cache.register_internable
@dataclass(frozen=True)
class Set:
    """A finite union of :class:`BasicSet` pieces over one space."""

    space: Space
    pieces: tuple[BasicSet, ...] = ()

    def __post_init__(self) -> None:
        for bs in self.pieces:
            if bs.ndim != self.space.ndim:
                raise ValueError("piece dimensionality mismatch")

    def __hash__(self) -> int:  # structural hash, computed once
        try:
            return self._hash
        except AttributeError:
            h = hash((self.space, self.pieces))
            object.__setattr__(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Set:
            return NotImplemented
        return self.space == other.space and self.pieces == other.pieces

    # ------------------------------------------------------------------
    @staticmethod
    def from_basic(bs: BasicSet) -> "Set":
        return Set(bs.space, (bs,))

    @staticmethod
    def empty(space: Space) -> "Set":
        return Set(space, ())

    @staticmethod
    def universe(space: Space) -> "Set":
        return Set(space, (BasicSet.universe(space),))

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return self.space.ndim

    def union(self, other: "Set") -> "Set":
        if other.ndim != self.ndim:
            raise ValueError("cannot union sets of different dimensionality")
        if not other.pieces:
            cache.count_trivial("Set.union")
            return self
        if not self.pieces:
            cache.count_trivial("Set.union")
            return Set(self.space, other.pieces)
        return Set(self.space, self.pieces + other.pieces)

    def intersect(self, other: "Set") -> "Set":
        if not self.pieces or not other.pieces:
            cache.count_trivial("Set.intersect")
            return Set(self.space, ())
        return cache.memoized(
            "Set.intersect", lambda: self._intersect(other), self, other
        )

    def _intersect(self, other: "Set") -> "Set":
        out = tuple(
            a.intersect(b)
            for a in self.pieces
            for b in other.pieces
        )
        return Set(self.space, out)

    def map_pieces(self, fn: Callable[[BasicSet], BasicSet]) -> "Set":
        return Set(self.space, tuple(fn(bs) for bs in self.pieces))

    def fix(self, values: Mapping[int, int]) -> "Set":
        return self.map_pieces(lambda bs: bs.fix(values))

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return all(bs.is_empty() for bs in self.pieces)

    def contains(self, point: Sequence[int]) -> bool:
        return any(bs.contains(point) for bs in self.pieces)

    def sample(self) -> tuple[int, ...] | None:
        for bs in self.pieces:
            pt = bs.sample()
            if pt is not None:
                return pt
        return None

    def lexmin(self) -> tuple[int, ...] | None:
        best: tuple[int, ...] | None = None
        for bs in self.pieces:
            pt = bs.lexmin()
            if pt is not None and (best is None or pt < best):
                best = pt
        return best

    def lexmax(self) -> tuple[int, ...] | None:
        best: tuple[int, ...] | None = None
        for bs in self.pieces:
            pt = bs.lexmax()
            if pt is not None and (best is None or pt > best):
                best = pt
        return best

    def dim_bounds(self, col: int) -> tuple[int | None, int | None]:
        lo: int | None = None
        hi: int | None = None
        nonempty = False
        for bs in self.pieces:
            blo, bhi = bs.dim_bounds(col)
            if (blo, bhi) == (0, -1):  # empty piece
                continue
            nonempty = True
            lo = blo if (lo is None or blo is None or blo < lo) else lo
            if blo is None:
                lo = None
            hi = bhi if (hi is None or bhi is None or bhi > hi) else hi
            if bhi is None:
                hi = None
        if not nonempty:
            return (0, -1)
        return lo, hi

    def coalesce(self) -> "Set":
        """Drop empty pieces (a lightweight stand-in for isl's coalesce)."""
        if not self.pieces:
            cache.count_trivial("Set.coalesce")
            return self
        return cache.memoized(
            "Set.coalesce",
            lambda: Set(
                self.space,
                tuple(bs for bs in self.pieces if not bs.is_empty()),
            ),
            self,
        )

    def __iter__(self) -> Iterable[BasicSet]:
        return iter(self.pieces)

    # -- operator sugar ----------------------------------------------------
    def __or__(self, other: "Set") -> "Set":
        return self.union(other)

    def __and__(self, other: "Set") -> "Set":
        return self.intersect(other)

    def __sub__(self, other: "Set") -> "Set":
        from .algebra import subtract

        return subtract(self, other)

    def __le__(self, other: "Set") -> bool:
        from .algebra import is_subset

        return is_subset(self, other)

    def __contains__(self, point) -> bool:
        return self.contains(tuple(point))

    def __str__(self) -> str:
        if not self.pieces:
            return f"{{ {self.space} : false }}"
        return " ∪ ".join(str(bs) for bs in self.pieces)
