"""Positional affine constraints.

A :class:`Constraint` is a linear inequality or equality over the *columns*
of a basic set: the set dimensions followed by any existentially quantified
dimensions.  Coefficients are exact Python integers.

The normal forms are::

    coeffs · x + const >= 0      (kind = GE)
    coeffs · x + const == 0      (kind = EQ)

matching ISL's internal representation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from . import cache


class Kind(Enum):
    GE = ">="
    EQ = "="


@cache.register_internable
@dataclass(frozen=True)
class Constraint:
    """``coeffs · x + const (>=|==) 0`` over positional columns."""

    coeffs: tuple[int, ...]
    const: int
    kind: Kind = Kind.GE

    def __hash__(self) -> int:  # structural hash, computed once
        try:
            return self._hash
        except AttributeError:
            h = hash((self.coeffs, self.const, self.kind))
            object.__setattr__(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Constraint:
            return NotImplemented
        return (
            self.const == other.const
            and self.kind is other.kind
            and self.coeffs == other.coeffs
        )

    # ------------------------------------------------------------------
    @staticmethod
    def ge(coeffs: Sequence[int], const: int) -> "Constraint":
        return Constraint(tuple(int(c) for c in coeffs), int(const), Kind.GE)

    @staticmethod
    def eq(coeffs: Sequence[int], const: int) -> "Constraint":
        return Constraint(tuple(int(c) for c in coeffs), int(const), Kind.EQ)

    # ------------------------------------------------------------------
    @property
    def ncols(self) -> int:
        return len(self.coeffs)

    def is_trivial(self) -> bool:
        """True for constraints with no variables that always hold."""
        if any(self.coeffs):
            return False
        return self.const == 0 if self.kind is Kind.EQ else self.const >= 0

    def is_contradiction(self) -> bool:
        """True for constraints with no variables that never hold."""
        if any(self.coeffs):
            return False
        return self.const != 0 if self.kind is Kind.EQ else self.const < 0

    def satisfied(self, point: Sequence[int]) -> bool:
        value = self.const + sum(c * x for c, x in zip(self.coeffs, point))
        return value == 0 if self.kind is Kind.EQ else value >= 0

    # ------------------------------------------------------------------
    def padded(self, ncols: int) -> "Constraint":
        """Extend with zero coefficients up to ``ncols`` columns."""
        if ncols < self.ncols:
            raise ValueError("cannot shrink a constraint")
        return Constraint(
            self.coeffs + (0,) * (ncols - self.ncols), self.const, self.kind
        )

    def shifted(self, offset: int, ncols: int) -> "Constraint":
        """Re-embed into ``ncols`` columns with variables moved by ``offset``."""
        coeffs = [0] * ncols
        for k, c in enumerate(self.coeffs):
            coeffs[k + offset] = c
        return Constraint(tuple(coeffs), self.const, self.kind)

    def permuted(self, perm: Sequence[int], ncols: int | None = None) -> "Constraint":
        """Place old column ``k`` at new column ``perm[k]``."""
        n = ncols if ncols is not None else self.ncols
        coeffs = [0] * n
        for k, c in enumerate(self.coeffs):
            if c:
                coeffs[perm[k]] = c
        return Constraint(tuple(coeffs), self.const, self.kind)

    def normalized(self) -> "Constraint":
        """Divide by the gcd of all coefficients (tightening inequalities).

        For an inequality ``g·a·x + c >= 0`` with ``g = gcd(a)`` the
        equivalent integer constraint is ``a·x + floor(c/g) >= 0``.
        """
        g = 0
        for c in self.coeffs:
            g = math.gcd(g, abs(c))
        if g in (0, 1):
            return self
        if self.kind is Kind.EQ:
            if self.const % g != 0:
                # Unsatisfiable over the integers; keep a canonical
                # contradiction so emptiness checks see it.
                return Constraint((0,) * self.ncols, -1, Kind.GE)
            return Constraint(
                tuple(c // g for c in self.coeffs), self.const // g, Kind.EQ
            )
        return Constraint(
            tuple(c // g for c in self.coeffs), self.const // g, Kind.GE
        )

    def negated_ge(self) -> "Constraint":
        """Integer negation of an inequality: ``not (e >= 0)`` is ``-e-1 >= 0``."""
        if self.kind is Kind.EQ:
            raise ValueError("cannot negate an equality into a single constraint")
        return Constraint(
            tuple(-c for c in self.coeffs), -self.const - 1, Kind.GE
        )

    def __str__(self) -> str:
        terms = []
        for k, c in enumerate(self.coeffs):
            if c:
                terms.append(f"{c:+d}*x{k}")
        lhs = " ".join(terms) if terms else "0"
        return f"{lhs} {self.const:+d} {self.kind.value} 0"
