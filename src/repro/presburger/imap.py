"""Unions of basic maps (``isl_map`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from . import cache
from .basic_map import BasicMap
from .basic_set import BasicSet
from .iset import Set
from .space import MapSpace


@cache.register_internable
@dataclass(frozen=True)
class Map:
    """A finite union of :class:`BasicMap` pieces over one map space."""

    space: MapSpace
    pieces: tuple[BasicMap, ...] = ()

    def __post_init__(self) -> None:
        for bm in self.pieces:
            if bm.n_in != self.space.n_in or bm.n_out != self.space.n_out:
                raise ValueError("piece arity mismatch")

    def __hash__(self) -> int:  # structural hash, computed once
        try:
            return self._hash
        except AttributeError:
            h = hash((self.space, self.pieces))
            object.__setattr__(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Map:
            return NotImplemented
        return self.space == other.space and self.pieces == other.pieces

    # ------------------------------------------------------------------
    @staticmethod
    def from_basic(bm: BasicMap) -> "Map":
        return Map(bm.space, (bm,))

    @staticmethod
    def empty(space: MapSpace) -> "Map":
        return Map(space, ())

    # ------------------------------------------------------------------
    @property
    def n_in(self) -> int:
        return self.space.n_in

    @property
    def n_out(self) -> int:
        return self.space.n_out

    def union(self, other: "Map") -> "Map":
        if not self.space.compatible(other.space):
            raise ValueError("map space mismatch")
        if not other.pieces:
            cache.count_trivial("Map.union")
            return self
        if not self.pieces:
            cache.count_trivial("Map.union")
            return Map(self.space, other.pieces)
        return Map(self.space, self.pieces + other.pieces)

    def inverse(self) -> "Map":
        return cache.memoized(
            "Map.inverse",
            lambda: Map(
                self.space.reversed(),
                tuple(p.inverse() for p in self.pieces),
            ),
            self,
        )

    def domain(self) -> Set:
        return cache.memoized(
            "Map.domain",
            lambda: Set(
                self.space.domain, tuple(p.domain() for p in self.pieces)
            ),
            self,
        )

    def range(self) -> Set:
        return cache.memoized(
            "Map.range",
            lambda: Set(
                self.space.range, tuple(p.range() for p in self.pieces)
            ),
            self,
        )

    def wrap(self) -> Set:
        return Set(self.space.wrapped(), tuple(p.wrap() for p in self.pieces))

    def after(self, other: "Map") -> "Map":
        """Composition ``self ∘ other`` (apply ``other`` first)."""
        if not self.pieces or not other.pieces:
            cache.count_trivial("Map.after")
            return Map(MapSpace(other.space.domain, self.space.range), ())
        return cache.memoized(
            "Map.after", lambda: self._after(other), self, other
        )

    def _after(self, other: "Map") -> "Map":
        out = tuple(a.after(b) for a in self.pieces for b in other.pieces)
        return Map(MapSpace(other.space.domain, self.space.range), out)

    def apply(self, s: Set) -> Set:
        if not self.pieces or not s.pieces:
            cache.count_trivial("Map.apply")
            return Set(self.space.range, ())
        return cache.memoized(
            "Map.apply",
            lambda: Set(
                self.space.range,
                tuple(p.apply(bs) for p in self.pieces for bs in s.pieces),
            ),
            self,
            s,
        )

    def intersect(self, other: "Map") -> "Map":
        if not self.pieces or not other.pieces:
            cache.count_trivial("Map.intersect")
            return Map(self.space, ())
        return cache.memoized(
            "Map.intersect",
            lambda: Map(
                self.space,
                tuple(a.intersect(b) for a in self.pieces for b in other.pieces),
            ),
            self,
            other,
        )

    def intersect_domain(self, s: Set) -> "Map":
        if not self.pieces or not s.pieces:
            cache.count_trivial("Map.intersect_domain")
            return Map(self.space, ())
        return cache.memoized(
            "Map.intersect_domain",
            lambda: Map(
                self.space,
                tuple(
                    p.intersect_domain(bs)
                    for p in self.pieces
                    for bs in s.pieces
                ),
            ),
            self,
            s,
        )

    def intersect_range(self, s: Set) -> "Map":
        if not self.pieces or not s.pieces:
            cache.count_trivial("Map.intersect_range")
            return Map(self.space, ())
        return cache.memoized(
            "Map.intersect_range",
            lambda: Map(
                self.space,
                tuple(
                    p.intersect_range(bs)
                    for p in self.pieces
                    for bs in s.pieces
                ),
            ),
            self,
            s,
        )

    def map_pieces(self, fn: Callable[[BasicMap], BasicMap]) -> "Map":
        return Map(self.space, tuple(fn(p) for p in self.pieces))

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.pieces)

    def contains(self, pair: Sequence[int]) -> bool:
        """Membership of a flattened ``(in..., out...)`` tuple."""
        return any(p.wrap().contains(pair) for p in self.pieces)

    def coalesce(self) -> "Map":
        if not self.pieces:
            cache.count_trivial("Map.coalesce")
            return self
        return cache.memoized(
            "Map.coalesce",
            lambda: Map(
                self.space,
                tuple(p for p in self.pieces if not p.is_empty()),
            ),
            self,
        )

    def __iter__(self) -> Iterable[BasicMap]:
        return iter(self.pieces)

    def __str__(self) -> str:
        if not self.pieces:
            return f"{{ {self.space} : false }}"
        return " ∪ ".join(str(p) for p in self.pieces)
