"""Unions of basic maps (``isl_map`` analogue)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .basic_map import BasicMap
from .basic_set import BasicSet
from .iset import Set
from .space import MapSpace


@dataclass(frozen=True)
class Map:
    """A finite union of :class:`BasicMap` pieces over one map space."""

    space: MapSpace
    pieces: tuple[BasicMap, ...] = ()

    def __post_init__(self) -> None:
        for bm in self.pieces:
            if bm.n_in != self.space.n_in or bm.n_out != self.space.n_out:
                raise ValueError("piece arity mismatch")

    # ------------------------------------------------------------------
    @staticmethod
    def from_basic(bm: BasicMap) -> "Map":
        return Map(bm.space, (bm,))

    @staticmethod
    def empty(space: MapSpace) -> "Map":
        return Map(space, ())

    # ------------------------------------------------------------------
    @property
    def n_in(self) -> int:
        return self.space.n_in

    @property
    def n_out(self) -> int:
        return self.space.n_out

    def union(self, other: "Map") -> "Map":
        if not self.space.compatible(other.space):
            raise ValueError("map space mismatch")
        return Map(self.space, self.pieces + other.pieces)

    def inverse(self) -> "Map":
        return Map(self.space.reversed(), tuple(p.inverse() for p in self.pieces))

    def domain(self) -> Set:
        return Set(self.space.domain, tuple(p.domain() for p in self.pieces))

    def range(self) -> Set:
        return Set(self.space.range, tuple(p.range() for p in self.pieces))

    def wrap(self) -> Set:
        return Set(self.space.wrapped(), tuple(p.wrap() for p in self.pieces))

    def after(self, other: "Map") -> "Map":
        """Composition ``self ∘ other`` (apply ``other`` first)."""
        out = tuple(a.after(b) for a in self.pieces for b in other.pieces)
        return Map(MapSpace(other.space.domain, self.space.range), out)

    def apply(self, s: Set) -> Set:
        out = tuple(p.apply(bs) for p in self.pieces for bs in s.pieces)
        return Set(self.space.range, out)

    def intersect(self, other: "Map") -> "Map":
        out = tuple(a.intersect(b) for a in self.pieces for b in other.pieces)
        return Map(self.space, out)

    def intersect_domain(self, s: Set) -> "Map":
        out = tuple(
            p.intersect_domain(bs) for p in self.pieces for bs in s.pieces
        )
        return Map(self.space, out)

    def intersect_range(self, s: Set) -> "Map":
        out = tuple(
            p.intersect_range(bs) for p in self.pieces for bs in s.pieces
        )
        return Map(self.space, out)

    def map_pieces(self, fn: Callable[[BasicMap], BasicMap]) -> "Map":
        return Map(self.space, tuple(fn(p) for p in self.pieces))

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.pieces)

    def contains(self, pair: Sequence[int]) -> bool:
        """Membership of a flattened ``(in..., out...)`` tuple."""
        return any(p.wrap().contains(pair) for p in self.pieces)

    def coalesce(self) -> "Map":
        return Map(self.space, tuple(p for p in self.pieces if not p.is_empty()))

    def __iter__(self) -> Iterable[BasicMap]:
        return iter(self.pieces)

    def __str__(self) -> str:
        if not self.pieces:
            return f"{{ {self.space} : false }}"
        return " ∪ ".join(str(p) for p in self.pieces)
