"""Exact rational linear programming.

A small, dependency-free two-phase primal simplex over
:class:`fractions.Fraction`, used as the base solver for the integer
branch-and-bound in :mod:`repro.presburger.ilp`.

The entry point :func:`solve_lp` minimizes an integer objective over free
rational variables subject to a list of
:class:`~repro.presburger.constraint.Constraint`.  Exact arithmetic keeps the
polyhedral analyses sound: no tolerance tuning, no false (in)feasibility.
Bland's anti-cycling rule guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Sequence

from .constraint import Constraint, Kind


class LPStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    status: LPStatus
    value: Fraction | None = None
    point: tuple[Fraction, ...] | None = None


def solve_lp(
    objective: Sequence[int | Fraction],
    constraints: Sequence[Constraint],
    ncols: int,
    maximize: bool = False,
) -> LPResult:
    """Minimize (or maximize) ``objective · x`` over free rational ``x``.

    Parameters
    ----------
    objective:
        Length-``ncols`` coefficient vector.
    constraints:
        Affine constraints over the same ``ncols`` columns.
    ncols:
        Number of decision variables.
    maximize:
        Maximize instead of minimize.
    """
    obj = [Fraction(c) for c in objective]
    if len(obj) != ncols:
        raise ValueError("objective length does not match ncols")
    if maximize:
        obj = [-c for c in obj]

    # Free variables are split: x_j = u_j - v_j with u, v >= 0, so the
    # standard-form problem has 2*ncols structural columns plus one slack
    # per inequality.
    n_struct = 2 * ncols
    n_slack = sum(1 for c in constraints if c.kind is Kind.GE)
    n_total = n_struct + n_slack

    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    slack_at = 0
    for con in constraints:
        if con.ncols != ncols:
            raise ValueError("constraint arity mismatch")
        row = [Fraction(0)] * n_total
        for j, a in enumerate(con.coeffs):
            row[2 * j] = Fraction(a)
            row[2 * j + 1] = Fraction(-a)
        b = Fraction(-con.const)  # a.x (>=|==) -const
        if con.kind is Kind.GE:
            row[n_struct + slack_at] = Fraction(-1)  # a.x - s = -const
            slack_at += 1
        rows.append(row)
        rhs.append(b)

    cost = [Fraction(0)] * n_total
    for j, c in enumerate(obj):
        cost[2 * j] = c
        cost[2 * j + 1] = -c

    status, value, solution = _two_phase_simplex(rows, rhs, cost)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status)
    point = tuple(solution[2 * j] - solution[2 * j + 1] for j in range(ncols))
    if maximize:
        value = -value
    return LPResult(LPStatus.OPTIMAL, value, point)


def _two_phase_simplex(
    rows: list[list[Fraction]],
    rhs: list[Fraction],
    cost: list[Fraction],
) -> tuple[LPStatus, Fraction | None, list[Fraction]]:
    """Solve ``min cost·z  s.t.  rows·z == rhs, z >= 0`` exactly."""
    m = len(rows)
    n = len(cost)
    if m == 0:
        # Unconstrained: optimum is 0 iff cost is identically zero, else the
        # problem is unbounded below (all z >= 0, pick the negative column).
        if any(c < 0 for c in cost):
            return LPStatus.UNBOUNDED, None, []
        return LPStatus.OPTIMAL, Fraction(0), [Fraction(0)] * n

    # Make rhs non-negative.
    tableau = []
    for i in range(m):
        row = list(rows[i])
        b = rhs[i]
        if b < 0:
            row = [-a for a in row]
            b = -b
        tableau.append(row + [b])

    # Phase 1: add artificial variables, minimize their sum.
    basis = list(range(n, n + m))
    for i in range(m):
        ext = [Fraction(0)] * m
        ext[i] = Fraction(1)
        tableau[i] = tableau[i][:-1] + ext + [tableau[i][-1]]
    width = n + m

    phase1_cost = [Fraction(0)] * n + [Fraction(1)] * m
    obj_row = _reduced_costs(tableau, basis, phase1_cost, width)
    if not _pivot_to_optimal(tableau, basis, obj_row, width):
        raise AssertionError("phase-1 LP cannot be unbounded")
    if -obj_row[width] > 0:  # positive artificial residue
        return LPStatus.INFEASIBLE, None, []

    # Drive any artificial variables out of the basis where possible.
    for i in range(m):
        if basis[i] >= n:
            pivot_col = next(
                (j for j in range(n) if tableau[i][j] != 0), None
            )
            if pivot_col is not None:
                _pivot(tableau, basis, i, pivot_col, width)
    # Rows still basic in an artificial variable after the pivot-out loop
    # have no structural column left to enter: they are redundant (their rhs
    # is zero at a phase-1 optimum) and are dropped.
    keep = [i for i in range(m) if basis[i] < n]
    tableau = [tableau[i] for i in keep]
    basis = [basis[i] for i in keep]

    # Phase 2 on the original columns.
    tableau = [row[:n] + [row[width]] for row in tableau]
    width = n
    phase2_cost = list(cost)
    obj_row = _reduced_costs(tableau, basis, phase2_cost, width)
    if not _pivot_to_optimal(tableau, basis, obj_row, width):
        return LPStatus.UNBOUNDED, None, []

    solution = [Fraction(0)] * n
    for i, bj in enumerate(basis):
        if bj < n:
            solution[bj] = tableau[i][width]
    value = sum(c * v for c, v in zip(cost, solution))
    return LPStatus.OPTIMAL, value, solution


def _reduced_costs(
    tableau: list[list[Fraction]],
    basis: list[int],
    cost: list[Fraction],
    width: int,
) -> list[Fraction]:
    """Objective row ``c_j - c_B · B^{-1} A_j`` with the value in the last slot."""
    obj = list(cost) + [Fraction(0)]
    for i, bj in enumerate(basis):
        cb = cost[bj]
        if cb == 0:
            continue
        row = tableau[i]
        for j in range(width):
            obj[j] -= cb * row[j]
        obj[width] -= cb * row[width]
    return obj


def _pivot_to_optimal(
    tableau: list[list[Fraction]],
    basis: list[int],
    obj_row: list[Fraction],
    width: int,
) -> bool:
    """Run primal simplex with Bland's rule.  Returns False when unbounded."""
    while True:
        enter = next((j for j in range(width) if obj_row[j] < 0), None)
        if enter is None:
            return True
        leave, best = None, None
        for i, row in enumerate(tableau):
            if row[enter] > 0:
                ratio = row[width] / row[enter]
                if (
                    best is None
                    or ratio < best
                    or (ratio == best and basis[i] < basis[leave])
                ):
                    best, leave = ratio, i
        if leave is None:
            return False
        _pivot(tableau, basis, leave, enter, width, obj_row)


def _pivot(
    tableau: list[list[Fraction]],
    basis: list[int],
    row_i: int,
    col_j: int,
    width: int,
    obj_row: list[Fraction] | None = None,
) -> None:
    """Pivot ``col_j`` into the basis at ``row_i`` (in place)."""
    pivot_row = tableau[row_i]
    p = pivot_row[col_j]
    tableau[row_i] = [a / p for a in pivot_row]
    pivot_row = tableau[row_i]
    targets = list(enumerate(tableau))
    for i, row in targets:
        if i == row_i or row[col_j] == 0:
            continue
        f = row[col_j]
        tableau[i] = [a - f * b for a, b in zip(row, pivot_row)]
    if obj_row is not None and obj_row[col_j] != 0:
        f = obj_row[col_j]
        for j in range(width + 1):
            obj_row[j] -= f * pivot_row[j]
    basis[row_i] = col_j
