"""ISL-style textual notation for sets and maps.

Parses a practical subset of ISL's set/map syntax into the symbolic layer::

    parse_set("{ S[i, j] : 0 <= i < 10 and j <= i }")
    parse_set("{ [i] : 0 <= i <= 4 or 8 <= i <= 9 }")       # unions
    parse_map("{ S[i, j] -> A[2i, j + 1] : 0 <= i, j < N }", params={"N": 8})
    parse_map("{ [i] -> [j] : 0 <= i < 4 and i <= j < 4 }")

Supported: named/unnamed tuples, affine expressions with implicit
multiplication (``2i``), chained comparisons (``0 <= i < N``), ``and`` /
``or`` (disjunctions become union pieces), ``=``/``==``, parameters
supplied as concrete integers (consistent with the instantiated analysis,
see DESIGN.md §2).  Not supported: ``exists``, ``mod``/``floordiv``,
quantifiers — the library builds such sets programmatically instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .affine import AffineExpr
from .basic_map import BasicMap
from .basic_set import BasicSet
from .constraint import Constraint
from .imap import Map
from .iset import Set
from .space import MapSpace, Space


class NotationError(ValueError):
    """Malformed set/map notation."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_]\w*)|(?P<op><=|>=|==|->|[{}\[\],:;+\-*<>=()]))"
)

_KEYWORDS = {"and", "or"}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip():
                raise NotationError(
                    f"unexpected character {text[pos:].lstrip()[0]!r}"
                )
            break
        tokens.append(m.group(m.lastgroup))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str, params: dict[str, int]):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.params = params

    # -- token plumbing --------------------------------------------------
    @property
    def current(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def accept(self, tok: str) -> bool:
        if self.current == tok:
            self.pos += 1
            return True
        return False

    def expect(self, tok: str) -> None:
        if not self.accept(tok):
            raise NotationError(
                f"expected {tok!r}, found {self.current!r}"
            )

    # -- tuples ------------------------------------------------------------
    def parse_tuple(self) -> tuple[str | None, list[str]]:
        name: str | None = None
        cur = self.current
        if cur is not None and re.fullmatch(r"[A-Za-z_]\w*", cur) and cur not in _KEYWORDS:
            name = cur
            self.pos += 1
        self.expect("[")
        entries: list[str] = []
        if self.current != "]":
            entries.append(self._tuple_entry())
            while self.accept(","):
                entries.append(self._tuple_entry())
        self.expect("]")
        return name, entries

    def _tuple_entry(self) -> str:
        """Collect raw tokens of one tuple entry (re-parsed later)."""
        depth = 0
        start = self.pos
        while self.current is not None:
            tok = self.current
            if tok == "(":
                depth += 1
            elif tok == ")":
                depth -= 1
            elif depth == 0 and tok in (",", "]"):
                break
            self.pos += 1
        return " ".join(self.tokens[start : self.pos])

    # -- affine expressions -----------------------------------------------
    def parse_expr(self, dims: dict[str, str]) -> AffineExpr:
        expr = self.parse_term(dims)
        while self.current in ("+", "-"):
            op = self.current
            self.pos += 1
            rhs = self.parse_term(dims)
            expr = expr + rhs if op == "+" else expr - rhs
        return expr

    def parse_term(self, dims: dict[str, str]) -> AffineExpr:
        expr = self.parse_factor(dims)
        while True:
            if self.accept("*"):
                rhs = self.parse_factor(dims)
            elif self.current is not None and (
                re.fullmatch(r"[A-Za-z_]\w*", self.current)
                and self.current not in _KEYWORDS
            ):
                # implicit multiplication: "2i" tokenizes as NUM NAME
                rhs = self.parse_factor(dims)
            else:
                return expr
            if expr.is_constant:
                expr = rhs * expr.const
            elif rhs.is_constant:
                expr = expr * rhs.const
            else:
                raise NotationError("non-affine product of variables")

    def parse_factor(self, dims: dict[str, str]) -> AffineExpr:
        if self.accept("-"):
            return -self.parse_factor(dims)
        if self.accept("("):
            inner = self.parse_expr(dims)
            self.expect(")")
            return inner
        tok = self.current
        if tok is None:
            raise NotationError("unexpected end of input in expression")
        self.pos += 1
        if tok.isdigit():
            return AffineExpr.constant(int(tok))
        if tok in dims:
            return AffineExpr.var(dims[tok])
        if tok in self.params:
            return AffineExpr.constant(self.params[tok])
        raise NotationError(
            f"unknown identifier {tok!r} (dims: {sorted(dims)}, "
            f"params: {sorted(self.params)})"
        )

    # -- conditions ----------------------------------------------------
    def parse_condition(self, dims: dict[str, str]) -> list[list[AffineExpr]]:
        """Boolean condition in disjunctive normal form.

        Returns a list of conjunctions; each conjunction is a list of
        affine expressions meaning ``expr >= 0``.  Equalities are encoded
        as the two opposite inequalities.  ``and`` over nested disjunctions
        distributes, so parenthesized conditions are supported.
        """
        disjuncts = self.parse_conjunction(dims)
        while self.accept("or"):
            disjuncts = disjuncts + self.parse_conjunction(dims)
        return disjuncts

    def parse_conjunction(self, dims: dict[str, str]) -> list[list[AffineExpr]]:
        dnf = self.parse_condition_atom(dims)
        while self.accept("and"):
            rhs = self.parse_condition_atom(dims)
            dnf = [left + right for left in dnf for right in rhs]
        return dnf

    def parse_condition_atom(
        self, dims: dict[str, str]
    ) -> list[list[AffineExpr]]:
        """A chain, or a parenthesized sub-condition.

        ``(`` is ambiguous (it may open an arithmetic group as in
        ``(i + 1) < 5``); try the condition reading first and backtrack on
        failure.
        """
        if self.current == "(":
            save = self.pos
            try:
                self.expect("(")
                inner = self.parse_condition(dims)
                self.expect(")")
                return inner
            except NotationError:
                self.pos = save
        return [self.parse_chain(dims)]

    def parse_chain(self, dims: dict[str, str]) -> list[AffineExpr]:
        """A chained comparison over comma groups, as in ISL.

        ``0 <= i, j < N`` constrains every member of each group against
        every member of the adjacent groups (so it means
        ``0 <= i and 0 <= j and i < N and j < N``).
        """
        groups = [self.parse_group(dims)]
        ops: list[str] = []
        while self.current in ("<", "<=", ">", ">=", "=", "=="):
            ops.append(self.current)
            self.pos += 1
            groups.append(self.parse_group(dims))
        if not ops:
            raise NotationError("expected a comparison")
        atoms: list[AffineExpr] = []
        for left, op, right in zip(groups, ops, groups[1:]):
            for lhs in left:
                for rhs in right:
                    if op == "<":
                        atoms.append(rhs - lhs - 1)
                    elif op == "<=":
                        atoms.append(rhs - lhs)
                    elif op == ">":
                        atoms.append(lhs - rhs - 1)
                    elif op == ">=":
                        atoms.append(lhs - rhs)
                    else:  # equality
                        atoms.append(rhs - lhs)
                        atoms.append(lhs - rhs)
        return atoms

    def parse_group(self, dims: dict[str, str]) -> list[AffineExpr]:
        exprs = [self.parse_expr(dims)]
        while self.accept(","):
            exprs.append(self.parse_expr(dims))
        return exprs


def _build_basic_set(
    space: Space, conjunction: list[AffineExpr]
) -> BasicSet:
    cons = []
    for expr in conjunction:
        vec, const = expr.vector(space)
        cons.append(Constraint.ge(vec, const))
    return BasicSet(space, tuple(cons))


def parse_set(text: str, params: dict[str, int] | None = None) -> Set:
    """Parse ISL-style set notation into a :class:`Set`."""
    p = _Parser(text, dict(params or {}))
    p.expect("{")
    name, entries = p.parse_tuple()
    for e in entries:
        if not re.fullmatch(r"[A-Za-z_]\w*", e):
            raise NotationError(
                f"set tuple entries must be identifiers, got {e!r}"
            )
    space = Space(tuple(entries), name)
    dims = {d: d for d in entries}
    if p.accept(":"):
        disjuncts = p.parse_condition(dims)
    else:
        disjuncts = [[]]
    p.expect("}")
    if p.current is not None:
        raise NotationError(f"trailing input {p.current!r}")
    pieces = tuple(_build_basic_set(space, conj) for conj in disjuncts)
    return Set(space, pieces)


def parse_map(text: str, params: dict[str, int] | None = None) -> Map:
    """Parse ISL-style map notation into a :class:`Map`.

    Output-tuple entries may be fresh identifiers (named output dimensions)
    or affine expressions over the input dimensions (adding the equality
    ``out_k = expr``).
    """
    p = _Parser(text, dict(params or {}))
    p.expect("{")
    in_name, in_entries = p.parse_tuple()
    p.expect("->")
    out_name, out_entries = p.parse_tuple()

    in_space = Space(tuple(in_entries), in_name)
    in_dims = {d: d for d in in_entries}

    out_dim_names: list[str] = []
    equalities: list[tuple[str, str]] = []  # (out dim, raw expr text)
    for k, raw in enumerate(out_entries):
        if re.fullmatch(r"[A-Za-z_]\w*", raw) and raw not in in_dims and (
            raw not in p.params
        ):
            out_dim_names.append(raw)
        else:
            fresh = f"o{k}"
            while fresh in in_entries or fresh in out_dim_names:
                fresh += "'"
            out_dim_names.append(fresh)
            equalities.append((fresh, raw))
    out_space = Space(tuple(out_dim_names), out_name)
    mspace = MapSpace(in_space, out_space)

    all_dims = dict(in_dims)
    all_dims.update({d: d for d in out_dim_names})
    flat_space = Space(tuple(in_entries) + tuple(out_dim_names))

    eq_atoms: list[AffineExpr] = []
    for out_dim, raw in equalities:
        sub = _Parser(raw, p.params)
        expr = sub.parse_expr(in_dims)
        if sub.current is not None:
            raise NotationError(f"trailing tokens in expression {raw!r}")
        diff = AffineExpr.var(out_dim) - expr
        eq_atoms.append(diff)
        eq_atoms.append(-diff)

    if p.accept(":"):
        disjuncts = p.parse_condition(all_dims)
    else:
        disjuncts = [[]]
    p.expect("}")
    if p.current is not None:
        raise NotationError(f"trailing input {p.current!r}")

    pieces = []
    for conj in disjuncts:
        bs = _build_basic_set(flat_space, eq_atoms + conj)
        pieces.append(BasicMap(mspace, bs.constraints, 0))
    return Map(mspace, tuple(pieces))
