"""Explicit (tabulated) integer sets and relations on NumPy arrays.

For instantiated SCoPs the pipeline algebra of the paper is computed on
*explicit* point sets: every set is an ``(n, d)`` ``int64`` array of points,
every relation an ``(n, d_in + d_out)`` array of pairs.  All operations are
vectorized (lexsort / unique / searchsorted); nothing loops over points in
Python, per the HPC guides.

Lexicographic machinery is built on *joint ranks*: rows of the participating
arrays are ranked together with :func:`joint_ranks`, giving scalar keys whose
order is exactly lexicographic row order — robust against overflow, unlike
fixed-radix packing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import cache

__all__ = [
    "PointSet",
    "PointRelation",
    "lexsorted_rows",
    "unique_rows",
    "joint_ranks",
    "lex_ranks",
    "rowwise_lex_lt",
    "rowwise_lex_le",
]


def _as_points(arr: object, ndim: int | None = None) -> np.ndarray:
    a = np.asarray(arr, dtype=np.int64)
    if a.ndim == 1 and a.size == 0:
        a = a.reshape(0, ndim if ndim is not None else 0)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D point array, got shape {a.shape}")
    if ndim is not None and a.shape[1] != ndim:
        raise ValueError(f"expected {ndim} columns, got {a.shape[1]}")
    return a


def lexsorted_rows(arr: np.ndarray) -> np.ndarray:
    """Rows sorted in lexicographic order (first column most significant)."""
    if arr.shape[0] <= 1:
        return arr
    return arr[np.lexsort(arr.T[::-1])]


def unique_rows(arr: np.ndarray) -> np.ndarray:
    """Lexicographically sorted rows with duplicates removed."""
    if arr.shape[0] == 0:
        return arr
    return np.unique(arr, axis=0)


def joint_ranks(*arrays: np.ndarray) -> list[np.ndarray]:
    """Rank rows of several arrays under one shared lexicographic order.

    Equal rows (across arrays) get equal ranks; ``rank(a) < rank(b)`` iff row
    ``a`` is lexicographically smaller than row ``b``.
    """
    nonempty = [a for a in arrays if a.shape[0]]
    if not nonempty:
        return [np.zeros(0, dtype=np.int64) for _ in arrays]
    stacked = np.concatenate(nonempty, axis=0)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.astype(np.int64).ravel()
    out: list[np.ndarray] = []
    offset = 0
    for a in arrays:
        n = a.shape[0]
        if n == 0:
            out.append(np.zeros(0, dtype=np.int64))
        else:
            out.append(inverse[offset : offset + n])
            offset += n
    return out


def lex_ranks(arr: np.ndarray) -> np.ndarray:
    """Dense lexicographic ranks of the rows of one array."""
    return joint_ranks(arr)[0]


def rowwise_lex_lt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ``a[k] <lex b[k]`` over two equal-shaped row arrays."""
    if a.shape != b.shape:
        raise ValueError("shape mismatch")
    n, d = a.shape
    result = np.zeros(n, dtype=bool)
    undecided = np.ones(n, dtype=bool)
    for col in range(d):
        less = undecided & (a[:, col] < b[:, col])
        result |= less
        undecided &= a[:, col] == b[:, col]
    return result


def rowwise_lex_le(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise ``a[k] <=lex b[k]`` over two equal-shaped row arrays."""
    equal = np.all(a == b, axis=1)
    return rowwise_lex_lt(a, b) | equal


# ----------------------------------------------------------------------
@cache.register_internable
@dataclass(frozen=True)
class PointSet:
    """A finite set of integer points, canonically sorted and deduplicated."""

    points: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", unique_rows(_as_points(self.points)))

    # -- construction ---------------------------------------------------
    @staticmethod
    def empty(ndim: int) -> "PointSet":
        return PointSet(np.zeros((0, ndim), dtype=np.int64))

    @staticmethod
    def single(point: tuple[int, ...]) -> "PointSet":
        return PointSet(np.asarray([point], dtype=np.int64))

    # -- structure ------------------------------------------------------
    @property
    def ndim(self) -> int:
        return self.points.shape[1]

    def __len__(self) -> int:
        return self.points.shape[0]

    def is_empty(self) -> bool:
        return len(self) == 0

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PointSet):
            return NotImplemented
        return self.points.shape == other.points.shape and bool(
            np.array_equal(self.points, other.points)
        )

    def __hash__(self) -> int:  # frozen dataclass with array payload
        try:
            return self._hash
        except AttributeError:
            h = hash((self.points.shape, self.points.tobytes()))
            object.__setattr__(self, "_hash", h)
            return h

    # -- set algebra ------------------------------------------------------
    def union(self, other: "PointSet") -> "PointSet":
        self._check(other)
        if other.is_empty():
            cache.count_trivial("PointSet.union")
            return self
        if self.is_empty():
            cache.count_trivial("PointSet.union")
            return other
        return cache.memoized(
            "PointSet.union",
            lambda: PointSet(
                np.concatenate([self.points, other.points], axis=0)
            ),
            self,
            other,
        )

    def intersect(self, other: "PointSet") -> "PointSet":
        self._check(other)
        if self.is_empty() or other.is_empty():
            cache.count_trivial("PointSet.intersect")
            return PointSet.empty(self.ndim)
        return cache.memoized(
            "PointSet.intersect",
            lambda: PointSet(
                self.points[self.contains_rows(other=other.points)]
            ),
            self,
            other,
        )

    def difference(self, other: "PointSet") -> "PointSet":
        self._check(other)
        if self.is_empty() or other.is_empty():
            cache.count_trivial("PointSet.difference")
            return self
        return cache.memoized(
            "PointSet.difference",
            lambda: PointSet(
                self.points[~self.contains_rows(other=other.points)]
            ),
            self,
            other,
        )

    def contains_rows(self, other: np.ndarray) -> np.ndarray:
        """Boolean mask over *self's* rows: which appear in ``other``."""
        if self.is_empty():
            return np.zeros(0, dtype=bool)
        mine, theirs = joint_ranks(self.points, _as_points(other, self.ndim))
        return np.isin(mine, theirs)

    def contains(self, point: tuple[int, ...]) -> bool:
        if self.is_empty():
            return False
        row = np.asarray(point, dtype=np.int64)
        return bool(np.any(np.all(self.points == row, axis=1)))

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form (``ndim`` kept so empty sets round-trip)."""
        return {"ndim": self.ndim, "points": self.points.tolist()}

    @staticmethod
    def from_dict(d: dict) -> "PointSet":
        points = np.asarray(d["points"], dtype=np.int64)
        return PointSet(points.reshape(-1, int(d["ndim"])))

    # -- lexicographic queries -------------------------------------------
    def lexmin(self) -> tuple[int, ...]:
        if self.is_empty():
            raise ValueError("lexmin of an empty point set")
        return tuple(int(v) for v in self.points[0])

    def lexmax(self) -> tuple[int, ...]:
        if self.is_empty():
            raise ValueError("lexmax of an empty point set")
        return tuple(int(v) for v in self.points[-1])

    def first_geq(self, targets: "PointSet") -> np.ndarray:
        """For each of *self's* points, index into ``targets`` of the
        lexicographically smallest target ``>=`` the point, or ``len(targets)``
        when every target is smaller."""
        if targets.ndim != self.ndim:
            raise ValueError("dimensionality mismatch")
        mine, theirs = joint_ranks(self.points, targets.points)
        return np.searchsorted(theirs, mine, side="left")

    def _check(self, other: "PointSet") -> None:
        if other.ndim != self.ndim:
            raise ValueError(
                f"dimensionality mismatch: {self.ndim} vs {other.ndim}"
            )

    def __str__(self) -> str:
        return f"PointSet({len(self)} points, dim {self.ndim})"


# ----------------------------------------------------------------------
@cache.register_internable
@dataclass(frozen=True)
class PointRelation:
    """A finite binary relation between integer tuples.

    ``pairs`` holds one row per related pair: the first ``n_in`` columns are
    the input tuple, the rest the output tuple.  Rows are kept canonically
    sorted and deduplicated.
    """

    pairs: np.ndarray
    n_in: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", unique_rows(_as_points(self.pairs)))
        if not 0 <= self.n_in <= self.pairs.shape[1]:
            raise ValueError("n_in out of range")

    # -- construction ---------------------------------------------------
    @staticmethod
    def empty(n_in: int, n_out: int) -> "PointRelation":
        return PointRelation(np.zeros((0, n_in + n_out), dtype=np.int64), n_in)

    @staticmethod
    def from_arrays(dom: np.ndarray, out: np.ndarray) -> "PointRelation":
        dom = _as_points(dom)
        out = _as_points(out)
        if dom.shape[0] != out.shape[0]:
            raise ValueError("domain/range row counts differ")
        return PointRelation(np.concatenate([dom, out], axis=1), dom.shape[1])

    @staticmethod
    def from_affine(
        points: PointSet, matrix: np.ndarray, const: np.ndarray
    ) -> "PointRelation":
        """Graph of the affine function ``x -> matrix @ x + const``."""
        matrix = np.asarray(matrix, dtype=np.int64)
        const = np.asarray(const, dtype=np.int64)
        out = points.points @ matrix.T + const
        return PointRelation.from_arrays(points.points, out)

    @staticmethod
    def identity(points: PointSet) -> "PointRelation":
        return PointRelation.from_arrays(points.points, points.points)

    # -- structure ------------------------------------------------------
    @property
    def n_out(self) -> int:
        return self.pairs.shape[1] - self.n_in

    @property
    def in_part(self) -> np.ndarray:
        return self.pairs[:, : self.n_in]

    @property
    def out_part(self) -> np.ndarray:
        return self.pairs[:, self.n_in :]

    def __len__(self) -> int:
        return self.pairs.shape[0]

    def is_empty(self) -> bool:
        return len(self) == 0

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PointRelation):
            return NotImplemented
        return (
            self.n_in == other.n_in
            and self.pairs.shape == other.pairs.shape
            and bool(np.array_equal(self.pairs, other.pairs))
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((self.n_in, self.pairs.shape, self.pairs.tobytes()))
            object.__setattr__(self, "_hash", h)
            return h

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form (arities kept so empty relations round-trip)."""
        return {
            "n_in": self.n_in,
            "n_out": self.n_out,
            "pairs": self.pairs.tolist(),
        }

    @staticmethod
    def from_dict(d: dict) -> "PointRelation":
        n_in = int(d["n_in"])
        pairs = np.asarray(d["pairs"], dtype=np.int64)
        return PointRelation(pairs.reshape(-1, n_in + int(d["n_out"])), n_in)

    # -- relational algebra ----------------------------------------------
    def inverse(self) -> "PointRelation":
        if self.is_empty():
            cache.count_trivial("PointRelation.inverse")
            return PointRelation.empty(self.n_out, self.n_in)
        return cache.memoized(
            "PointRelation.inverse",
            lambda: PointRelation(
                np.concatenate([self.out_part, self.in_part], axis=1),
                self.n_out,
            ),
            self,
        )

    def domain(self) -> PointSet:
        return cache.memoized(
            "PointRelation.domain", lambda: PointSet(self.in_part), self
        )

    def range(self) -> PointSet:
        return cache.memoized(
            "PointRelation.range", lambda: PointSet(self.out_part), self
        )

    def union(self, other: "PointRelation") -> "PointRelation":
        self._check(other)
        if other.is_empty():
            cache.count_trivial("PointRelation.union")
            return self
        if self.is_empty():
            cache.count_trivial("PointRelation.union")
            return other
        return cache.memoized(
            "PointRelation.union",
            lambda: PointRelation(
                np.concatenate([self.pairs, other.pairs], axis=0), self.n_in
            ),
            self,
            other,
        )

    def intersect(self, other: "PointRelation") -> "PointRelation":
        self._check(other)
        if self.is_empty() or other.is_empty():
            cache.count_trivial("PointRelation.intersect")
            return PointRelation.empty(self.n_in, self.n_out)
        return cache.memoized(
            "PointRelation.intersect",
            lambda: self._filtered(other, negate=False),
            self,
            other,
        )

    def difference(self, other: "PointRelation") -> "PointRelation":
        self._check(other)
        if self.is_empty() or other.is_empty():
            cache.count_trivial("PointRelation.difference")
            return self
        return cache.memoized(
            "PointRelation.difference",
            lambda: self._filtered(other, negate=True),
            self,
            other,
        )

    def _filtered(self, other: "PointRelation", negate: bool) -> "PointRelation":
        mine, theirs = joint_ranks(self.pairs, other.pairs)
        mask = np.isin(mine, theirs)
        if negate:
            mask = ~mask
        return PointRelation(self.pairs[mask], self.n_in)

    def after(self, other: "PointRelation") -> "PointRelation":
        """Composition ``self ∘ other`` (apply ``other`` first).

        Sort-merge join of ``other``'s outputs against ``self``'s inputs;
        duplicate keys on both sides produce the full per-key cross product.
        """
        if other.n_out != self.n_in:
            raise ValueError("composition arity mismatch")
        if self.is_empty() or other.is_empty():
            cache.count_trivial("PointRelation.after")
            return PointRelation.empty(other.n_in, self.n_out)
        return cache.memoized(
            "PointRelation.after", lambda: self._after(other), self, other
        )

    def _after(self, other: "PointRelation") -> "PointRelation":
        left = other  # A -> B
        right = self  # B -> C
        kl, kr = joint_ranks(left.out_part, right.in_part)
        ol = np.argsort(kl, kind="stable")
        orr = np.argsort(kr, kind="stable")
        kl_s, kr_s = kl[ol], kr[orr]
        common = np.intersect1d(kl_s, kr_s)
        if common.size == 0:
            return PointRelation.empty(left.n_in, right.n_out)
        l_lo = np.searchsorted(kl_s, common, side="left")
        l_hi = np.searchsorted(kl_s, common, side="right")
        r_lo = np.searchsorted(kr_s, common, side="left")
        r_hi = np.searchsorted(kr_s, common, side="right")
        l_cnt = l_hi - l_lo
        r_cnt = r_hi - r_lo
        pair_cnt = l_cnt * r_cnt
        total = int(pair_cnt.sum())
        within = np.arange(total) - np.repeat(
            np.concatenate(([0], np.cumsum(pair_cnt)[:-1])), pair_cnt
        )
        li = ol[np.repeat(l_lo, pair_cnt) + within // np.repeat(r_cnt, pair_cnt)]
        ri = orr[np.repeat(r_lo, pair_cnt) + within % np.repeat(r_cnt, pair_cnt)]
        pairs = np.concatenate(
            [left.in_part[li], right.out_part[ri]], axis=1
        )
        return PointRelation(pairs, left.n_in)

    def apply(self, s: PointSet) -> PointSet:
        """Image of ``s`` under the relation."""
        if s.ndim != self.n_in:
            raise ValueError("set arity does not match relation input")
        if self.is_empty() or s.is_empty():
            cache.count_trivial("PointRelation.apply")
            return PointSet.empty(self.n_out)
        return cache.memoized(
            "PointRelation.apply",
            lambda: self._apply(s),
            self,
            s,
        )

    def _apply(self, s: PointSet) -> PointSet:
        mine, theirs = joint_ranks(self.in_part, s.points)
        return PointSet(self.out_part[np.isin(mine, theirs)])

    def restrict_domain(self, s: PointSet) -> "PointRelation":
        if self.is_empty() or s.is_empty():
            cache.count_trivial("PointRelation.restrict_domain")
            return PointRelation.empty(self.n_in, self.n_out)
        return cache.memoized(
            "PointRelation.restrict_domain",
            lambda: self._restricted(self.in_part, s),
            self,
            s,
        )

    def restrict_range(self, s: PointSet) -> "PointRelation":
        if self.is_empty() or s.is_empty():
            cache.count_trivial("PointRelation.restrict_range")
            return PointRelation.empty(self.n_in, self.n_out)
        return cache.memoized(
            "PointRelation.restrict_range",
            lambda: self._restricted(self.out_part, s),
            self,
            s,
        )

    def _restricted(self, part: np.ndarray, s: PointSet) -> "PointRelation":
        mine, theirs = joint_ranks(part, s.points)
        return PointRelation(self.pairs[np.isin(mine, theirs)], self.n_in)

    # -- lexicographic reductions ------------------------------------------
    def lexmax_per_domain(self) -> "PointRelation":
        """Keep, for each input tuple, the lexicographically largest output."""
        return cache.memoized(
            "PointRelation.lexmax_per_domain",
            lambda: self._lexopt_per_domain(keep_last=True),
            self,
        )

    def lexmin_per_domain(self) -> "PointRelation":
        return cache.memoized(
            "PointRelation.lexmin_per_domain",
            lambda: self._lexopt_per_domain(keep_last=False),
            self,
        )

    def _lexopt_per_domain(self, keep_last: bool) -> "PointRelation":
        if self.is_empty():
            return self
        # pairs are already sorted by (in, out); group boundaries on the
        # input columns give the min as first row, the max as last row.
        inp = self.in_part
        change = np.any(inp[1:] != inp[:-1], axis=1)
        if keep_last:
            mask = np.concatenate([change, [True]])
        else:
            mask = np.concatenate([[True], change])
        return PointRelation(self.pairs[mask], self.n_in)

    def deltas(self) -> PointSet:
        """The distance set ``{ out - in }`` (equal-arity relations only)."""
        if self.n_in != self.n_out:
            raise ValueError("deltas require equal input/output arity")
        return PointSet(self.out_part - self.in_part)

    def is_single_valued(self) -> bool:
        # Pairs are deduplicated, so the relation is a function exactly when
        # every pair has a distinct input tuple.
        return len(self) == len(self.domain())

    def is_injective(self) -> bool:
        return self.inverse().is_single_valued()

    def is_bijective(self) -> bool:
        return self.is_single_valued() and self.is_injective()

    def lookup(self, point: tuple[int, ...]) -> np.ndarray:
        """All outputs related to one input tuple (rows of an array)."""
        row = np.asarray(point, dtype=np.int64)
        mask = np.all(self.in_part == row, axis=1)
        return self.out_part[mask]

    def _check(self, other: "PointRelation") -> None:
        if other.n_in != self.n_in or other.pairs.shape[1] != self.pairs.shape[1]:
            raise ValueError("relation shape mismatch")

    def __str__(self) -> str:
        return (
            f"PointRelation({len(self)} pairs, {self.n_in} -> {self.n_out})"
        )
