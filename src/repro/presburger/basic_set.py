"""Basic integer sets: conjunctions of affine constraints.

A :class:`BasicSet` is the integer-point set of a conjunction of affine
equalities and inequalities over its space's dimensions plus ``n_div``
existentially quantified columns, mirroring ``isl_basic_set``.  Column
layout is ``[set dims | divs]``.

The symbolic layer deliberately supports the operations the pipeline
algebra of the paper needs — intersection, dimension fixing, emptiness,
lexicographic optimization, bounds, sampling, enumeration — and leaves
complementation/subtraction to the explicit NumPy backend
(:mod:`repro.presburger.explicit`), where they are cheap and exact for the
instantiated problems this library targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from . import cache, ilp
from .constraint import Constraint, Kind
from .space import Space


@cache.register_internable
@dataclass(frozen=True)
class BasicSet:
    """Integer points satisfying a conjunction of affine constraints."""

    space: Space
    constraints: tuple[Constraint, ...] = ()
    n_div: int = 0

    def __post_init__(self) -> None:
        ncols = self.ncols
        for con in self.constraints:
            if con.ncols != ncols:
                raise ValueError(
                    f"constraint has {con.ncols} columns, set has {ncols}"
                )

    def __hash__(self) -> int:  # structural hash, computed once
        try:
            return self._hash
        except AttributeError:
            h = hash((self.space, self.constraints, self.n_div))
            object.__setattr__(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not BasicSet:
            return NotImplemented
        return (
            self.n_div == other.n_div
            and self.space == other.space
            and self.constraints == other.constraints
        )

    def is_universe(self) -> bool:
        """True for the unconstrained (whole-space) conjunction."""
        return not self.constraints and not self.n_div

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def universe(space: Space) -> "BasicSet":
        return BasicSet(space)

    @staticmethod
    def empty(space: Space) -> "BasicSet":
        false = Constraint.ge((0,) * space.ndim, -1)
        return BasicSet(space, (false,))

    @staticmethod
    def from_box(space: Space, bounds: Sequence[tuple[int, int]]) -> "BasicSet":
        """The box ``lo_k <= x_k <= hi_k`` (inclusive)."""
        if len(bounds) != space.ndim:
            raise ValueError("one (lo, hi) pair per dimension required")
        cons: list[Constraint] = []
        n = space.ndim
        for k, (lo, hi) in enumerate(bounds):
            unit = [0] * n
            unit[k] = 1
            cons.append(Constraint.ge(tuple(unit), -lo))
            unit2 = [0] * n
            unit2[k] = -1
            cons.append(Constraint.ge(tuple(unit2), hi))
        return BasicSet(space, tuple(cons))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return self.space.ndim

    @property
    def ncols(self) -> int:
        return self.space.ndim + self.n_div

    def with_constraints(self, extra: Iterable[Constraint]) -> "BasicSet":
        extra = tuple(c.padded(self.ncols) for c in extra)
        return BasicSet(self.space, self.constraints + extra, self.n_div)

    def renamed(self, name: str | None) -> "BasicSet":
        return BasicSet(self.space.renamed(name), self.constraints, self.n_div)

    def with_space(self, space: Space) -> "BasicSet":
        if space.ndim != self.ndim:
            raise ValueError("space dimensionality mismatch")
        return BasicSet(space, self.constraints, self.n_div)

    # ------------------------------------------------------------------
    # column juggling (shared with maps)
    # ------------------------------------------------------------------
    def _aligned_with(self, other: "BasicSet") -> tuple[
        tuple[Constraint, ...], tuple[Constraint, ...], int
    ]:
        """Pad both constraint systems to a shared div block.

        Our divs occupy ``[ndim, ndim + n_div)``; the other set's divs are
        appended after ours.  Returns both padded systems and the total
        number of divs.
        """
        if other.ndim != self.ndim:
            raise ValueError("cannot align sets of different dimensionality")
        total_div = self.n_div + other.n_div
        ncols = self.ndim + total_div
        mine = tuple(c.padded(ncols) for c in self.constraints)
        perm = list(range(self.ndim)) + [
            self.ndim + self.n_div + k for k in range(other.n_div)
        ]
        theirs = tuple(c.permuted(perm, ncols) for c in other.constraints)
        return mine, theirs, total_div

    def intersect(self, other: "BasicSet") -> "BasicSet":
        if other.is_universe() and other.ndim == self.ndim:
            cache.count_trivial("BasicSet.intersect")
            return self
        if self.is_universe() and other.ndim == self.ndim:
            cache.count_trivial("BasicSet.intersect")
            return other.with_space(self.space)
        return cache.memoized(
            "BasicSet.intersect",
            lambda: self._intersect(other),
            self,
            other,
        )

    def _intersect(self, other: "BasicSet") -> "BasicSet":
        mine, theirs, total_div = self._aligned_with(other)
        return BasicSet(self.space, mine + theirs, total_div)

    def project_onto(self, keep: Sequence[int]) -> "BasicSet":
        """Keep the listed set dimensions; the rest become divs.

        ``keep`` is an ordered list of current dimension indices; the result's
        dimension ``k`` is the old dimension ``keep[k]``.
        """
        return cache.memoized(
            "BasicSet.project_onto",
            lambda: self._project_onto(tuple(keep)),
            self,
            tuple(keep),
        )

    def _project_onto(self, keep: tuple[int, ...]) -> "BasicSet":
        dropped = [k for k in range(self.ndim) if k not in keep]
        perm = [0] * self.ncols
        for new, old in enumerate(keep):
            perm[old] = new
        for pos, old in enumerate(dropped):
            perm[old] = len(keep) + pos
        for d in range(self.n_div):
            perm[self.ndim + d] = len(keep) + len(dropped) + d
        cons = tuple(c.permuted(perm) for c in self.constraints)
        dims = tuple(self.space.dims[k] for k in keep)
        return BasicSet(
            Space(dims, self.space.name), cons, self.n_div + len(dropped)
        )

    def fix(self, values: Mapping[int, int]) -> "BasicSet":
        """Intersect with ``x_k == v`` for each ``(k, v)`` item."""
        extra = []
        for col, val in values.items():
            unit = [0] * self.ncols
            unit[col] = 1
            extra.append(Constraint.eq(tuple(unit), -int(val)))
        return BasicSet(self.space, self.constraints + tuple(extra), self.n_div)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        if self.is_universe():
            cache.count_trivial("ilp.is_empty")
            return False
        return ilp.is_empty(self.constraints, self.ncols)

    def sample(self) -> tuple[int, ...] | None:
        """Some point of the set (dims only), or None when empty."""
        pt = ilp.integer_feasible_point(self.constraints, self.ncols)
        return None if pt is None else pt[: self.ndim]

    def contains(self, point: Sequence[int]) -> bool:
        """Membership test; uses ILP only when divs are present."""
        if len(point) != self.ndim:
            raise ValueError("point arity mismatch")
        if self.n_div == 0:
            return all(c.satisfied(point) for c in self.constraints)
        fixed = self.fix({k: v for k, v in enumerate(point)})
        return not fixed.is_empty()

    def lexmin(self) -> tuple[int, ...] | None:
        """Lexicographically smallest point, or None when empty."""
        return cache.memoized(
            "BasicSet.lexmin",
            lambda: ilp.lexmin(self.constraints, self.ncols, self.ndim),
            self,
        )

    def lexmax(self) -> tuple[int, ...] | None:
        return cache.memoized(
            "BasicSet.lexmax",
            lambda: ilp.lexmax(self.constraints, self.ncols, self.ndim),
            self,
        )

    def dim_bounds(self, col: int) -> tuple[int | None, int | None]:
        """Integer (min, max) of a set dimension over the whole set."""
        return ilp.column_bounds(self.constraints, self.ncols, col)

    def is_bounded(self) -> bool:
        if self.is_empty():
            return True
        for k in range(self.ndim):
            lo, hi = self.dim_bounds(k)
            if lo is None or hi is None:
                return False
        return True

    def __str__(self) -> str:
        body = " and ".join(str(c) for c in self.constraints) or "true"
        divs = f" exists {self.n_div} divs:" if self.n_div else ""
        return f"{{ {self.space} :{divs} {body} }}"
