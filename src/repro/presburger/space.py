"""Dimension spaces for integer sets and maps.

A :class:`Space` names the dimensions of a set of integer tuples, mirroring
``isl_space``.  Set spaces carry one tuple of dimension names; map spaces are
represented by :class:`MapSpace`, a pair of set spaces (domain and range).

Spaces are immutable value objects: two spaces compare equal when their tuple
names and dimension names match.  Most algebraic operations in this package
require operand spaces to be *compatible*, meaning they have the same number
of dimensions (names are kept for printing and debugging but do not affect
semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from . import cache


@cache.register_internable
@dataclass(frozen=True)
class Space:
    """An ordered tuple of dimension names, optionally labelled.

    Parameters
    ----------
    dims:
        Names of the dimensions, e.g. ``("i", "j")``.
    name:
        Optional tuple name, e.g. ``"S"`` for a statement ``S[i, j]``.
    """

    dims: tuple[str, ...]
    name: str | None = None

    def __post_init__(self) -> None:
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"duplicate dimension names in {self.dims!r}")

    def __hash__(self) -> int:  # structural hash, computed once
        try:
            return self._hash
        except AttributeError:
            h = hash((self.dims, self.name))
            object.__setattr__(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Space:
            return NotImplemented
        return self.name == other.name and self.dims == other.dims

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def index(self, dim: str) -> int:
        """Position of dimension ``dim`` in this space."""
        return self.dims.index(dim)

    def renamed(self, name: str | None) -> "Space":
        return Space(self.dims, name)

    def with_dims(self, dims: Iterable[str]) -> "Space":
        return Space(tuple(dims), self.name)

    def compatible(self, other: "Space") -> bool:
        """True when ``other`` has the same dimensionality."""
        return self.ndim == other.ndim

    def __str__(self) -> str:
        label = self.name or ""
        return f"{label}[{', '.join(self.dims)}]"


@cache.register_internable
@dataclass(frozen=True)
class MapSpace:
    """The space of a binary relation: a domain space and a range space."""

    domain: Space
    range: Space = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.range is None:
            raise ValueError("MapSpace requires both domain and range spaces")

    def __hash__(self) -> int:  # structural hash, computed once
        try:
            return self._hash
        except AttributeError:
            h = hash((self.domain, self.range))
            object.__setattr__(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not MapSpace:
            return NotImplemented
        return self.domain == other.domain and self.range == other.range

    @property
    def n_in(self) -> int:
        return self.domain.ndim

    @property
    def n_out(self) -> int:
        return self.range.ndim

    @property
    def ndim(self) -> int:
        return self.n_in + self.n_out

    def reversed(self) -> "MapSpace":
        """Space of the inverse relation."""
        return MapSpace(self.range, self.domain)

    def flat_dims(self) -> tuple[str, ...]:
        """Domain and range dimension names flattened into one tuple.

        Name collisions between domain and range are disambiguated with a
        prime suffix so the flattened (wrapped) space stays well formed.
        """
        out = list(self.domain.dims)
        for d in self.range.dims:
            cand = d
            while cand in out:
                cand += "'"
            out.append(cand)
        return tuple(out)

    def wrapped(self) -> Space:
        """The set space obtained by wrapping the relation into tuples."""
        dn = self.domain.name or ""
        rn = self.range.name or ""
        label = f"{dn}->{rn}" if (dn or rn) else None
        return Space(self.flat_dims(), label)

    def compatible(self, other: "MapSpace") -> bool:
        return self.n_in == other.n_in and self.n_out == other.n_out

    def __str__(self) -> str:
        return f"{self.domain} -> {self.range}"


def anonymous(ndim: int, prefix: str = "d", name: str | None = None) -> Space:
    """A set space with auto-generated dimension names ``d0, d1, ...``."""
    return Space(tuple(f"{prefix}{k}" for k in range(ndim)), name)
