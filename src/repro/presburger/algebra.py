"""Higher-level set algebra: complement, subtraction, subset, simplify.

These operations complete the symbolic layer for quantifier-free sets
(pieces without existential columns — the common case for iteration
domains).  Complementation of a conjunction is the union of its negated
constraints; subtraction, subset and equality tests follow.  ``simplify``
removes redundant constraints with exact LP reasoning, playing the role of
ISL's coalesce/gist in keeping derived systems small.
"""

from __future__ import annotations

from . import cache
from .basic_set import BasicSet
from .constraint import Constraint, Kind
from .ilp import is_empty
from .imap import Map
from .iset import Set
from .lp import LPStatus, solve_lp


class QuantifiedSetError(ValueError):
    """Operation requires quantifier-free (div-free) operands."""


def _require_div_free(bs: BasicSet, op: str) -> None:
    if bs.n_div:
        raise QuantifiedSetError(
            f"{op} requires quantifier-free sets (piece has {bs.n_div} divs)"
        )


def complement(s: Set) -> Set:
    """The integer points not in ``s`` (over the whole space).

    The complement of a union is the intersection of the piece
    complements; the complement of one conjunction is the union of its
    negated constraints (equalities split into two strict sides).
    """
    return cache.memoized("algebra.complement", lambda: _complement(s), s)


def _complement(s: Set) -> Set:
    result = Set.universe(s.space)
    for bs in s.pieces:
        _require_div_free(bs, "complement")
        negated: list[BasicSet] = []
        for con in bs.constraints:
            if con.kind is Kind.EQ:
                # e == 0 fails when e >= 1 or e <= -1
                above = Constraint.ge(con.coeffs, con.const - 1)
                below = Constraint.ge(
                    tuple(-c for c in con.coeffs), -con.const - 1
                )
                negated.append(BasicSet(s.space, (above,)))
                negated.append(BasicSet(s.space, (below,)))
            else:
                negated.append(BasicSet(s.space, (con.negated_ge(),)))
        piece_complement = Set(s.space, tuple(negated))
        result = result.intersect(piece_complement)
    return result


def subtract(a: Set, b: Set) -> Set:
    """``a \\ b`` for quantifier-free ``b``."""
    if not a.pieces:
        cache.count_trivial("algebra.subtract")
        return a
    if not b.pieces:
        cache.count_trivial("algebra.subtract")
        return a
    return cache.memoized(
        "algebra.subtract",
        lambda: a.intersect(complement(b)).coalesce(),
        a,
        b,
    )


def is_subset(a: Set, b: Set) -> bool:
    """``a ⊆ b`` (b quantifier-free)."""
    if not a.pieces:
        cache.count_trivial("algebra.is_subset")
        return True
    return cache.memoized(
        "algebra.is_subset", lambda: subtract(a, b).is_empty(), a, b
    )


def sets_equal(a: Set, b: Set) -> bool:
    """Extensional equality (both quantifier-free)."""
    return is_subset(a, b) and is_subset(b, a)


def maps_equal(a: Map, b: Map) -> bool:
    """Extensional equality of maps via their wrapped sets."""
    return sets_equal(a.wrap(), b.wrap())


# ----------------------------------------------------------------------
def simplify_basic_set(bs: BasicSet) -> BasicSet:
    """Drop constraints implied by the others (exact LP redundancy test).

    An inequality ``e >= 0`` is redundant when minimizing ``e`` over the
    remaining constraints stays ``>= 0``.  Equalities are kept.  The result
    describes the same rational polyhedron (hence the same integer set).
    """
    if bs.is_universe():
        cache.count_trivial("algebra.simplify_basic_set")
        return bs
    return cache.memoized(
        "algebra.simplify_basic_set", lambda: _simplify_basic_set(bs), bs
    )


def _simplify_basic_set(bs: BasicSet) -> BasicSet:
    cons = [c.normalized() for c in bs.constraints]
    kept: list[Constraint] = [c for c in cons if c.kind is Kind.EQ]
    candidates = [c for c in cons if c.kind is Kind.GE and not c.is_trivial()]

    for k, con in enumerate(candidates):
        others = kept + candidates[k + 1 :]
        res = solve_lp(list(con.coeffs), others, bs.ncols)
        if res.status is LPStatus.OPTIMAL and res.value + con.const >= 0:
            continue  # implied by the rest; drop it
        kept.append(con)
    # keep original relative order for reproducible printing
    order = {id(c): i for i, c in enumerate(cons)}
    kept.sort(key=lambda c: order.get(id(c), len(cons)))
    return BasicSet(bs.space, tuple(kept), bs.n_div)


def simplify(s: Set) -> Set:
    """Simplify every piece and drop empty ones."""
    pieces = []
    for bs in s.pieces:
        if is_empty(bs.constraints, bs.ncols):
            continue
        pieces.append(simplify_basic_set(bs))
    return Set(s.space, tuple(pieces))
