"""Performance layer: structural interning and a memoized operation cache.

Every stage of the pipeline algebra — ``P = Wr⁻¹ ∘ Rd``, the running
``lexmax`` of Section 4.1, the blocking refinement of Section 4.2, the
``Q_S`` construction of Section 4.3 — bottoms out in repeated Presburger
set/map operations.  This module keeps that substrate from recomputing
identical results:

* **Interning (hash-consing).**  :func:`intern` maps every structurally
  equal :class:`~repro.presburger.basic_set.BasicSet`, ``BasicMap``,
  ``Space``, ``Set``, ``Map``, ``PointSet`` or ``PointRelation`` to one
  canonical representative, so repeated operands compare by identity and
  hash once (the value classes cache their structural hash on first use).
  The intern table is LRU-bounded; eviction only forgets canonical status,
  never changes semantics.

* **Memoized operation cache.**  :func:`memoized` wraps the hot operations
  (``intersect``, ``union``, ``after``/compose, ``apply``, ``lexmin`` /
  ``lexmax``, ``coalesce``, domain/range projection, ILP queries,
  enumeration) in a bounded LRU keyed on the *canonicalized* operands.
  Hit, miss, eviction and trivial-fast-path counters are kept per
  operation and surfaced through :func:`stats` / ``repro analyze --stats``
  and the :mod:`repro.bench` trace section.

Configuration: the ``REPRO_PRESBURGER_CACHE`` environment variable
(``0``/``off`` disables, ``1``/``on`` enables, an integer sets the LRU
capacity) sets the process default;
:class:`~repro.driver.TransformOptions` and :func:`overridden` adjust it
per call.  Correctness never depends on the cache: every memoized
operation is a pure function of immutable operands, and the differential
fuzz harness (``tests/fuzz/``) asserts bit-identical results with the
cache on and off.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, TypeVar

T = TypeVar("T")

ENV_VAR = "REPRO_PRESBURGER_CACHE"
#: Default number of memoized results (and interned objects) kept.
DEFAULT_MAXSIZE = 8192


def _parse_env(raw: str | None) -> tuple[bool, int]:
    """``(enabled, maxsize)`` from a ``REPRO_PRESBURGER_CACHE`` value."""
    if raw is None:
        return True, DEFAULT_MAXSIZE
    value = raw.strip().lower()
    if value in {"", "1", "on", "true", "yes", "enabled"}:
        return True, DEFAULT_MAXSIZE
    if value in {"0", "off", "false", "no", "disabled"}:
        return False, DEFAULT_MAXSIZE
    try:
        size = int(value)
    except ValueError:
        return True, DEFAULT_MAXSIZE
    return (size > 0, size if size > 0 else DEFAULT_MAXSIZE)


@dataclass
class OpStats:
    """Counters of one memoized operation."""

    calls: int = 0
    hits: int = 0
    misses: int = 0
    #: calls answered by a trivial empty/universe fast path (no cache lookup)
    trivial: int = 0

    @property
    def hit_rate(self) -> float:
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "calls": self.calls,
            "hits": self.hits,
            "misses": self.misses,
            "trivial": self.trivial,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the cache's counters."""

    enabled: bool
    maxsize: int
    entries: int
    interned: int
    hits: int
    misses: int
    evictions: int
    trivial: int
    ops: dict[str, OpStats] = field(default_factory=dict)

    @property
    def calls(self) -> int:
        return sum(op.calls for op in self.ops.values())

    @property
    def hit_rate(self) -> float:
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "maxsize": self.maxsize,
            "entries": self.entries,
            "interned": self.interned,
            "calls": self.calls,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "trivial": self.trivial,
            "hit_rate": round(self.hit_rate, 4),
            "ops": {name: op.as_dict() for name, op in sorted(self.ops.items())},
        }

    def format(self) -> str:
        """Human-readable report (the ``repro analyze --stats`` section)."""
        state = "enabled" if self.enabled else "disabled"
        lines = [
            f"presburger cache: {state} "
            f"(maxsize={self.maxsize}, entries={self.entries}, "
            f"interned={self.interned})",
            f"  hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} trivial={self.trivial} "
            f"hit-rate={100.0 * self.hit_rate:.1f}%",
        ]
        if not self.ops:
            return "\n".join(lines)
        name_w = max(len(n) for n in self.ops) + 2
        lines.append(
            f"  {'operation':<{name_w}}{'calls':>8}{'hits':>8}"
            f"{'misses':>8}{'trivial':>9}"
        )
        for name in sorted(self.ops):
            op = self.ops[name]
            lines.append(
                f"  {name:<{name_w}}{op.calls:>8}{op.hits:>8}"
                f"{op.misses:>8}{op.trivial:>9}"
            )
        return "\n".join(lines)


class _PresburgerCache:
    """The process-wide bounded LRU op cache plus the intern table."""

    def __init__(self, enabled: bool, maxsize: int) -> None:
        self._lock = threading.RLock()
        self._data: OrderedDict[tuple, Any] = OrderedDict()
        self._interned: OrderedDict[Any, Any] = OrderedDict()
        self._ops: dict[str, OpStats] = {}
        self.enabled = enabled
        self.maxsize = max(1, int(maxsize))
        self.evictions = 0

    # -- stats ----------------------------------------------------------
    def op_stats(self, op: str) -> OpStats:
        st = self._ops.get(op)
        if st is None:
            with self._lock:
                st = self._ops.setdefault(op, OpStats())
        return st

    def snapshot(self) -> CacheStats:
        with self._lock:
            ops = {
                name: OpStats(st.calls, st.hits, st.misses, st.trivial)
                for name, st in self._ops.items()
            }
            return CacheStats(
                enabled=self.enabled,
                maxsize=self.maxsize,
                entries=len(self._data),
                interned=len(self._interned),
                hits=sum(st.hits for st in ops.values()),
                misses=sum(st.misses for st in ops.values()),
                evictions=self.evictions,
                trivial=sum(st.trivial for st in ops.values()),
                ops=ops,
            )

    def reset_stats(self) -> None:
        with self._lock:
            self._ops.clear()
            self.evictions = 0

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._interned.clear()

    # -- interning ------------------------------------------------------
    def intern(self, obj: T) -> T:
        with self._lock:
            canonical = self._interned.get(obj)
            if canonical is not None:
                self._interned.move_to_end(obj)
                return canonical
            self._interned[obj] = obj
            while len(self._interned) > self.maxsize:
                self._interned.popitem(last=False)
            return obj

    # -- memoization ----------------------------------------------------
    def get(self, key: tuple) -> tuple[bool, Any]:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                return True, self._data[key]
            return False, None

    def put(self, key: tuple, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1


_CACHE = _PresburgerCache(*_parse_env(os.environ.get(ENV_VAR)))

#: Value classes canonicalized by :func:`intern` when used as cache keys.
#: Populated by the defining modules via :func:`register_internable`.
_INTERNABLE: set[type] = set()


def register_internable(cls: type) -> type:
    """Mark a value class as hash-consed (usable as a canonical cache key)."""
    _INTERNABLE.add(cls)
    return cls


def intern(obj: T) -> T:
    """The canonical representative of a registered immutable value object.

    Objects of unregistered types are returned unchanged.  Two interned
    objects are structurally equal iff they are the same object (while both
    remain canonical — the table is LRU-bounded, so long-evicted objects
    may re-intern to a fresh representative; equality semantics are
    unaffected).
    """
    if type(obj) in _INTERNABLE:
        return _CACHE.intern(obj)
    return obj


def memoized(op: str, compute: Callable[[], T], *key_parts: Any) -> T:
    """Memoize ``compute()`` under ``op`` keyed on canonicalized operands.

    ``key_parts`` must be hashable; parts of registered value types are
    interned first so structurally equal operands share one cache entry
    and key hashing is O(1) after the first use.  With the cache disabled
    this only counts the call and runs ``compute``.
    """
    st = _CACHE.op_stats(op)
    st.calls += 1
    if not _CACHE.enabled:
        return compute()
    key = (op,) + tuple(
        _CACHE.intern(p) if type(p) in _INTERNABLE else p for p in key_parts
    )
    hit, value = _CACHE.get(key)
    if hit:
        st.hits += 1
        return value
    st.misses += 1
    value = compute()
    if type(value) in _INTERNABLE:
        value = _CACHE.intern(value)
    _CACHE.put(key, value)
    return value


def count_trivial(op: str) -> None:
    """Record a call answered by an empty/universe fast path."""
    st = _CACHE.op_stats(op)
    st.calls += 1
    st.trivial += 1


# ----------------------------------------------------------------------
# configuration and introspection
# ----------------------------------------------------------------------
def is_enabled() -> bool:
    return _CACHE.enabled


def configure(
    enabled: bool | None = None, maxsize: int | None = None
) -> None:
    """Adjust the process-wide cache.  ``None`` keeps the current value.

    Disabling clears the memo and intern tables (freeing their memory);
    shrinking ``maxsize`` evicts oldest entries down to the new bound.
    """
    if maxsize is not None:
        _CACHE.maxsize = max(1, int(maxsize))
        with _CACHE._lock:
            while len(_CACHE._data) > _CACHE.maxsize:
                _CACHE._data.popitem(last=False)
                _CACHE.evictions += 1
            while len(_CACHE._interned) > _CACHE.maxsize:
                _CACHE._interned.popitem(last=False)
    if enabled is not None:
        _CACHE.enabled = bool(enabled)
        if not _CACHE.enabled:
            _CACHE.clear()


@contextmanager
def overridden(
    enabled: bool | None = None, maxsize: int | None = None
) -> Iterator[None]:
    """Temporarily reconfigure the cache (restores the previous settings)."""
    prev_enabled, prev_maxsize = _CACHE.enabled, _CACHE.maxsize
    configure(enabled=enabled, maxsize=maxsize)
    try:
        yield
    finally:
        configure(enabled=prev_enabled, maxsize=prev_maxsize)


def cache_clear(reset_counters: bool = True) -> None:
    """Drop all memoized results and interned objects (and the counters)."""
    _CACHE.clear()
    if reset_counters:
        _CACHE.reset_stats()


def reset_stats() -> None:
    """Zero the counters without dropping cached results."""
    _CACHE.reset_stats()


def stats() -> CacheStats:
    """A snapshot of the current counters and table sizes."""
    return _CACHE.snapshot()


def op_call_counts() -> dict[str, int]:
    """Cheap ``{op name: calls}`` snapshot (no OpStats copies).

    Used by :mod:`repro.obs.spans` to attribute Presburger operations to
    compile-phase spans: the delta of these counters across a span is
    the number of set/map operations that ran inside it.
    """
    with _CACHE._lock:
        return {name: st.calls for name, st in _CACHE._ops.items()}


def format_stats() -> str:
    return stats().format()
