"""Basic integer maps: binary relations cut out by affine constraints.

A :class:`BasicMap` relates input tuples to output tuples; its constraint
columns are laid out ``[in dims | out dims | divs]``.  Composition and
domain/range projection are implemented by reclassifying columns as
existentials rather than by quantifier elimination — sound for every
operation the pipeline algebra needs, and exactly how the enumeration and
ILP back ends consume the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from . import cache
from .affine import AffineExpr
from .basic_set import BasicSet
from .constraint import Constraint
from .space import MapSpace, Space


@cache.register_internable
@dataclass(frozen=True)
class BasicMap:
    """Integer relation defined by a conjunction of affine constraints."""

    space: MapSpace
    constraints: tuple[Constraint, ...] = ()
    n_div: int = 0

    def __post_init__(self) -> None:
        for con in self.constraints:
            if con.ncols != self.ncols:
                raise ValueError(
                    f"constraint has {con.ncols} columns, map has {self.ncols}"
                )

    def __hash__(self) -> int:  # structural hash, computed once
        try:
            return self._hash
        except AttributeError:
            h = hash((self.space, self.constraints, self.n_div))
            object.__setattr__(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not BasicMap:
            return NotImplemented
        return (
            self.n_div == other.n_div
            and self.space == other.space
            and self.constraints == other.constraints
        )

    # ------------------------------------------------------------------
    @property
    def n_in(self) -> int:
        return self.space.n_in

    @property
    def n_out(self) -> int:
        return self.space.n_out

    @property
    def ncols(self) -> int:
        return self.n_in + self.n_out + self.n_div

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def universe(space: MapSpace) -> "BasicMap":
        return BasicMap(space)

    @staticmethod
    def from_affine(
        domain: BasicSet, range_space: Space, exprs: Sequence[AffineExpr]
    ) -> "BasicMap":
        """Graph of an affine function restricted to ``domain``.

        ``exprs[k]`` gives output dimension ``k`` as an affine expression in
        the *names* of the domain's dimensions.
        """
        if len(exprs) != range_space.ndim:
            raise ValueError("one expression per output dimension required")
        space = MapSpace(domain.space, range_space)
        n_in, n_out, n_div = domain.ndim, range_space.ndim, domain.n_div
        ncols = n_in + n_out + n_div
        # Domain constraints: in dims keep their columns, divs move past out.
        perm = list(range(n_in)) + [n_in + n_out + k for k in range(n_div)]
        cons = [c.permuted(perm, ncols) for c in domain.constraints]
        # out_k - expr_k(in) == 0
        for k, expr in enumerate(exprs):
            vec, const = expr.vector(domain.space)
            coeffs = [0] * ncols
            for j, c in enumerate(vec):
                coeffs[j] = -c
            coeffs[n_in + k] = 1
            cons.append(Constraint.eq(tuple(coeffs), -const))
        return BasicMap(space, tuple(cons), n_div)

    @staticmethod
    def identity(domain: BasicSet) -> "BasicMap":
        exprs = [AffineExpr.var(d) for d in domain.space.dims]
        out_space = domain.space.renamed(domain.space.name)
        return BasicMap.from_affine(domain, out_space, exprs)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def wrap(self) -> BasicSet:
        """Flatten the relation into a set over ``[in, out]`` dimensions."""
        return BasicSet(self.space.wrapped(), self.constraints, self.n_div)

    @staticmethod
    def from_wrapped(space: MapSpace, wrapped: BasicSet) -> "BasicMap":
        if wrapped.ndim != space.ndim:
            raise ValueError("wrapped set arity mismatch")
        return BasicMap(space, wrapped.constraints, wrapped.n_div)

    def inverse(self) -> "BasicMap":
        return cache.memoized("BasicMap.inverse", self._inverse, self)

    def _inverse(self) -> "BasicMap":
        n_in, n_out = self.n_in, self.n_out
        perm = (
            [n_out + k for k in range(n_in)]
            + list(range(n_out))
            + [n_in + n_out + k for k in range(self.n_div)]
        )
        cons = tuple(c.permuted(perm) for c in self.constraints)
        return BasicMap(self.space.reversed(), cons, self.n_div)

    def domain(self) -> BasicSet:
        return cache.memoized(
            "BasicMap.domain",
            lambda: self.wrap().project_onto(list(range(self.n_in))),
            self,
        )

    def range(self) -> BasicSet:
        return cache.memoized(
            "BasicMap.range",
            lambda: self.wrap().project_onto(
                [self.n_in + k for k in range(self.n_out)]
            ),
            self,
        )

    def after(self, other: "BasicMap") -> "BasicMap":
        """Composition ``self ∘ other`` (apply ``other`` first).

        Matches the paper's ``M1(M2)`` notation: for ``other : A -> B`` and
        ``self : B -> C`` the result is ``A -> C`` with the shared B tuple
        existentially quantified.
        """
        if other.n_out != self.n_in:
            raise ValueError(
                f"cannot compose: other produces {other.n_out} dims, "
                f"self consumes {self.n_in}"
            )
        return cache.memoized(
            "BasicMap.after", lambda: self._after(other), self, other
        )

    def _after(self, other: "BasicMap") -> "BasicMap":
        n_a, n_b, n_c = other.n_in, other.n_out, self.n_out
        ncols = n_a + n_c + n_b + other.n_div + self.n_div
        # other's columns [A | B | divs_o] -> [A | (skip C) B | divs_o]
        perm_o = (
            list(range(n_a))
            + [n_a + n_c + k for k in range(n_b)]
            + [n_a + n_c + n_b + k for k in range(other.n_div)]
        )
        cons = [c.permuted(perm_o, ncols) for c in other.constraints]
        # self's columns [B | C | divs_s] -> [... B slots ..., C, divs_s]
        perm_s = (
            [n_a + n_c + k for k in range(n_b)]
            + [n_a + k for k in range(n_c)]
            + [n_a + n_c + n_b + other.n_div + k for k in range(self.n_div)]
        )
        cons += [c.permuted(perm_s, ncols) for c in self.constraints]
        space = MapSpace(other.space.domain, self.space.range)
        return BasicMap(space, tuple(cons), n_b + other.n_div + self.n_div)

    def apply(self, s: BasicSet) -> BasicSet:
        """Image of ``s`` under the relation (input tuple quantified away)."""
        if s.ndim != self.n_in:
            raise ValueError("set arity does not match map input")
        return cache.memoized(
            "BasicMap.apply",
            lambda: self.intersect_domain(s).range(),
            self,
            s,
        )

    def intersect_domain(self, s: BasicSet) -> "BasicMap":
        if s.ndim != self.n_in:
            raise ValueError("set arity does not match map input")
        if s.is_universe():
            cache.count_trivial("BasicMap.intersect_domain")
            return self
        return cache.memoized(
            "BasicMap.intersect_domain",
            lambda: self._intersect_domain(s),
            self,
            s,
        )

    def _intersect_domain(self, s: BasicSet) -> "BasicMap":
        ncols = self.ncols + s.n_div
        mine = tuple(c.padded(ncols) for c in self.constraints)
        perm = list(range(s.ndim)) + [self.ncols + k for k in range(s.n_div)]
        theirs = tuple(c.permuted(perm, ncols) for c in s.constraints)
        return BasicMap(self.space, mine + theirs, self.n_div + s.n_div)

    def intersect_range(self, s: BasicSet) -> "BasicMap":
        if s.ndim != self.n_out:
            raise ValueError("set arity does not match map output")
        if s.is_universe():
            cache.count_trivial("BasicMap.intersect_range")
            return self
        return cache.memoized(
            "BasicMap.intersect_range",
            lambda: self._intersect_range(s),
            self,
            s,
        )

    def _intersect_range(self, s: BasicSet) -> "BasicMap":
        ncols = self.ncols + s.n_div
        mine = tuple(c.padded(ncols) for c in self.constraints)
        perm = [self.n_in + k for k in range(s.ndim)] + [
            self.ncols + k for k in range(s.n_div)
        ]
        theirs = tuple(c.permuted(perm, ncols) for c in s.constraints)
        return BasicMap(self.space, mine + theirs, self.n_div + s.n_div)

    def intersect(self, other: "BasicMap") -> "BasicMap":
        if not self.space.compatible(other.space):
            raise ValueError("map space mismatch")
        if not other.constraints and not other.n_div:
            cache.count_trivial("BasicMap.intersect")
            return self
        return cache.memoized(
            "BasicMap.intersect", lambda: self._intersect(other), self, other
        )

    def _intersect(self, other: "BasicMap") -> "BasicMap":
        ncols = self.ncols + other.n_div
        mine = tuple(c.padded(ncols) for c in self.constraints)
        nd = self.n_in + self.n_out
        perm = list(range(nd)) + [self.ncols + k for k in range(other.n_div)]
        theirs = tuple(c.permuted(perm, ncols) for c in other.constraints)
        return BasicMap(self.space, mine + theirs, self.n_div + other.n_div)

    def fix(self, values: Mapping[int, int]) -> "BasicMap":
        return BasicMap.from_wrapped(self.space, self.wrap().fix(values))

    def deltas(self) -> BasicSet:
        """The distance set ``{ out - in }`` (equal-arity maps only).

        Built by appending difference columns ``z_k = out_k - in_k`` to the
        wrapped set and projecting onto them; the original tuple columns
        become existentials.
        """
        if self.n_in != self.n_out:
            raise ValueError("deltas require equal input/output arity")
        n = self.n_in
        ncols = self.ncols + n
        cons = [c.padded(ncols) for c in self.constraints]
        for k in range(n):
            coeffs = [0] * ncols
            coeffs[self.ncols + k] = 1   # z_k
            coeffs[n + k] = -1           # -out_k
            coeffs[k] = 1                # +in_k
            cons.append(Constraint.eq(tuple(coeffs), 0))
        dims = tuple(f"d{k}" for k in range(n))
        wrapped = BasicSet(
            Space(self.space.wrapped().dims + dims, "delta"),
            tuple(c.padded(ncols) for c in cons),
            self.n_div,
        )
        keep = [2 * n + k for k in range(n)]
        return wrapped.project_onto(keep).with_space(Space(dims, "delta"))

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return self.wrap().is_empty()

    def __str__(self) -> str:
        body = " and ".join(str(c) for c in self.constraints) or "true"
        divs = f" exists {self.n_div} divs:" if self.n_div else ""
        return f"{{ {self.space} :{divs} {body} }}"
