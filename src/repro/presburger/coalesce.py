"""Coalescing unions: merge pieces whose union is one conjunction.

ISL's ``coalesce`` keeps unions small by replacing pairs of basic sets
with a single basic set when that is exact.  This implementation uses a
sound candidate-and-verify scheme on quantifier-free pieces:

* candidate: the conjunction of the constraints *common* to both pieces
  (each piece's other constraints dropped);
* verification: the candidate equals the union iff ``candidate \\ (A ∪ B)``
  is empty (checked exactly with the integer algebra of
  :mod:`repro.presburger.algebra`).

This merges the common cases — adjacent intervals, a set split by a
redundant case distinction, unions produced by ``or`` conditions that are
actually convex — while never changing the set of integer points.
"""

from __future__ import annotations

from . import cache
from .algebra import is_subset, simplify_basic_set
from .basic_set import BasicSet
from .constraint import Constraint, Kind
from .ilp import is_empty
from .iset import Set
from .lp import LPStatus, solve_lp


def _valid_for(con: Constraint, piece: BasicSet) -> bool:
    """True when every (rational) point of ``piece`` satisfies ``con``.

    For an inequality, minimize its left-hand side over the piece; for an
    equality, both directions must be valid.  Rational reasoning is
    conservative (may miss an integer-only validity), which only reduces
    the merges found — never their correctness.
    """
    directions = (
        [con.coeffs]
        if con.kind is Kind.GE
        else [con.coeffs, tuple(-c for c in con.coeffs)]
    )
    consts = [con.const] if con.kind is Kind.GE else [con.const, -con.const]
    for coeffs, const in zip(directions, consts):
        res = solve_lp(list(coeffs), piece.constraints, piece.ncols)
        if res.status is LPStatus.UNBOUNDED:
            return False
        if res.status is LPStatus.INFEASIBLE:
            continue  # empty piece satisfies everything
        if res.value + const < 0:
            return False
    return True


def _try_merge(a: BasicSet, b: BasicSet) -> BasicSet | None:
    """One basic set equal to ``a ∪ b``, or None when not found.

    Candidate: every constraint of either piece that is valid for *both*
    pieces (the shared face lattice).  The candidate contains the union by
    construction; it equals it iff ``candidate ⊆ a ∪ b``.
    """
    if a.n_div or b.n_div:
        return None
    kept = [c for c in a.constraints if _valid_for(c, b)]
    seen = {(c.coeffs, c.const, c.kind) for c in kept}
    for c in b.constraints:
        if (c.coeffs, c.const, c.kind) not in seen and _valid_for(c, a):
            kept.append(c)
    candidate = BasicSet(a.space, tuple(kept))
    union = Set(a.space, (a, b))
    if is_subset(Set.from_basic(candidate), union):
        return simplify_basic_set(candidate)
    return None


def coalesce_set(s: Set) -> Set:
    """Repeatedly merge piece pairs until no merge applies."""
    if not s.pieces:
        cache.count_trivial("coalesce.coalesce_set")
        return s
    return cache.memoized("coalesce.coalesce_set", lambda: _coalesce_set(s), s)


def _coalesce_set(s: Set) -> Set:
    pieces = [
        bs for bs in s.pieces if not is_empty(bs.constraints, bs.ncols)
    ]
    changed = True
    while changed:
        changed = False
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                merged = _try_merge(pieces[i], pieces[j]) or _try_merge(
                    pieces[j], pieces[i]
                )
                if merged is not None:
                    pieces[i] = merged
                    del pieces[j]
                    changed = True
                    break
            if changed:
                break
    return Set(s.space, tuple(pieces))
