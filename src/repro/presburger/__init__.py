"""A miniature integer-set library (ISL substitute).

This package provides the polyhedral substrate of the reproduction:

* **Symbolic layer** — :class:`Space`/:class:`MapSpace`,
  :class:`AffineExpr`, :class:`Constraint`, :class:`BasicSet`/:class:`Set`,
  :class:`BasicMap`/:class:`Map`, with exact LP/ILP solvers underneath
  (:mod:`~repro.presburger.lp`, :mod:`~repro.presburger.ilp`) and
  lexicographic-order map builders (:mod:`~repro.presburger.ops`).
* **Explicit layer** — :class:`PointSet` and :class:`PointRelation`,
  vectorized NumPy tabulations of bounded sets and relations, where the
  heavy per-point lexmin/lexmax algebra of the paper runs.
* **Bridge** — :func:`to_point_set` / :func:`to_point_relation` enumerate
  bounded symbolic objects into explicit ones.
* **Performance layer** — :mod:`~repro.presburger.cache` hash-conses the
  value classes and memoizes the hot operations in a bounded LRU
  (``REPRO_PRESBURGER_CACHE`` env var, :func:`cache_configure`,
  :func:`cache_stats`).
"""

from . import cache
from .affine import AffineExpr
from .cache import (
    CacheStats,
    cache_clear,
    configure as cache_configure,
    format_stats as cache_format_stats,
    overridden as cache_overridden,
    reset_stats as cache_reset_stats,
    stats as cache_stats,
)
from .algebra import (
    QuantifiedSetError,
    complement,
    is_subset,
    maps_equal,
    sets_equal,
    simplify,
    simplify_basic_set,
    subtract,
)
from .basic_map import BasicMap
from .basic_set import BasicSet
from .constraint import Constraint, Kind
from .coalesce import coalesce_set
from .convert import to_point_relation, to_point_set
from .enumeration import UnboundedSetError, enumerate_basic_set, enumerate_set
from .explicit import (
    PointRelation,
    PointSet,
    joint_ranks,
    lex_ranks,
    lexsorted_rows,
    rowwise_lex_le,
    rowwise_lex_lt,
    unique_rows,
)
from .ilp import (
    ILPResult,
    ILPStatus,
    column_bounds,
    ilp_minimize,
    integer_feasible_point,
    is_empty,
    lexmax,
    lexmin,
)
from .imap import Map
from .iset import Set
from .lp import LPResult, LPStatus, solve_lp
from .notation import NotationError, parse_map, parse_set
from .ops import lex_ge_map, lex_gt_map, lex_le_map, lex_lt_map
from .space import MapSpace, Space, anonymous

__all__ = [
    "AffineExpr",
    "BasicMap",
    "BasicSet",
    "CacheStats",
    "cache",
    "cache_clear",
    "cache_configure",
    "cache_format_stats",
    "cache_overridden",
    "cache_reset_stats",
    "cache_stats",
    "Constraint",
    "Kind",
    "ILPResult",
    "ILPStatus",
    "LPResult",
    "LPStatus",
    "Map",
    "MapSpace",
    "NotationError",
    "PointRelation",
    "PointSet",
    "QuantifiedSetError",
    "Set",
    "Space",
    "UnboundedSetError",
    "anonymous",
    "coalesce_set",
    "column_bounds",
    "complement",
    "enumerate_basic_set",
    "enumerate_set",
    "ilp_minimize",
    "integer_feasible_point",
    "is_empty",
    "is_subset",
    "joint_ranks",
    "lex_ge_map",
    "lex_gt_map",
    "lex_le_map",
    "lex_lt_map",
    "lex_ranks",
    "lexmax",
    "lexmin",
    "maps_equal",
    "lexsorted_rows",
    "parse_map",
    "parse_set",
    "sets_equal",
    "simplify",
    "simplify_basic_set",
    "subtract",
    "rowwise_lex_le",
    "rowwise_lex_lt",
    "solve_lp",
    "to_point_relation",
    "to_point_set",
    "unique_rows",
]
