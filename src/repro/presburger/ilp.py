"""Integer linear programming by branch and bound.

Exact integer feasibility, optimization, and lexicographic optimization over
systems of :class:`~repro.presburger.constraint.Constraint`, built on the
rational simplex of :mod:`repro.presburger.lp`.

These routines power the symbolic layer of the mini integer-set library:
emptiness tests, per-dimension bounds for enumeration, and reference
implementations of ``lexmin``/``lexmax`` used to validate the fast NumPy
backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Sequence

from . import cache
from .constraint import Constraint, Kind
from .lp import LPStatus, solve_lp


class ILPStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class ILPResult:
    status: ILPStatus
    value: int | None = None
    point: tuple[int, ...] | None = None


class SearchLimitExceeded(RuntimeError):
    """Raised when branch and bound exceeds its node budget."""


_DEFAULT_NODE_LIMIT = 20_000


def _unit(ncols: int, col: int, sign: int = 1) -> list[int]:
    vec = [0] * ncols
    vec[col] = sign
    return vec


def ilp_minimize(
    objective: Sequence[int],
    constraints: Sequence[Constraint],
    ncols: int,
    node_limit: int = _DEFAULT_NODE_LIMIT,
) -> ILPResult:
    """Minimize an integer objective over the integer points of a polyhedron.

    Results are memoized on ``(objective, constraints, ncols, node_limit)``
    through the Presburger op cache: lexicographic optimization and bound
    queries re-solve identical subproblems constantly.
    """
    obj = tuple(int(v) for v in objective)
    cons = tuple(constraints)
    return cache.memoized(
        "ilp.minimize",
        lambda: _ilp_minimize_uncached(obj, cons, ncols, node_limit),
        obj,
        cons,
        ncols,
        node_limit,
    )


def _ilp_minimize_uncached(
    objective: tuple[int, ...],
    constraints: tuple[Constraint, ...],
    ncols: int,
    node_limit: int,
) -> ILPResult:
    nodes_used = 0
    incumbent_value: int | None = None
    incumbent_point: tuple[int, ...] | None = None
    stack: list[list[Constraint]] = [list(constraints)]

    while stack:
        cons = stack.pop()
        nodes_used += 1
        if nodes_used > node_limit:
            raise SearchLimitExceeded(
                f"branch-and-bound exceeded {node_limit} nodes"
            )
        res = solve_lp(objective, cons, ncols)
        if res.status is LPStatus.INFEASIBLE:
            continue
        if res.status is LPStatus.UNBOUNDED:
            # A rational unbounded direction on a feasible polyhedron scales
            # to an integer ray, so the integer problem is unbounded too
            # (provided some integer point exists, checked below).
            if integer_feasible_point(cons, ncols, node_limit=node_limit) is None:
                continue
            return ILPResult(ILPStatus.UNBOUNDED)
        assert res.value is not None and res.point is not None
        lower = _ceil_fraction(res.value)
        if incumbent_value is not None and lower >= incumbent_value:
            continue
        frac_col = _first_fractional(res.point)
        if frac_col is None:
            value = int(res.value)
            point = tuple(int(v) for v in res.point)
            if incumbent_value is None or value < incumbent_value:
                incumbent_value, incumbent_point = value, point
            continue
        split = res.point[frac_col]
        floor_v = math.floor(split)
        # x <= floor(v)  and  x >= floor(v)+1
        stack.append(
            cons + [Constraint.ge(_unit(ncols, frac_col, -1), floor_v)]
        )
        stack.append(
            cons + [Constraint.ge(_unit(ncols, frac_col, 1), -(floor_v + 1))]
        )

    if incumbent_value is None:
        return ILPResult(ILPStatus.INFEASIBLE)
    return ILPResult(ILPStatus.OPTIMAL, incumbent_value, incumbent_point)


def integer_feasible_point(
    constraints: Sequence[Constraint],
    ncols: int,
    node_limit: int = _DEFAULT_NODE_LIMIT,
) -> tuple[int, ...] | None:
    """Some integer point of the polyhedron, or ``None`` when empty.

    Depth-first branch and bound on the zero objective; the first integral
    LP vertex wins.  Memoized — emptiness checks and sampling hit the same
    systems repeatedly.
    """
    cons = tuple(constraints)
    return cache.memoized(
        "ilp.feasible_point",
        lambda: _feasible_point_uncached(cons, ncols, node_limit),
        cons,
        ncols,
        node_limit,
    )


def _feasible_point_uncached(
    constraints: tuple[Constraint, ...], ncols: int, node_limit: int
) -> tuple[int, ...] | None:
    stack: list[list[Constraint]] = [list(constraints)]
    nodes_used = 0
    zero = [0] * ncols
    while stack:
        cons = stack.pop()
        nodes_used += 1
        if nodes_used > node_limit:
            raise SearchLimitExceeded(
                f"feasibility search exceeded {node_limit} nodes"
            )
        res = solve_lp(zero, cons, ncols)
        if res.status is LPStatus.INFEASIBLE:
            continue
        assert res.point is not None
        frac_col = _first_fractional(res.point)
        if frac_col is None:
            return tuple(int(v) for v in res.point)
        split = res.point[frac_col]
        floor_v = math.floor(split)
        stack.append(cons + [Constraint.ge(_unit(ncols, frac_col, -1), floor_v)])
        stack.append(
            cons + [Constraint.ge(_unit(ncols, frac_col, 1), -(floor_v + 1))]
        )
    return None


def is_empty(
    constraints: Sequence[Constraint],
    ncols: int,
    node_limit: int = _DEFAULT_NODE_LIMIT,
) -> bool:
    """True when the constraint system has no integer solution."""
    for con in constraints:
        if con.normalized().is_contradiction():
            # Syntactic contradiction — no search (and no cache key) needed.
            cache.count_trivial("ilp.is_empty")
            return True
    cons = tuple(constraints)
    return cache.memoized(
        "ilp.is_empty",
        lambda: _feasible_point_uncached(cons, ncols, node_limit) is None,
        cons,
        ncols,
        node_limit,
    )


def lexopt(
    constraints: Sequence[Constraint],
    ncols: int,
    nlead: int,
    maximize: bool,
    node_limit: int = _DEFAULT_NODE_LIMIT,
) -> tuple[int, ...] | None:
    """Lexicographic optimum of the first ``nlead`` columns.

    Optimizes column 0, pins it, optimizes column 1, and so on.  Returns the
    optimal prefix, or ``None`` when the system is infeasible.  Raises
    :class:`ILPUnboundedError` when some leading column is unbounded in the
    requested direction.
    """
    cons = list(constraints)
    prefix: list[int] = []
    for col in range(nlead):
        objective = _unit(ncols, col, -1 if maximize else 1)
        res = ilp_minimize(objective, cons, ncols, node_limit)
        if res.status is ILPStatus.INFEASIBLE:
            return None
        if res.status is ILPStatus.UNBOUNDED:
            raise ILPUnboundedError(
                f"column {col} unbounded during lexicographic optimization"
            )
        assert res.value is not None
        value = -res.value if maximize else res.value
        prefix.append(value)
        cons.append(Constraint.eq(_unit(ncols, col), -value))
    return tuple(prefix)


def lexmin(
    constraints: Sequence[Constraint], ncols: int, nlead: int
) -> tuple[int, ...] | None:
    return lexopt(constraints, ncols, nlead, maximize=False)


def lexmax(
    constraints: Sequence[Constraint], ncols: int, nlead: int
) -> tuple[int, ...] | None:
    return lexopt(constraints, ncols, nlead, maximize=True)


def column_bounds(
    constraints: Sequence[Constraint],
    ncols: int,
    col: int,
    node_limit: int = _DEFAULT_NODE_LIMIT,
) -> tuple[int | None, int | None]:
    """Integer (min, max) of one column; ``None`` marks an unbounded side.

    Returns ``(0, -1)`` — an empty range — when the system is infeasible.
    """
    lo_res = ilp_minimize(_unit(ncols, col, 1), constraints, ncols, node_limit)
    if lo_res.status is ILPStatus.INFEASIBLE:
        return (0, -1)
    hi_res = ilp_minimize(_unit(ncols, col, -1), constraints, ncols, node_limit)
    lo = lo_res.value if lo_res.status is ILPStatus.OPTIMAL else None
    hi = -hi_res.value if hi_res.status is ILPStatus.OPTIMAL else None
    return (lo, hi)


class ILPUnboundedError(RuntimeError):
    """A lexicographic optimization ran along an unbounded direction."""


def _first_fractional(point: Sequence[Fraction]) -> int | None:
    for j, v in enumerate(point):
        if v.denominator != 1:
            return j
    return None


def _ceil_fraction(v: Fraction) -> int:
    return -((-v.numerator) // v.denominator)
