"""Bridging symbolic sets/maps to explicit point sets/relations."""

from __future__ import annotations

import numpy as np

from .basic_map import BasicMap
from .basic_set import BasicSet
from .enumeration import enumerate_basic_set, enumerate_set
from .explicit import PointRelation, PointSet
from .imap import Map
from .iset import Set


def to_point_set(s: Set | BasicSet) -> PointSet:
    """Enumerate a bounded symbolic set into an explicit point set."""
    if isinstance(s, BasicSet):
        return PointSet(enumerate_basic_set(s))
    return PointSet(enumerate_set(s))


def to_point_relation(m: Map | BasicMap) -> PointRelation:
    """Enumerate a bounded symbolic map into an explicit relation."""
    if isinstance(m, BasicMap):
        return PointRelation(enumerate_basic_set(m.wrap()), m.n_in)
    n_in = m.n_in
    chunks = [enumerate_basic_set(p.wrap()) for p in m.pieces]
    chunks = [c for c in chunks if c.shape[0]]
    if not chunks:
        return PointRelation.empty(n_in, m.n_out)
    return PointRelation(np.concatenate(chunks, axis=0), n_in)
