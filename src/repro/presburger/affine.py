"""Integer affine expressions over named dimensions.

:class:`AffineExpr` is an exact, immutable linear form ``Σ c_k · x_k + c0``
with Python-int coefficients, keyed by dimension *name*.  It is the building
block for constraints (:mod:`repro.presburger.constraint`) and for the access
functions produced by the frontend.

The class supports the usual ring operations with other expressions and with
plain integers, plus exact evaluation and coefficient-vector extraction
against a :class:`~repro.presburger.space.Space`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from .space import Space


@dataclass(frozen=True)
class AffineExpr:
    """An affine form with integer coefficients.

    Parameters
    ----------
    coeffs:
        Mapping from dimension name to integer coefficient.  Zero
        coefficients are normalized away.
    const:
        The constant term.
    """

    coeffs: tuple[tuple[str, int], ...]
    const: int = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def build(coeffs: Mapping[str, int] | None = None, const: int = 0) -> "AffineExpr":
        items = tuple(sorted((k, int(v)) for k, v in (coeffs or {}).items() if v != 0))
        return AffineExpr(items, int(const))

    @staticmethod
    def var(name: str) -> "AffineExpr":
        """The expression consisting of the single variable ``name``."""
        return AffineExpr(((name, 1),), 0)

    @staticmethod
    def constant(value: int) -> "AffineExpr":
        return AffineExpr((), int(value))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def coeff(self, name: str) -> int:
        for k, v in self.coeffs:
            if k == name:
                return v
        return 0

    def variables(self) -> Iterator[str]:
        for k, _ in self.coeffs:
            yield k

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def as_dict(self) -> dict[str, int]:
        return dict(self.coeffs)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _combine(self, other: "AffineExpr | int", sign: int) -> "AffineExpr":
        if isinstance(other, int):
            return AffineExpr(self.coeffs, self.const + sign * other)
        merged = dict(self.coeffs)
        for k, v in other.coeffs:
            merged[k] = merged.get(k, 0) + sign * v
        return AffineExpr.build(merged, self.const + sign * other.const)

    def __add__(self, other: "AffineExpr | int") -> "AffineExpr":
        return self._combine(other, 1)

    __radd__ = __add__

    def __sub__(self, other: "AffineExpr | int") -> "AffineExpr":
        return self._combine(other, -1)

    def __rsub__(self, other: int) -> "AffineExpr":
        return (-self) + other

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(tuple((k, -v) for k, v in self.coeffs), -self.const)

    def __mul__(self, factor: int) -> "AffineExpr":
        if not isinstance(factor, int):
            raise TypeError("affine expressions can only be scaled by integers")
        if factor == 0:
            return AffineExpr((), 0)
        return AffineExpr(
            tuple((k, v * factor) for k, v in self.coeffs), self.const * factor
        )

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # evaluation / lowering
    # ------------------------------------------------------------------
    def substitute(self, bindings: Mapping[str, "AffineExpr | int"]) -> "AffineExpr":
        """Replace variables by integers or other affine expressions."""
        out = AffineExpr.constant(self.const)
        for k, v in self.coeffs:
            if k in bindings:
                repl = bindings[k]
                if isinstance(repl, int):
                    out = out + v * repl
                else:
                    out = out + repl * v
            else:
                out = out + AffineExpr(((k, v),), 0)
        return out

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Exact value of the expression under a full variable binding."""
        total = self.const
        for k, v in self.coeffs:
            total += v * env[k]
        return total

    def vector(self, space: Space) -> tuple[list[int], int]:
        """Coefficient vector aligned with ``space.dims`` plus constant.

        Raises ``KeyError`` if the expression mentions a variable that is not
        a dimension of ``space``.
        """
        vec = [0] * space.ndim
        for k, v in self.coeffs:
            if k not in space.dims:
                raise KeyError(f"variable {k!r} not in space {space}")
            vec[space.index(k)] = v
        return vec, self.const

    def __str__(self) -> str:
        parts: list[str] = []
        for k, v in self.coeffs:
            if v == 1:
                term = k
            elif v == -1:
                term = f"-{k}"
            else:
                term = f"{v}*{k}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self.const or not parts:
            if parts:
                sign = "+" if self.const >= 0 else "-"
                parts.append(f"{sign} {abs(self.const)}")
            else:
                parts.append(str(self.const))
        return " ".join(parts)
