"""The artifact payload: one compile's outputs, checksummed on disk.

File layout (everything after the header is one pickle)::

    bytes 0..7    MAGIC  b"RPASTOR\\x01"
    bytes 8..39   SHA-256 of the payload bytes
    bytes 40..    payload: pickle of ``CompileArtifact.to_payload()``

The checksum makes truncation and bit-rot *detectable before unpickling*
— a corrupted file raises :class:`ArtifactCorruptError`, which the store
turns into a miss (recompile), never a crash or a poisoned unpickle.

The payload itself is plain data: explicit-relation dicts for the
pipeline info, the compressed ``.npz`` task-AST blob of
:mod:`repro.schedule.serialize`, declarative ``ClosureSpec`` dicts for
the fused program, and privatization-proof dicts that loaders MUST pass
back through :func:`repro.schedule.legality.verify_privatization` (the
store is durable, not trusted).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any

from .keys import SCHEMA_VERSION

MAGIC = b"RPASTOR\x01"
_SHA_LEN = 32


class ArtifactCorruptError(ValueError):
    """The on-disk artifact bytes fail the integrity checks."""


@dataclass
class CompileArtifact:
    """Serialized outputs of one compile, addressed by ``key``."""

    key: str
    kernel_sha: str
    params: dict[str, int]
    options_fingerprint: str
    #: explicit-relation dict of :class:`repro.pipeline.PipelineInfo`
    info: dict
    #: compressed npz blob of the task AST (schedule tree already lowered)
    task_ast_blob: bytes
    #: ``FusedProgram.to_dict()`` — ClosureSpec corpus + chains (None
    #: when the compile ran with fusion off)
    fused: dict | None = None
    #: privatization proofs (``PrivatizationProof.to_dict()`` rows);
    #: loaders re-verify each via ``verify_privatization`` — mandatory
    proofs: list[dict] = field(default_factory=list)
    #: True when the artifact came from the privatized arm (proofs drive
    #: the schedule, not just annotate it)
    privatized: bool = False
    #: legality verdict recorded at compile time (None = not checked)
    legality_ok: bool | None = None
    #: static-analysis findings as rendered rows (informational)
    diagnostics: list[dict] = field(default_factory=list)
    #: wall seconds of the cold compile phases
    timings: dict[str, float] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_payload(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "key": self.key,
            "kernel_sha": self.kernel_sha,
            "params": dict(self.params),
            "options_fingerprint": self.options_fingerprint,
            "info": self.info,
            "task_ast_blob": self.task_ast_blob,
            "fused": self.fused,
            "proofs": list(self.proofs),
            "privatized": self.privatized,
            "legality_ok": self.legality_ok,
            "diagnostics": list(self.diagnostics),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CompileArtifact":
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ArtifactCorruptError(
                f"artifact schema version {version!r} != {SCHEMA_VERSION}"
            )
        return cls(
            key=payload["key"],
            kernel_sha=payload["kernel_sha"],
            params=dict(payload["params"]),
            options_fingerprint=payload["options_fingerprint"],
            info=payload["info"],
            task_ast_blob=payload["task_ast_blob"],
            fused=payload.get("fused"),
            proofs=list(payload.get("proofs", ())),
            privatized=bool(payload.get("privatized", False)),
            legality_ok=payload.get("legality_ok"),
            diagnostics=list(payload.get("diagnostics", ())),
            timings=dict(payload.get("timings", ())),
            schema_version=version,
        )


def pack_artifact(artifact: CompileArtifact) -> bytes:
    """Artifact -> checksummed bytes (the on-disk file content)."""
    payload = pickle.dumps(artifact.to_payload(), protocol=4)
    digest = hashlib.sha256(payload).digest()
    return MAGIC + digest + payload


def unpack_artifact(data: bytes) -> CompileArtifact:
    """Checksummed bytes -> artifact; raises :class:`ArtifactCorruptError`.

    Order matters: magic, length, checksum are all verified *before*
    ``pickle.loads`` ever sees the payload.
    """
    if len(data) < len(MAGIC) + _SHA_LEN:
        raise ArtifactCorruptError(
            f"artifact truncated: {len(data)} bytes is shorter than the "
            "header"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise ArtifactCorruptError("bad artifact magic")
    digest = data[len(MAGIC) : len(MAGIC) + _SHA_LEN]
    payload = data[len(MAGIC) + _SHA_LEN :]
    if hashlib.sha256(payload).digest() != digest:
        raise ArtifactCorruptError("artifact payload checksum mismatch")
    try:
        doc = pickle.loads(payload)
    except Exception as exc:  # checksum passed but pickle still broken
        raise ArtifactCorruptError(f"artifact payload unreadable: {exc}")
    if not isinstance(doc, dict):
        raise ArtifactCorruptError("artifact payload is not a mapping")
    return CompileArtifact.from_payload(doc)
