"""The on-disk store: atomic writes, LRU eviction, stats/gc.

Layout: ``<root>/<key[:2]>/<key>.rpa`` — two-level fan-out keeps
directory listings bounded.  Writes go through a same-directory
tempfile + :func:`os.replace`, so a reader never sees a half-written
artifact (and a crashed writer leaves only a ``.tmp`` file the next
``gc`` sweeps).  Reads touch the file's mtime, making mtime order the
LRU order that :meth:`ArtifactStore.gc` evicts by.

Every store instance counts its own hits/misses/puts/evictions; the
module additionally aggregates *session counters* across all stores in
the process, which is what ``repro analyze --stats`` and the obs
metrics registry surface.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass, field

from .artifact import (
    ArtifactCorruptError,
    CompileArtifact,
    pack_artifact,
    unpack_artifact,
)

#: Default ceilings (overridable per store and via ``gc`` arguments).
DEFAULT_MAX_BYTES = 1 << 30  # 1 GiB
DEFAULT_MAX_ENTRIES = 4096

_SUFFIX = ".rpa"

_SESSION_LOCK = threading.Lock()
_SESSION: dict[str, int] = {}


def _count(name: str, value: int = 1) -> None:
    with _SESSION_LOCK:
        _SESSION[name] = _SESSION.get(name, 0) + value


def session_counters() -> dict[str, int]:
    """Process-wide artifact-store counters (all stores aggregated)."""
    with _SESSION_LOCK:
        return dict(_SESSION)


def bump_session(name: str, value: int = 1) -> None:
    """Count an event into the session counters (used by the compile
    tier for store-adjacent events like warm-replay failures)."""
    _count(name, value)


def reset_session_counters() -> None:
    with _SESSION_LOCK:
        _SESSION.clear()


#: Final metrics snapshot a shutting-down ``repro serve`` leaves behind,
#: at the store root (``_entries`` only scans subdirectories, so a
#: root-level file never collides with artifact bookkeeping).
METRICS_SNAPSHOT = "metrics-last.json"


def save_metrics_snapshot(root: str, doc: dict) -> str:
    """Atomically persist a serving session's final metrics document."""
    import json
    import tempfile as _tempfile

    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, METRICS_SNAPSHOT)
    fd, tmp = _tempfile.mkstemp(dir=root, prefix=".tmp-metrics-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


def load_metrics_snapshot(root: str) -> dict | None:
    """The last serving session's metrics, or ``None`` if never served."""
    import json

    path = os.path.join(root, METRICS_SNAPSHOT)
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/artifacts``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "artifacts"
    )


@dataclass
class StoreStats:
    """Disk occupancy plus this store's lifetime counters."""

    root: str
    entries: int
    bytes: int
    max_bytes: int
    max_entries: int
    counters: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "entries": self.entries,
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
            "counters": dict(self.counters),
        }

    def format(self) -> str:
        c = self.counters
        lines = [
            f"artifact store at {self.root}",
            f"  entries     {self.entries} (limit {self.max_entries})",
            f"  bytes       {self.bytes} (limit {self.max_bytes})",
            f"  hits        {c.get('hits', 0)}",
            f"  misses      {c.get('misses', 0)}",
            f"  puts        {c.get('puts', 0)}",
            f"  evictions   {c.get('evictions', 0)}",
            f"  corrupt     {c.get('corrupt', 0)}",
        ]
        return "\n".join(lines)


class ArtifactStore:
    """Content-addressed artifact files under one root directory."""

    def __init__(
        self,
        root: str | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ):
        self.root = os.path.abspath(root or default_cache_dir())
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "evictions": 0,
            "corrupt": 0,
        }

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + _SUFFIX)

    def _bump(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value
        _count(name, value)

    # ------------------------------------------------------------------
    def get(self, key: str) -> CompileArtifact | None:
        """Load an artifact, or ``None`` (miss / corrupt / wrong key).

        Corrupt or truncated files are deleted and counted, then treated
        as a plain miss — the caller recompiles and overwrites.
        """
        from ..obs.spans import span

        path = self.path_for(key)
        with span("store.get", key=key[:12]) as sp:
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                self._bump("misses")
                sp.set(hit=False)
                return None
            try:
                artifact = unpack_artifact(data)
                if artifact.key != key:
                    raise ArtifactCorruptError(
                        f"artifact key {artifact.key[:12]} does not match "
                        f"file address {key[:12]}"
                    )
            except ArtifactCorruptError:
                self._bump("corrupt")
                self._bump("misses")
                sp.set(hit=False, corrupt=True)
                try:
                    os.remove(path)
                except OSError:
                    pass
                return None
            # Touch: mtime order is the LRU order gc evicts by.
            try:
                os.utime(path, None)
            except OSError:
                pass
            self._bump("hits")
            sp.set(hit=True, bytes=len(data))
            return artifact

    def put(self, key: str, artifact: CompileArtifact) -> str:
        """Atomically write an artifact; returns its path.

        Same-directory tempfile + ``os.replace`` — concurrent writers of
        the same key race benignly (last replace wins, both files were
        complete), and readers never observe partial content.
        """
        from ..obs.spans import span

        path = self.path_for(key)
        data = pack_artifact(artifact)
        with span("store.put", key=key[:12], bytes=len(data)):
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
            self._bump("puts")
        self.gc()
        return path

    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) of every artifact file, oldest first."""
        rows: list[tuple[float, int, str]] = []
        if not os.path.isdir(self.root):
            return rows
        for sub in os.listdir(self.root):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in os.listdir(subdir):
                path = os.path.join(subdir, name)
                if name.startswith(".tmp-"):
                    # leftover from a crashed writer — but only reap old
                    # ones, a fresh tmp may be another process mid-write
                    try:
                        import time

                        if time.time() - os.stat(path).st_mtime > 300:
                            os.remove(path)
                    except OSError:
                        pass
                    continue
                if not name.endswith(_SUFFIX):
                    continue
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                rows.append((st.st_mtime, st.st_size, path))
        rows.sort()
        return rows

    def gc(
        self,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> list[str]:
        """Evict least-recently-used artifacts beyond the ceilings.

        Returns the evicted paths.  Explicit arguments override the
        store's configured limits for this sweep (``repro store gc``).
        """
        limit_bytes = self.max_bytes if max_bytes is None else int(max_bytes)
        limit_entries = (
            self.max_entries if max_entries is None else int(max_entries)
        )
        rows = self._entries()
        total = sum(size for _, size, _ in rows)
        evicted: list[str] = []
        for mtime, size, path in rows:
            if len(rows) - len(evicted) <= limit_entries and (
                total <= limit_bytes
            ):
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            evicted.append(path)
            self._bump("evictions")
        return evicted

    def clear(self) -> int:
        """Remove every artifact; returns how many were removed."""
        removed = 0
        for _, _, path in self._entries():
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> StoreStats:
        rows = self._entries()
        return StoreStats(
            root=self.root,
            entries=len(rows),
            bytes=sum(size for _, size, _ in rows),
            max_bytes=self.max_bytes,
            max_entries=self.max_entries,
            counters=dict(self.counters),
        )
