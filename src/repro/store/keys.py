"""Artifact key derivation.

A store key must change whenever *anything* that can change the compile
output changes, and must be identical across processes whenever nothing
did.  Three independent components are hashed together:

* ``kernel_sha`` — SHA-256 of the kernel source text (the symbolic
  program; MARS-style, sizes are keyed separately via ``params``);
* ``options_fingerprint`` — a canonical JSON rendering of **every**
  field of :class:`repro.driver.TransformOptions` (walked generically
  through ``dataclasses.fields``, so a newly added option can never be
  silently left out of the key);
* :data:`SCHEMA_VERSION` — bumped whenever the artifact payload layout
  changes, so stale formats read as misses instead of mis-parses.

Only plain data may enter a fingerprint: enums render as
``ClassName.MEMBER``, nested (frozen) dataclasses recurse, mappings are
key-sorted.  Anything else raises — an unfingerprintable option is a
bug, not a cache policy.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Mapping

#: Bump when the artifact payload layout changes (old entries become
#: misses — the store never tries to parse a foreign schema).
SCHEMA_VERSION = 1


def kernel_sha(source: str) -> str:
    """SHA-256 hex digest of the kernel source text, byte-exact."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _canon(value: Any) -> Any:
    """Reduce a value to canonical plain data (deterministic JSON)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips exactly; json.dumps uses it already, but keep
        # floats explicit so the contract is visible here.
        return value
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _canon(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canon(v) for v in value)
    if isinstance(value, Mapping):
        return {
            str(k): _canon(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    raise TypeError(
        f"cannot fingerprint {type(value).__name__!r} value {value!r}; "
        "store keys accept only plain data, enums and (frozen) dataclasses"
    )


def options_fingerprint(options) -> str:
    """Canonical fingerprint covering every ``TransformOptions`` field.

    Walked generically via :func:`dataclasses.fields`: flipping *any*
    field — including ones added after this module was written — yields
    a different fingerprint (the cache-key stability tests enumerate
    them all).
    """
    payload = _canon(options)
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def artifact_key(
    source: str,
    params: Mapping[str, int] | None,
    options,
) -> str:
    """The content address of one compile: 64 hex chars."""
    parts = {
        "schema": SCHEMA_VERSION,
        "kernel": kernel_sha(source),
        "params": _canon(dict(params or {})),
        "options": options_fingerprint(options),
    }
    return hashlib.sha256(
        json.dumps(parts, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
