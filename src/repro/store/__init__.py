"""Content-addressed on-disk artifact store (the durable compile tier).

The PR2 Presburger cache makes *one process* fast; this package makes
the *fleet* fast: every completed compile (pipeline info, task AST,
fused closure specs, privatization proofs, diagnostics) is serialized
into one checksummed artifact file keyed by

    ``sha256(kernel source) × params × TransformOptions fingerprint
    × artifact-schema version``

so any later process — a CLI invocation, a ``repro serve`` worker, CI —
can answer an identical compile request from disk instead of re-running
Algorithm 1.  Loads re-verify what must not be trusted (privatization
proofs go through :func:`repro.schedule.legality.verify_privatization`
again); corrupted or truncated files are detected by checksum and
treated as misses, never crashes.
"""

from .artifact import ArtifactCorruptError, CompileArtifact
from .disk import (
    ArtifactStore,
    StoreStats,
    default_cache_dir,
    load_metrics_snapshot,
    save_metrics_snapshot,
    session_counters,
)
from .keys import SCHEMA_VERSION, artifact_key, kernel_sha, options_fingerprint

__all__ = [
    "ArtifactCorruptError",
    "ArtifactStore",
    "CompileArtifact",
    "SCHEMA_VERSION",
    "StoreStats",
    "artifact_key",
    "default_cache_dir",
    "kernel_sha",
    "load_metrics_snapshot",
    "options_fingerprint",
    "save_metrics_snapshot",
    "session_counters",
]
