"""Graphviz DOT export of task graphs.

``dot -Tsvg`` (or any Graphviz viewer) renders the pipeline structure:
one cluster per statement, blocks in execution order, cross-statement
dependency edges between clusters.  Optionally annotates nodes with the
simulated schedule (start/finish times).
"""

from __future__ import annotations

from collections import defaultdict

from .simulator import SimResult
from .task import TaskGraph

_PALETTE = (
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
    "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
)


def to_dot(
    graph: TaskGraph,
    sim: SimResult | None = None,
    max_label_iters: int = 0,
) -> str:
    """Render the task graph as a DOT digraph string."""
    by_statement: dict[str, list[int]] = defaultdict(list)
    for task in graph.tasks:
        by_statement[task.statement].append(task.task_id)

    lines = [
        "digraph tasks {",
        "  rankdir=LR;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    for idx, (statement, tids) in enumerate(by_statement.items()):
        color = _PALETTE[idx % len(_PALETTE)]
        lines.append(f"  subgraph cluster_{idx} {{")
        lines.append(f'    label="{statement}";')
        for tid in tids:
            task = graph.tasks[tid]
            label = f"{statement}#{task.block_id}\\ncost {task.cost:g}"
            if sim is not None:
                label += f"\\n[{sim.start[tid]:g}, {sim.finish[tid]:g})"
            if max_label_iters and task.block is not None:
                head = task.block.iterations[:max_label_iters].tolist()
                label += f"\\n{head}"
            lines.append(
                f'    t{tid} [label="{label}", fillcolor="{color}"];'
            )
        lines.append("  }")
    for succ, preds in enumerate(graph.preds):
        for pred in sorted(preds):
            lines.append(f"  t{pred} -> t{succ};")
    lines.append("}")
    return "\n".join(lines)


def write_dot(path: str, graph: TaskGraph, sim: SimResult | None = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_dot(graph, sim))
