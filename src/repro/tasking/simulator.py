"""Discrete-event simulation of task-graph execution.

The performance substitute for the paper's quad-core OpenMP runs (see
DESIGN.md §2): a deterministic greedy list scheduler executes a
:class:`~repro.tasking.task.TaskGraph` on ``workers`` identical workers.
A task becomes ready when all predecessors finished; ready tasks start as
soon as a worker is free, in creation order (FIFO, OpenMP-like) or most
recently enabled first (LIFO, Cilk-like work stealing) — the scheduler
policy is an ablation axis.

Per-task creation/dispatch overhead models the ``omp task`` cost the paper
mentions when discussing granularity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .task import TaskGraph


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulated execution."""

    makespan: float
    start: np.ndarray
    finish: np.ndarray
    worker: np.ndarray
    workers: int
    policy: str

    def speedup_vs(self, sequential_time: float) -> float:
        if self.makespan == 0:
            return float("inf") if sequential_time > 0 else 1.0
        return sequential_time / self.makespan

    def utilization(self) -> float:
        busy = float((self.finish - self.start).sum())
        if self.makespan == 0:
            return 1.0
        return busy / (self.makespan * self.workers)

    def timeline(self, graph: TaskGraph) -> list[tuple[str, int, float, float, int]]:
        """(statement, block, start, finish, worker) rows, by start time."""
        rows = [
            (
                graph.tasks[tid].statement,
                graph.tasks[tid].block_id,
                float(self.start[tid]),
                float(self.finish[tid]),
                int(self.worker[tid]),
            )
            for tid in range(len(graph.tasks))
        ]
        rows.sort(key=lambda r: (r[2], r[0], r[1]))
        return rows


def simulate(
    graph: TaskGraph,
    workers: int,
    overhead: float = 0.0,
    policy: str = "fifo",
) -> SimResult:
    """Simulate list-scheduled execution of the task graph.

    Parameters
    ----------
    graph:
        The task DAG; task costs are in abstract time units.
    workers:
        Number of identical workers (cores/threads).
    overhead:
        Added to every task's cost (task creation + dispatch).
    policy:
        ``"fifo"`` — ready tasks start in task-creation order;
        ``"lifo"`` — most recently enabled task starts first;
        ``"cp"``  — highest critical-path-to-exit priority first
        (HEFT-style upward rank on uniform workers).
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if policy not in ("fifo", "lifo", "cp"):
        raise ValueError(f"unknown policy {policy!r}")
    from ..obs.spans import span

    with span("tasking.simulate", workers=workers, policy=policy):
        return _simulate(graph, workers, overhead, policy)


def _simulate(
    graph: TaskGraph, workers: int, overhead: float, policy: str
) -> SimResult:
    n = len(graph.tasks)
    start = np.zeros(n)
    finish = np.zeros(n)
    assigned = np.full(n, -1, dtype=np.int64)

    indeg = [len(p) for p in graph.preds]
    counter = 0
    ready: list[tuple[float, int]] = []  # (priority, task id)

    if policy == "cp":
        # Upward rank: longest cost-weighted path from each task to an exit.
        rank = np.zeros(n)
        for tid in reversed(graph.topological_order()):
            succ_best = max(
                (rank[s] for s in graph.succs[tid]), default=0.0
            )
            rank[tid] = graph.tasks[tid].cost + succ_best

    def push(tid: int) -> None:
        nonlocal counter
        if policy == "fifo":
            key = float(tid)
        elif policy == "lifo":
            key = float(-counter)
        else:  # cp: highest rank first, creation order tie-break
            key = (-rank[tid], tid)  # type: ignore[assignment]
        counter += 1
        heapq.heappush(ready, (key, tid))

    for tid in range(n):
        if indeg[tid] == 0:
            push(tid)

    running: list[tuple[float, int, int]] = []  # (finish time, task, worker)
    free_workers = list(range(workers - 1, -1, -1))
    now = 0.0
    completed = 0

    while completed < n:
        while ready and free_workers:
            _, tid = heapq.heappop(ready)
            w = free_workers.pop()
            start[tid] = now
            finish[tid] = now + graph.tasks[tid].cost + overhead
            assigned[tid] = w
            heapq.heappush(running, (finish[tid], tid, w))
        if not running:
            raise RuntimeError("deadlock: no ready tasks and none running")
        now, tid, w = heapq.heappop(running)
        free_workers.append(w)
        completed += 1
        for s in graph.succs[tid]:
            indeg[s] -= 1
            if indeg[s] == 0:
                push(s)
        # Drain all completions at the same instant before assigning.
        while running and running[0][0] == now:
            _, tid2, w2 = heapq.heappop(running)
            free_workers.append(w2)
            completed += 1
            for s in graph.succs[tid2]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    push(s)

    return SimResult(
        makespan=float(finish.max(initial=0.0)),
        start=start,
        finish=finish,
        worker=assigned,
        workers=workers,
        policy=policy,
    )


def sequential_time(graph: TaskGraph, overhead: float = 0.0) -> float:
    """Time of the original sequential program (no tasks, no overhead)."""
    del overhead  # the sequential program creates no tasks
    return graph.total_cost()


def scaling_curve(
    graph: TaskGraph,
    workers: tuple[int, ...] = (1, 2, 4, 8, 16),
    overhead: float = 0.0,
    policy: str = "fifo",
) -> dict[int, float]:
    """Strong-scaling speed-ups over a range of worker counts.

    Returns ``{worker count: speed-up vs the task-free sequential run}``.
    The curve plateaus at ``total / critical_path`` — for pipeline graphs,
    at the number of overlappable loop nests (Section 4.4).
    """
    base = graph.total_cost()
    return {
        w: base / simulate(graph, w, overhead=overhead, policy=policy).makespan
        for w in workers
    }
