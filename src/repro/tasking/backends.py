"""Alternative tasking backends behind the CreateTask interface.

The paper's Section 7 expects the tasking layer to be swappable "with
minimal changes" because task detection is independent of OpenMP.  This
module demonstrates that: three backends implement the same
``create_task(...)`` signature as :class:`~repro.tasking.api.OmpTaskSystem`
(the OpenMP-like reference), and the generated task programs of
:mod:`repro.codegen.emit` run unchanged against any of them.

* :class:`SerialBackend` — executes each task immediately at creation.
  Tasks are created in original program order, which is a topological
  order of the dependence graph, so immediate execution is trivially
  correct; this is the "tasking disabled" escape hatch.
* :class:`FuturesBackend` — maps tasks onto
  :class:`concurrent.futures.ThreadPoolExecutor` futures.  Dependency slots
  hold the future of their last writer; a task waits on its dependency
  futures, then runs — the futures-pipelining style of Blelloch &
  Reid-Miller that the paper cites.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor, wait
from typing import Callable, Sequence


class SerialBackend:
    """Immediate, in-order execution (creation order is topological)."""

    def __init__(self, write_num: int):
        if write_num < 1:
            raise ValueError("write_num must be positive")
        self.write_num = write_num
        self.executed: list[str] = []

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
    ) -> int:
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")
        func(task_input)
        self.executed.append(statement or getattr(func, "__name__", "task"))
        return len(self.executed) - 1

    def run(self, workers: int = 1):
        """Everything already ran at creation; nothing to do."""
        del workers
        return None

    def __len__(self) -> int:
        return len(self.executed)


class FuturesBackend:
    """Thread-pool futures with slot-based dependency chaining."""

    def __init__(self, write_num: int, workers: int = 4):
        if write_num < 1:
            raise ValueError("write_num must be positive")
        self.write_num = write_num
        self.executor = ThreadPoolExecutor(max_workers=workers)
        self._slot_future: dict[int, Future] = {}
        self._func_future: dict[object, Future] = {}
        self._all: list[Future] = []

    def slot(self, depend: int, idx: int) -> int:
        if not 0 <= idx < self.write_num:
            raise ValueError(
                f"idx {idx} out of range for write_num {self.write_num}"
            )
        return self.write_num * depend + idx

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
    ) -> int:
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")
        deps = [
            self._slot_future[self.slot(d, ix)]
            for d, ix in zip(in_depend, in_idx)
            if self.slot(d, ix) in self._slot_future
        ]
        prev_same = self._func_future.get(func)
        if prev_same is not None:
            deps.append(prev_same)

        def body(deps=tuple(deps)) -> None:
            wait(deps)
            for d in deps:  # re-raise task failures
                exc = d.exception()
                if exc is not None:
                    raise exc
            func(task_input)

        fut = self.executor.submit(body)
        self._slot_future[self.slot(out_depend, out_idx)] = fut
        self._func_future[func] = fut
        self._all.append(fut)
        return len(self._all) - 1

    def run(self, workers: int = 0):
        """Block until every created task finished; re-raise failures."""
        del workers  # pool size fixed at construction
        wait(self._all)
        for fut in self._all:
            exc = fut.exception()
            if exc is not None:
                raise exc
        self.executor.shutdown(wait=True)
        return None

    def __len__(self) -> int:
        return len(self._all)
