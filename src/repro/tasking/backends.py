"""Alternative tasking backends behind the CreateTask interface.

The paper's Section 7 expects the tasking layer to be swappable "with
minimal changes" because task detection is independent of OpenMP.  This
module demonstrates that: three backends implement the same
``create_task(...)`` signature as :class:`~repro.tasking.api.OmpTaskSystem`
(the OpenMP-like reference), and the generated task programs of
:mod:`repro.codegen.emit` run unchanged against any of them.

* :class:`SerialBackend` — executes each task immediately at creation.
  Tasks are created in original program order, which is a topological
  order of the dependence graph, so immediate execution is trivially
  correct; this is the "tasking disabled" escape hatch.
* :class:`FuturesBackend` — records tasks at creation and dispatches
  them from :meth:`run` with a *work-stealing* thread scheduler:
  per-worker deques (LIFO locally for cache affinity, FIFO steals),
  integer dependency counters and a dependents adjacency list, so
  readiness tracking is O(edges) overall instead of one blocked pool
  slot per task waiting on futures.
* :class:`ProcessBackend` — executes task blocks in a persistent
  :class:`concurrent.futures.ProcessPoolExecutor` against a
  :class:`~repro.interp.store.SharedArrayStore`, the closest Python
  analogue of the paper's OpenMP runtime actually running on cores.
  Task *creation* only records the block and its dependency slots;
  :meth:`ProcessBackend.run` dispatches *ready batches* — simultaneously
  ready blocks grouped into one submission — with counter-based
  readiness, amortizing the inter-process round-trip per task.  Nothing
  kernel-specific is pickled per task — workers rebuild the interpreter
  once from a spec and receive ``(statement, iterations)`` pairs.

Dependency bookkeeping is identical across backends (and
:class:`OmpTaskSystem`): an *in* slot waits for the slot's last writer,
and tasks created from the same function pointer chain sequentially
(the ``funcCount`` trick of Figure 8).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..obs import runtime as obs_runtime


class SlotAddressing:
    """The shared ``dependArr`` slot packing of Figure 8.

    Every backend addresses a dependency token as
    ``write_num * depend + idx`` where ``depend`` is the packed block end
    and ``idx`` the statement column — the exact layout
    :mod:`repro.codegen.emit` bakes into generated programs.  Hoisted
    here so the backends (and :class:`~repro.tasking.api.OmpTaskSystem`)
    cannot drift apart; ``tests/tasking`` cross-checks the arithmetic
    against :mod:`repro.codegen.packing`.
    """

    write_num: int

    def _init_slots(self, write_num: int) -> None:
        if write_num < 1:
            raise ValueError("write_num must be positive")
        self.write_num = write_num

    def slot(self, depend: int, idx: int) -> int:
        """The ``dependArr`` address of a dependency token (Figure 8)."""
        if not 0 <= idx < self.write_num:
            raise ValueError(
                f"idx {idx} out of range for write_num {self.write_num}"
            )
        return self.write_num * depend + idx


class SerialBackend(SlotAddressing):
    """Immediate, in-order execution (creation order is topological)."""

    def __init__(self, write_num: int):
        self._init_slots(write_num)
        self.executed: list[str] = []

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
        chain: bool = True,
    ) -> int:
        del chain  # execution is already strictly in creation order
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")
        collector = obs_runtime.current()
        if collector is None:
            func(task_input)
        else:
            t0 = collector.now_ns()
            func(task_input)
            collector.record(
                len(self.executed),
                statement or getattr(func, "__name__", "task"),
                worker=0,
                start_ns=t0,
                end_ns=collector.now_ns(),
            )
            collector.count("tasks")
        self.executed.append(statement or getattr(func, "__name__", "task"))
        return len(self.executed) - 1

    def run(self, workers: int = 1):
        """Everything already ran at creation; nothing to do."""
        del workers
        return None

    def __len__(self) -> int:
        return len(self.executed)


@dataclass
class _RecordedCall:
    """One recorded thread task: the callable, its payload and dep counters."""

    tid: int
    func: Callable[[object], None]
    payload: object
    deps: set[int] = field(default_factory=set)
    cost: float = 1.0
    statement: str | None = None


class FuturesBackend(SlotAddressing):
    """Thread backend with batched work-stealing dispatch.

    ``create_task`` only records the call and resolves its dependency
    slots to producing task ids (slot-writer table plus the same-function
    self chain, duplicates collapsed).  :meth:`run` then executes the
    graph on ``workers`` threads: each worker owns a deque, pushes newly
    ready dependents locally (LIFO — the freshest task's data is hot) and
    steals oldest-first from siblings when drained.  Readiness is an
    integer remaining-dependency counter per task, decremented as
    predecessors finish — no future chaining, no slot scans, no pool
    threads parked on ``wait()``.

    A task failure stops dispatch, leaves every transitive dependent
    unexecuted and re-raises from :meth:`run` after the workers drained.
    Scheduling statistics land in :attr:`stats` (also returned by
    :meth:`run`).
    """

    def __init__(self, write_num: int, workers: int = 4):
        self._init_slots(write_num)
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._tasks: list[_RecordedCall] = []
        self._slot_writer: dict[int, int] = {}
        self._chain_last: dict[object, int] = {}
        self.stats: dict | None = None

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
        chain: bool = True,
    ) -> int:
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")
        tid = len(self._tasks)
        task = _RecordedCall(tid, func, task_input, cost=cost, statement=statement)
        for d, ix in zip(in_depend, in_idx):
            writer = self._slot_writer.get(self.slot(d, ix))
            if writer is not None:
                task.deps.add(writer)
        if chain:
            prev_same = self._chain_last.get(func)
            if prev_same is not None:
                task.deps.add(prev_same)
            self._chain_last[func] = tid
        self._slot_writer[self.slot(out_depend, out_idx)] = tid
        self._tasks.append(task)
        return tid

    def run(self, workers: int = 0) -> dict:
        """Execute every recorded task; returns scheduling statistics."""
        del workers  # worker count fixed at construction
        n = len(self._tasks)
        nworkers = max(1, min(self.workers, n))
        counts = [len(t.deps) for t in self._tasks]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for t in self._tasks:
            for d in t.deps:
                dependents[d].append(t.tid)

        queues = [deque() for _ in range(nworkers)]
        for k, t in enumerate(t for t in self._tasks if not t.deps):
            queues[k % nworkers].append(t.tid)

        cv = threading.Condition()
        state = {
            "pending": n,
            "executed": 0,
            "steals": 0,
            "failure": None,
        }

        collector = obs_runtime.current()

        def acquire(me: int) -> tuple[int, bool] | None:
            """``(task id, stolen)`` for worker ``me``; None to shut down."""
            if queues[me]:
                return queues[me].pop(), False  # own deque, LIFO
            for k in range(1, nworkers):
                victim = queues[(me + k) % nworkers]
                if victim:
                    state["steals"] += 1
                    return victim.popleft(), True  # steal oldest-first
            return None

        def worker(me: int) -> None:
            done: int | None = None
            while True:
                with cv:
                    if done is not None:
                        state["pending"] -= 1
                        state["executed"] += 1
                        for d in dependents[done]:
                            counts[d] -= 1
                            if counts[d] == 0:
                                queues[me].append(d)
                        if state["pending"] == 0 or len(queues[me]) > 1:
                            cv.notify_all()
                        done = None
                    while True:
                        if state["failure"] is not None or state["pending"] == 0:
                            return
                        acquired = acquire(me)
                        if acquired is not None:
                            tid, stolen = acquired
                            break
                        cv.wait()
                    if collector is not None:
                        collector.queue_sample(me, len(queues[me]))
                task = self._tasks[tid]
                t0 = collector.now_ns() if collector is not None else 0
                try:
                    task.func(task.payload)
                except BaseException as exc:  # noqa: BLE001 — re-raised below
                    with cv:
                        if state["failure"] is None:
                            state["failure"] = exc
                        cv.notify_all()
                    return
                if collector is not None:
                    collector.record(
                        tid,
                        task.statement
                        or getattr(task.func, "__name__", "task"),
                        worker=me,
                        start_ns=t0,
                        end_ns=collector.now_ns(),
                        stolen=stolen,
                    )
                done = tid

        threads = [
            threading.Thread(target=worker, args=(k,), name=f"repro-ws-{k}")
            for k in range(nworkers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

        if state["failure"] is not None:
            raise state["failure"]
        if state["executed"] != n:
            raise RuntimeError(
                f"scheduler stalled: {state['executed']}/{n} tasks ran "
                "(dependency cycle in recorded tasks?)"
            )
        self.stats = {
            "policy": "work-stealing",
            "tasks": n,
            "workers": nworkers,
            "steals": state["steals"],
        }
        if collector is not None:
            collector.count("tasks", n)
            collector.count("steals", state["steals"])
        return self.stats

    def __len__(self) -> int:
        return len(self._tasks)


# ----------------------------------------------------------------------
# process pool over shared memory
# ----------------------------------------------------------------------
#: Worker-process globals, set once by :func:`_process_worker_init`.
_WORKER_INTERP = None
_WORKER_STORE = None


def _process_worker_init(
    program, params, funcs, store_spec, vectorize, fuse="off", fused=None
):
    """Build this worker's interpreter and attach the shared store.

    ``fused`` carries the parent's fusion plan; its kernels pickle as
    declarative specs (``FusedKernel.__reduce__``) and the closures were
    regenerated during unpickling, so adopting the plan skips the
    per-worker Presburger legality analysis — and ships chain kernels,
    which are only planned against the parent's task AST.
    """
    global _WORKER_INTERP, _WORKER_STORE
    from ..interp import Interpreter
    from ..interp.store import SharedArrayStore
    from ..scop import extract_scop

    scop = extract_scop(program, dict(params))
    _WORKER_INTERP = Interpreter(
        program, scop, funcs, vectorize=vectorize, fuse=fuse
    )
    if fused is not None:
        _WORKER_INTERP.adopt_fused(fused)
    _WORKER_STORE = SharedArrayStore.attach(store_spec)


def _process_worker_run(
    statement: str, iterations, remap=None, combine=None, rects=None
) -> None:
    """Execute one pipeline block (or one combine step) in this worker.

    ``remap`` redirects an accumulator array to a private buffer for the
    duration of the block (privatized reductions: the compiled statement
    body reads ``store.arrays[name]``, so a proxy store with the private
    view under the accumulator's name runs it unchanged).  ``combine``
    marks a generated join task: no statement instances run, the privates
    fold into the base accumulator with the group operator instead.
    ``rects`` marks a fused task: the block's rectangle decomposition was
    precomputed at task creation, so the hot path is one closure call per
    rectangle with zero interpretation (``statement`` may then also be a
    chain label such as ``"S+T"``).
    """
    import numpy as np

    if combine is not None:
        from ..interp.privexec import apply_combine

        apply_combine(_WORKER_STORE, combine)
        return
    store = _WORKER_STORE
    if remap:
        from ..interp.store import ArrayStore

        store = ArrayStore(
            {**store.arrays, **{
                acc: store.arrays[priv] for acc, priv in remap.items()
            }}
        )
    if rects is not None:
        kernel = _WORKER_INTERP.fused_kernel(statement)
        if kernel is not None:
            kernel.run_rects(store, _WORKER_INTERP.funcs, rects)
            return
        if "+" in statement:
            raise RuntimeError(
                f"worker has no fused kernel for chain {statement!r} "
                "(fusion plan not shipped to the pool?)"
            )
    _WORKER_INTERP.run_block(
        store, statement, np.asarray(iterations, dtype=np.int64)
    )


def _process_worker_run_batch(items, collect: bool = False):
    """Execute a batch of simultaneously ready blocks, in order.

    Batches contain only blocks whose predecessors all completed before
    submission, so any serial order inside the batch is legal.

    With ``collect`` the batch also times every block on this worker's
    ``time.monotonic_ns`` clock — **not** ``perf_counter``, whose values
    from different processes share no epoch — and returns the raw
    readings plus batch receive/complete brackets.  The parent rebases
    them onto its own clock with the calibrated per-worker offset (see
    :mod:`repro.obs.runtime`).
    """
    if not collect:
        for statement, iterations, remap, combine, rects in items:
            _process_worker_run(statement, iterations, remap, combine, rects)
        return None
    first_ns = time.monotonic_ns()
    timings: list[tuple[str, int, int]] = []
    for statement, iterations, remap, combine, rects in items:
        t0 = time.monotonic_ns()
        _process_worker_run(statement, iterations, remap, combine, rects)
        timings.append((statement, t0, time.monotonic_ns()))
    return {
        "pid": os.getpid(),
        "first_ns": first_ns,
        "last_ns": time.monotonic_ns(),
        "timings": timings,
    }


@dataclass
class _RecordedTask:
    tid: int
    statement: str
    iterations: list[tuple[int, ...]]
    deps: set[int] = field(default_factory=set)
    cost: float = 1.0
    #: accumulator name -> private buffer name (privatized blocks)
    remap: dict[str, str] | None = None
    #: join-task payload ({"array", "group", "privates"}); no block runs
    combine: dict | None = None
    #: precomputed rectangle decomposition of a fused block (list of
    #: inclusive ``(lo, hi)`` tuples); None runs the run_block ladder
    rects: list | None = None


class ProcessBackend(SlotAddressing):
    """Persistent worker processes over a shared-memory array store.

    Implements the CreateTask signature, but ``create_task`` only records
    blocks — :meth:`run` attaches a :class:`SharedArrayStore`, starts the
    pool, and dispatches *ready batches* as dependency counters drain.
    Task payloads are *not* pickled (generated modules pass unpicklable
    closures); only ``(statement, iterations)`` crosses the process
    boundary, and each worker executes it with its own compiled
    statements against the one shared segment.

    ``interpreter`` supplies the program, funcs (which must be picklable,
    i.e. module-level) and vectorize mode; ``store`` is the caller's
    in-process store — it is copied into shared memory before execution
    and the results are copied back in place afterwards, so the backend
    mutates ``store`` exactly like the in-process backends do.
    """

    #: Never pack more than this many blocks into one submission — keeps
    #: latency low when a wide front drains into a narrow one.
    MAX_BATCH = 8

    def __init__(
        self,
        write_num: int,
        interpreter,
        store,
        workers: int = 4,
        mp_context: str | None = None,
    ):
        self._init_slots(write_num)
        if workers < 1:
            raise ValueError("workers must be positive")
        self.interpreter = interpreter
        self.store = store
        self.workers = workers
        self._mp_context = mp_context
        self._tasks: list[_RecordedTask] = []
        self._slot_writer: dict[int, int] = {}
        self._chain_last: dict[str, int] = {}

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
        chain: bool = True,
    ) -> int:
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")
        if statement is None:
            raise ValueError(
                "ProcessBackend requires statement= on every task "
                "(blocks are re-executed by name in worker processes)"
            )
        if not (isinstance(task_input, dict) and "iters" in task_input):
            raise ValueError(
                "ProcessBackend requires the generated payload shape "
                "{'iters': [...], ...}"
            )
        iters = task_input["iters"]
        rows = iters.tolist() if hasattr(iters, "tolist") else iters
        tid = len(self._tasks)
        task = _RecordedTask(
            tid,
            statement,
            [tuple(int(v) for v in row) for row in rows],
            cost=cost,
            remap=task_input.get("remap"),
            combine=task_input.get("combine"),
            rects=task_input.get("rects"),
        )
        for d, ix in zip(in_depend, in_idx):
            writer = self._slot_writer.get(self.slot(d, ix))
            if writer is not None:
                task.deps.add(writer)
        if chain:
            prev_same = self._chain_last.get(statement)
            if prev_same is not None:
                task.deps.add(prev_same)
            self._chain_last[statement] = tid
        self._slot_writer[self.slot(out_depend, out_idx)] = tid
        self._tasks.append(task)
        return tid

    # ------------------------------------------------------------------
    def _executor(self, store_spec) -> ProcessPoolExecutor:
        interp = self.interpreter
        try:
            pickle.dumps(interp.funcs)
        except Exception as exc:
            raise RuntimeError(
                "ProcessBackend needs picklable kernel functions "
                "(module-level, not lambdas/closures)"
            ) from exc
        ctx_name = self._mp_context or (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp.get_context(ctx_name),
            initializer=_process_worker_init,
            initargs=(
                interp.program,
                interp.scop.params,
                interp.funcs,
                store_spec,
                interp.vectorize,
                getattr(interp, "fuse", "off"),
                (
                    interp.fused_program
                    if getattr(interp, "fuse", "off") != "off"
                    else None
                ),
            ),
        )

    def run(self, workers: int = 0):
        """Execute every recorded block; returns scheduling statistics."""
        del workers  # pool size fixed at construction
        from ..interp.store import SharedArrayStore

        shared = SharedArrayStore.from_store(self.store)
        executor = None
        try:
            executor = self._executor(shared.spec)
            stats = self._schedule(executor)
            # Copy results back into the caller's store in place.
            for name, view in self.store.arrays.items():
                view.data[...] = shared.arrays[name].data
            return stats
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
            shared.close()
            shared.unlink()

    def _schedule(self, executor: ProcessPoolExecutor) -> dict:
        """Counter-based ready-batch dispatch.

        Readiness is an integer remaining-dependency counter per block; a
        finished batch decrements its dependents' counters and newly
        ready blocks join a FIFO.  The FIFO is drained into batches sized
        ``ceil(ready / workers)`` (capped at :attr:`MAX_BATCH`) so a wide
        front splits evenly across the pool while narrow fronts keep
        single-block latency.
        """
        counts = [len(t.deps) for t in self._tasks]
        dependents: list[list[int]] = [[] for _ in self._tasks]
        for t in self._tasks:
            for d in t.deps:
                dependents[d].append(t.tid)

        ready: deque[int] = deque(
            t.tid for t in self._tasks if not t.deps
        )
        collector = obs_runtime.current()
        in_flight: dict[Future, tuple[list[int], int]] = {}
        max_in_flight = 0
        batches = 0
        completed = 0

        def submit_batches() -> None:
            nonlocal batches
            while ready and len(in_flight) < 2 * self.workers:
                size = min(
                    self.MAX_BATCH,
                    -(-len(ready) // self.workers),  # ceil division
                )
                batch = [ready.popleft() for _ in range(min(size, len(ready)))]
                submit_ns = collector.now_ns() if collector is not None else 0
                fut = executor.submit(
                    _process_worker_run_batch,
                    [
                        (
                            self._tasks[tid].statement,
                            self._tasks[tid].iterations,
                            self._tasks[tid].remap,
                            self._tasks[tid].combine,
                            self._tasks[tid].rects,
                        )
                        for tid in batch
                    ],
                    collector is not None,
                )
                in_flight[fut] = (batch, submit_ns)
                batches += 1

        submit_batches()
        while in_flight:
            max_in_flight = max(max_in_flight, len(in_flight))
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for fut in done:
                batch, submit_ns = in_flight.pop(fut)
                exc = fut.exception()
                if exc is not None:
                    for f in in_flight:
                        f.cancel()
                    raise exc
                if collector is not None:
                    payload = fut.result()
                    if payload is not None:
                        collector.record_process_batch(
                            batch,
                            pid=payload["pid"],
                            submit_ns=submit_ns,
                            recv_ns=collector.now_ns(),
                            batch_first_ns=payload["first_ns"],
                            batch_last_ns=payload["last_ns"],
                            timings=payload["timings"],
                        )
                completed += len(batch)
                for tid in batch:
                    for dep_tid in dependents[tid]:
                        counts[dep_tid] -= 1
                        if counts[dep_tid] == 0:
                            ready.append(dep_tid)
            submit_batches()
        if completed != len(self._tasks):
            raise RuntimeError(
                f"scheduler stalled: {completed}/{len(self._tasks)} blocks "
                "ran (dependency cycle in recorded tasks?)"
            )
        if collector is not None:
            collector.count("tasks", len(self._tasks))
            collector.count("batches", batches)
        return {
            "policy": "ready-batches",
            "tasks": len(self._tasks),
            "workers": self.workers,
            "max_in_flight": max_in_flight,
            "batches": batches,
        }

    def __len__(self) -> int:
        return len(self._tasks)
