"""Alternative tasking backends behind the CreateTask interface.

The paper's Section 7 expects the tasking layer to be swappable "with
minimal changes" because task detection is independent of OpenMP.  This
module demonstrates that: three backends implement the same
``create_task(...)`` signature as :class:`~repro.tasking.api.OmpTaskSystem`
(the OpenMP-like reference), and the generated task programs of
:mod:`repro.codegen.emit` run unchanged against any of them.

* :class:`SerialBackend` — executes each task immediately at creation.
  Tasks are created in original program order, which is a topological
  order of the dependence graph, so immediate execution is trivially
  correct; this is the "tasking disabled" escape hatch.
* :class:`FuturesBackend` — maps tasks onto
  :class:`concurrent.futures.ThreadPoolExecutor` futures.  Dependency slots
  hold the future of their last writer; a task waits on its dependency
  futures, then runs — the futures-pipelining style of Blelloch &
  Reid-Miller that the paper cites.
* :class:`ProcessBackend` — executes task blocks in a persistent
  :class:`concurrent.futures.ProcessPoolExecutor` against a
  :class:`~repro.interp.store.SharedArrayStore`, the closest Python
  analogue of the paper's OpenMP runtime actually running on cores.
  Task *creation* only records the block and its dependency slots; a
  wavefront scheduler in :meth:`ProcessBackend.run` dispatches ready
  blocks as their predecessors complete.  Nothing kernel-specific is
  pickled per task — workers rebuild the interpreter once from a spec
  and receive ``(statement, iterations)`` pairs.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Sequence


class SerialBackend:
    """Immediate, in-order execution (creation order is topological)."""

    def __init__(self, write_num: int):
        if write_num < 1:
            raise ValueError("write_num must be positive")
        self.write_num = write_num
        self.executed: list[str] = []

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
    ) -> int:
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")
        func(task_input)
        self.executed.append(statement or getattr(func, "__name__", "task"))
        return len(self.executed) - 1

    def run(self, workers: int = 1):
        """Everything already ran at creation; nothing to do."""
        del workers
        return None

    def __len__(self) -> int:
        return len(self.executed)


class FuturesBackend:
    """Thread-pool futures with slot-based dependency chaining."""

    def __init__(self, write_num: int, workers: int = 4):
        if write_num < 1:
            raise ValueError("write_num must be positive")
        self.write_num = write_num
        self.executor = ThreadPoolExecutor(max_workers=workers)
        self._slot_future: dict[int, Future] = {}
        self._func_future: dict[object, Future] = {}
        self._all: list[Future] = []

    def slot(self, depend: int, idx: int) -> int:
        if not 0 <= idx < self.write_num:
            raise ValueError(
                f"idx {idx} out of range for write_num {self.write_num}"
            )
        return self.write_num * depend + idx

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
    ) -> int:
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")
        deps = [
            self._slot_future[self.slot(d, ix)]
            for d, ix in zip(in_depend, in_idx)
            if self.slot(d, ix) in self._slot_future
        ]
        prev_same = self._func_future.get(func)
        if prev_same is not None:
            deps.append(prev_same)
        # Several in-slots often resolve to the same writer future (and the
        # self-chain may repeat one); waiting on duplicates is wasted work.
        deps = list(dict.fromkeys(deps))

        def body(deps=tuple(deps)) -> None:
            wait(deps)
            for d in deps:  # re-raise task failures
                exc = d.exception()
                if exc is not None:
                    raise exc
            func(task_input)

        fut = self.executor.submit(body)
        self._slot_future[self.slot(out_depend, out_idx)] = fut
        self._func_future[func] = fut
        self._all.append(fut)
        return len(self._all) - 1

    def run(self, workers: int = 0):
        """Block until every created task finished; re-raise failures."""
        del workers  # pool size fixed at construction
        try:
            wait(self._all)
            for fut in self._all:
                exc = fut.exception()
                if exc is not None:
                    raise exc
        finally:
            # Shut the pool down on the failure path too — a raised task
            # exception must not leak a live thread pool to the caller.
            self.executor.shutdown(wait=True)
        return None

    def __len__(self) -> int:
        return len(self._all)


# ----------------------------------------------------------------------
# process pool over shared memory
# ----------------------------------------------------------------------
#: Worker-process globals, set once by :func:`_process_worker_init`.
_WORKER_INTERP = None
_WORKER_STORE = None


def _process_worker_init(program, params, funcs, store_spec, vectorize):
    """Build this worker's interpreter and attach the shared store."""
    global _WORKER_INTERP, _WORKER_STORE
    from ..interp import Interpreter
    from ..interp.store import SharedArrayStore
    from ..scop import extract_scop

    scop = extract_scop(program, dict(params))
    _WORKER_INTERP = Interpreter(program, scop, funcs, vectorize=vectorize)
    _WORKER_STORE = SharedArrayStore.attach(store_spec)


def _process_worker_run(statement: str, iterations) -> None:
    """Execute one pipeline block against the shared store."""
    import numpy as np

    _WORKER_INTERP.run_block(
        _WORKER_STORE, statement, np.asarray(iterations, dtype=np.int64)
    )


@dataclass
class _RecordedTask:
    tid: int
    statement: str
    iterations: list[tuple[int, ...]]
    deps: set[int] = field(default_factory=set)
    cost: float = 1.0


class ProcessBackend:
    """Persistent worker processes over a shared-memory array store.

    Implements the CreateTask signature, but ``create_task`` only records
    blocks — :meth:`run` attaches a :class:`SharedArrayStore`, starts the
    pool, and wavefront-schedules blocks as dependency slots resolve.
    Task payloads are *not* pickled (generated modules pass unpicklable
    closures); only ``(statement, iterations)`` crosses the process
    boundary, and each worker executes it with its own compiled
    statements against the one shared segment.

    ``interpreter`` supplies the program, funcs (which must be picklable,
    i.e. module-level) and vectorize mode; ``store`` is the caller's
    in-process store — it is copied into shared memory before execution
    and the results are copied back in place afterwards, so the backend
    mutates ``store`` exactly like the in-process backends do.
    """

    def __init__(
        self,
        write_num: int,
        interpreter,
        store,
        workers: int = 4,
        mp_context: str | None = None,
    ):
        if write_num < 1:
            raise ValueError("write_num must be positive")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.write_num = write_num
        self.interpreter = interpreter
        self.store = store
        self.workers = workers
        self._mp_context = mp_context
        self._tasks: list[_RecordedTask] = []
        self._slot_writer: dict[int, int] = {}
        self._chain_last: dict[str, int] = {}

    def slot(self, depend: int, idx: int) -> int:
        if not 0 <= idx < self.write_num:
            raise ValueError(
                f"idx {idx} out of range for write_num {self.write_num}"
            )
        return self.write_num * depend + idx

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
    ) -> int:
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")
        if statement is None:
            raise ValueError(
                "ProcessBackend requires statement= on every task "
                "(blocks are re-executed by name in worker processes)"
            )
        if not (isinstance(task_input, dict) and "iters" in task_input):
            raise ValueError(
                "ProcessBackend requires the generated payload shape "
                "{'iters': [...], ...}"
            )
        iters = task_input["iters"]
        rows = iters.tolist() if hasattr(iters, "tolist") else iters
        tid = len(self._tasks)
        task = _RecordedTask(
            tid,
            statement,
            [tuple(int(v) for v in row) for row in rows],
            cost=cost,
        )
        for d, ix in zip(in_depend, in_idx):
            writer = self._slot_writer.get(self.slot(d, ix))
            if writer is not None:
                task.deps.add(writer)
        prev_same = self._chain_last.get(statement)
        if prev_same is not None:
            task.deps.add(prev_same)
        self._chain_last[statement] = tid
        self._slot_writer[self.slot(out_depend, out_idx)] = tid
        self._tasks.append(task)
        return tid

    # ------------------------------------------------------------------
    def _executor(self, store_spec) -> ProcessPoolExecutor:
        interp = self.interpreter
        try:
            pickle.dumps(interp.funcs)
        except Exception as exc:
            raise RuntimeError(
                "ProcessBackend needs picklable kernel functions "
                "(module-level, not lambdas/closures)"
            ) from exc
        ctx_name = self._mp_context or (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp.get_context(ctx_name),
            initializer=_process_worker_init,
            initargs=(
                interp.program,
                interp.scop.params,
                interp.funcs,
                store_spec,
                interp.vectorize,
            ),
        )

    def run(self, workers: int = 0):
        """Execute every recorded block; returns scheduling statistics."""
        del workers  # pool size fixed at construction
        from ..interp.store import SharedArrayStore

        shared = SharedArrayStore.from_store(self.store)
        executor = None
        try:
            executor = self._executor(shared.spec)
            stats = self._schedule(executor)
            # Copy results back into the caller's store in place.
            for name, view in self.store.arrays.items():
                view.data[...] = shared.arrays[name].data
            return stats
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
            shared.close()
            shared.unlink()

    def _schedule(self, executor: ProcessPoolExecutor) -> dict:
        """Wavefront dispatch: submit a block when its deps complete."""
        remaining = {t.tid: set(t.deps) for t in self._tasks}
        dependents: dict[int, list[int]] = {}
        for t in self._tasks:
            for d in t.deps:
                dependents.setdefault(d, []).append(t.tid)

        in_flight: dict[Future, int] = {}
        max_in_flight = 0

        def submit(tid: int) -> None:
            task = self._tasks[tid]
            fut = executor.submit(
                _process_worker_run, task.statement, task.iterations
            )
            in_flight[fut] = tid

        for t in self._tasks:
            if not remaining[t.tid]:
                submit(t.tid)
        completed = 0
        while in_flight:
            max_in_flight = max(max_in_flight, len(in_flight))
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for fut in done:
                tid = in_flight.pop(fut)
                exc = fut.exception()
                if exc is not None:
                    for f in in_flight:
                        f.cancel()
                    raise exc
                completed += 1
                for dep_tid in dependents.get(tid, ()):
                    remaining[dep_tid].discard(tid)
                    if not remaining[dep_tid]:
                        submit(dep_tid)
        if completed != len(self._tasks):
            raise RuntimeError(
                f"scheduler stalled: {completed}/{len(self._tasks)} blocks "
                "ran (dependency cycle in recorded tasks?)"
            )
        return {
            "tasks": len(self._tasks),
            "workers": self.workers,
            "max_in_flight": max_in_flight,
        }

    def __len__(self) -> int:
        return len(self._tasks)
