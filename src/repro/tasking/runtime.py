"""Threaded task runtime (the OpenMP-task execution substitute).

Executes a :class:`~repro.tasking.task.TaskGraph` whose tasks carry
``action`` callables on a pool of worker threads, honouring every
precedence edge — functionally what ``omp task depend(...)`` provides.
Python threads don't give the paper's wall-clock speed-ups (GIL), so this
runtime exists for *correctness*: it really runs the computation
concurrently and the tests compare its arrays against the sequential
interpreter bit-for-bit.  Performance numbers come from
:mod:`repro.tasking.simulator`.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

from .task import TaskGraph


@dataclass(frozen=True)
class RunResult:
    """Execution record of one threaded run."""

    completion_order: tuple[int, ...]
    errors: tuple[BaseException, ...]

    @property
    def ok(self) -> bool:
        return not self.errors


class TaskRuntimeError(RuntimeError):
    """A task raised; the original exceptions are attached."""

    def __init__(self, errors: tuple[BaseException, ...]):
        self.errors = errors
        super().__init__(f"{len(errors)} task(s) failed: {errors[0]!r}")


def execute(graph: TaskGraph, workers: int = 4) -> RunResult:
    """Run every task's action on ``workers`` threads, respecting edges."""
    if workers < 1:
        raise ValueError("need at least one worker")
    graph.validate()

    n = len(graph.tasks)
    indeg = [len(p) for p in graph.preds]
    lock = threading.Lock()
    ready: queue.SimpleQueue[int | None] = queue.SimpleQueue()
    completion: list[int] = []
    errors: list[BaseException] = []
    remaining = n
    stop = threading.Event()

    for tid in range(n):
        if indeg[tid] == 0:
            ready.put(tid)
    if n == 0:
        return RunResult((), ())

    def worker() -> None:
        nonlocal remaining
        while not stop.is_set():
            tid = ready.get()
            if tid is None:
                return
            task = graph.tasks[tid]
            try:
                if task.action is not None:
                    task.action()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with lock:
                    errors.append(exc)
                stop.set()
                _drain_and_poison()
                return
            with lock:
                completion.append(tid)
                remaining -= 1
                finished = remaining == 0
                newly_ready = []
                for s in graph.succs[tid]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        newly_ready.append(s)
            for s in newly_ready:
                ready.put(s)
            if finished:
                _drain_and_poison()
                return

    def _drain_and_poison() -> None:
        for _ in range(workers):
            ready.put(None)

    threads = [
        threading.Thread(target=worker, name=f"task-worker-{k}", daemon=True)
        for k in range(workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        raise TaskRuntimeError(tuple(errors))
    return RunResult(tuple(completion), ())


def bind_interpreter_actions(graph: TaskGraph, interpreter, store) -> None:
    """Attach actions that run each task's block via the interpreter."""
    for task in graph.tasks:
        block = task.block
        if block is None:
            continue
        iters = block.iterations
        stmt = block.statement

        def action(stmt=stmt, iters=iters) -> None:
            interpreter.run_block(store, stmt, iters)

        task.action = action
