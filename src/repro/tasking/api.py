"""The ``CreateTask`` tasking API (Section 5.5, Figures 7–8).

The paper's code generator targets a minimal, language-agnostic tasking
layer: a single ``CreateTask`` entry point taking a function pointer, its
packed input, one *out* dependency slot and a list of *in* dependency
slots.  This module reimplements that layer on the task graph:

* ``dependArr`` is modelled as a dictionary of integer *slots*; a slot's
  address is ``write_num * depend + idx`` exactly as in Figure 8;
* OpenMP ``depend`` semantics are honoured in full (an *out* waits for the
  previous writer and all readers since; an *in* waits for the last
  writer);
* the ``funcCount`` self-chain of Figure 8 serializes tasks created from
  the same function pointer, i.e. blocks of the same loop nest.

Generated task programs (see :mod:`repro.codegen.emit`) call this API the
same way the paper's generated C calls the OpenMP wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .backends import SlotAddressing
from .runtime import RunResult, execute
from .task import TaskGraph


@dataclass
class _SlotState:
    last_writer: int | None = None
    readers_since: list[int] = field(default_factory=list)


class OmpTaskSystem(SlotAddressing):
    """A task-graph-backed implementation of the CreateTask layer.

    Slot addressing (``dependArr[write_num * depend + idx]``) comes from
    the shared :class:`~repro.tasking.backends.SlotAddressing` mixin, so
    this reference system and the execution backends can never disagree
    on Figure 8's packing.
    """

    def __init__(self, write_num: int):
        self._init_slots(write_num)
        self.graph = TaskGraph()
        self._slots: dict[int, _SlotState] = {}
        self._func_last: dict[object, int] = {}
        self._func_counts: dict[object, int] = {}

    def create_task(
        self,
        func: Callable[[object], None],
        task_input: object,
        out_depend: int,
        out_idx: int,
        in_depend: Sequence[int] = (),
        in_idx: Sequence[int] = (),
        cost: float = 1.0,
        statement: str | None = None,
        chain: bool = True,
    ) -> int:
        """Create one task (the Python analogue of Figure 7's signature).

        ``in_depend``/``in_idx`` are parallel arrays (``dependNum`` entries
        each).  Returns the task id.  ``chain=False`` opts this task out
        of the Figure 8 ``funcCount`` self chain (privatized reduction
        blocks commute with each other).
        """
        if len(in_depend) != len(in_idx):
            raise ValueError("in_depend and in_idx must have equal length")

        name = statement or getattr(func, "__name__", "task")
        count = self._func_counts.get(func, 0)
        self._func_counts[func] = count + 1
        tid = self.graph.add_task(
            statement=name,
            block_id=count,
            cost=cost,
            action=(lambda: func(task_input)),
        )

        # depend(in: dependArr[write_num*in_depend[k] + in_idx[k]])
        for d, ix in zip(in_depend, in_idx):
            state = self._slots.setdefault(self.slot(d, ix), _SlotState())
            if state.last_writer is not None:
                self.graph.add_edge(state.last_writer, tid)
            state.readers_since.append(tid)

        # depend(in: self[funcCount-1]) / depend(out: self[funcCount])
        if chain:
            prev_same = self._func_last.get(func)
            if prev_same is not None:
                self.graph.add_edge(prev_same, tid)
            self._func_last[func] = tid

        # depend(out: dependArr[write_num*out_depend + out_idx])
        out_state = self._slots.setdefault(
            self.slot(out_depend, out_idx), _SlotState()
        )
        if out_state.last_writer is not None:
            self.graph.add_edge(out_state.last_writer, tid)
        for reader in out_state.readers_since:
            if reader != tid:
                self.graph.add_edge(reader, tid)
        out_state.last_writer = tid
        out_state.readers_since = []
        return tid

    # ------------------------------------------------------------------
    def run(self, workers: int = 4) -> RunResult:
        """Launch the created tasks (the ``omp parallel`` + ``single`` part)."""
        return execute(self.graph, workers)

    def __len__(self) -> int:
        return len(self.graph)
