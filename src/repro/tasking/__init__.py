"""Tasking layer: task graphs, OpenMP-style depend semantics, runtime, simulator."""

from .api import OmpTaskSystem
from .backends import (
    FuturesBackend,
    ProcessBackend,
    SerialBackend,
    SlotAddressing,
)
from .dot import to_dot, write_dot
from .hybrid import hybrid_task_graph, intra_block_edges
from .runtime import (
    RunResult,
    TaskRuntimeError,
    bind_interpreter_actions,
    execute,
)
from .simulator import SimResult, scaling_curve, sequential_time, simulate
from .task import CyclicTaskGraphError, Task, TaskGraph

__all__ = [
    "CyclicTaskGraphError",
    "FuturesBackend",
    "ProcessBackend",
    "SerialBackend",
    "SlotAddressing",
    "OmpTaskSystem",
    "RunResult",
    "SimResult",
    "Task",
    "TaskGraph",
    "TaskRuntimeError",
    "bind_interpreter_actions",
    "hybrid_task_graph",
    "intra_block_edges",
    "execute",
    "scaling_curve",
    "sequential_time",
    "simulate",
    "to_dot",
    "write_dot",
]
