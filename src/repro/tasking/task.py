"""Tasks and task graphs.

A :class:`Task` is one pipeline block (or one chunk of a parallel loop in
the baseline); a :class:`TaskGraph` is the DAG of tasks with precedence
edges.  Graphs are built from the task-annotated AST
(:func:`TaskGraph.from_task_ast`) with two edge families, mirroring the
paper's runtime (Section 5.5):

* *cross-statement* edges from the ``Q_S`` in-dependencies (the
  ``depend(in:…)`` clauses), and
* *self* edges chaining the blocks of each statement in lexicographic
  order (the ``funcCount`` trick of Figure 8 — blocks of one loop nest run
  sequentially).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..schedule.astgen import TaskAst, TaskBlock


@dataclass
class Task:
    """A schedulable unit of work."""

    task_id: int
    statement: str
    block_id: int
    cost: float = 1.0
    block: TaskBlock | None = None
    action: Callable[[], None] | None = None

    def __str__(self) -> str:
        return f"Task#{self.task_id}({self.statement}/{self.block_id}, cost={self.cost:g})"


class CyclicTaskGraphError(ValueError):
    """The dependence edges form a cycle (would deadlock the runtime)."""


class TaskGraph:
    """A DAG of tasks with precedence edges (pred must finish before succ)."""

    def __init__(self) -> None:
        self.tasks: list[Task] = []
        self.preds: list[set[int]] = []
        self.succs: list[set[int]] = []

    # ------------------------------------------------------------------
    def add_task(
        self,
        statement: str,
        block_id: int,
        cost: float = 1.0,
        block: TaskBlock | None = None,
        action: Callable[[], None] | None = None,
    ) -> int:
        tid = len(self.tasks)
        self.tasks.append(Task(tid, statement, block_id, cost, block, action))
        self.preds.append(set())
        self.succs.append(set())
        return tid

    def add_edge(self, pred: int, succ: int) -> None:
        if pred == succ:
            raise CyclicTaskGraphError(f"self-edge on task {pred}")
        self.preds[succ].add(pred)
        self.succs[pred].add(succ)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    @property
    def num_edges(self) -> int:
        return sum(len(p) for p in self.preds)

    def total_cost(self) -> float:
        return float(sum(t.cost for t in self.tasks))

    # ------------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Kahn topological order; raises on cycles."""
        indeg = [len(p) for p in self.preds]
        ready = [t for t in range(len(self.tasks)) if indeg[t] == 0]
        order: list[int] = []
        while ready:
            tid = ready.pop()
            order.append(tid)
            for s in self.succs[tid]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self.tasks):
            raise CyclicTaskGraphError(
                f"{len(self.tasks) - len(order)} tasks are on a cycle"
            )
        return order

    def validate(self) -> None:
        self.topological_order()

    def critical_path(self) -> tuple[float, list[int]]:
        """Length and one witness path of the longest (cost-weighted) chain."""
        order = self.topological_order()
        dist = np.zeros(len(self.tasks))
        parent = np.full(len(self.tasks), -1, dtype=np.int64)
        for tid in order:
            dist[tid] += self.tasks[tid].cost
            for s in self.succs[tid]:
                cand = dist[tid]
                if cand > dist[s]:
                    dist[s] = cand
                    parent[s] = tid
        end = int(np.argmax(dist))
        path = [end]
        while parent[path[-1]] != -1:
            path.append(int(parent[path[-1]]))
        return float(dist[end]), path[::-1]

    def reachability(self) -> np.ndarray:
        """Boolean matrix ``R[a, b]`` = a precedes b (transitively).

        Quadratic memory — intended for test-sized graphs.
        """
        n = len(self.tasks)
        reach = np.zeros((n, n), dtype=bool)
        for tid in reversed(self.topological_order()):
            for s in self.succs[tid]:
                reach[tid, s] = True
                reach[tid] |= reach[s]
        return reach

    # ------------------------------------------------------------------
    @staticmethod
    def from_task_ast(
        ast: TaskAst,
        cost_of_block: Callable[[TaskBlock], float] | None = None,
        self_chain: bool = True,
        unchained: frozenset[str] = frozenset(),
    ) -> "TaskGraph":
        """Build the pipeline task graph from a task-annotated AST.

        ``unchained`` names statements whose blocks run *without* the
        self chain — privatized reductions, whose block order the
        verified proof made irrelevant (each block updates its own
        private accumulator).
        """
        graph = TaskGraph()
        token_to_task: dict[tuple[str, tuple[int, ...]], int] = {}

        for nest in ast.nests:
            prev: int | None = None
            chained = self_chain and nest.statement not in unchained
            for block in nest.blocks:
                cost = (
                    cost_of_block(block) if cost_of_block else float(block.size)
                )
                tid = graph.add_task(
                    nest.statement, block.block_id, cost, block
                )
                token_to_task[block.out_token] = tid
                if chained and prev is not None:
                    graph.add_edge(prev, tid)
                prev = tid

        for nest in ast.nests:
            for block in nest.blocks:
                tid = token_to_task[block.out_token]
                for token in block.in_tokens:
                    src = token_to_task.get(token)
                    if src is None:
                        raise KeyError(
                            f"in-dependency {token} of {block} has no producer"
                        )
                    graph.add_edge(src, tid)
        graph.validate()
        return graph

    def __str__(self) -> str:
        return f"TaskGraph({len(self)} tasks, {self.num_edges} edges)"
