"""Hybrid parallelism: cross-loop pipelining + intra-nest parallelism.

Section 7 of the paper lists, as future work, combining cross-loop tasking
with "other parallelization opportunities".  The standard pipeline task
graph (:meth:`TaskGraph.from_task_ast`) serializes the blocks of every
statement — correct, but it forgoes the per-loop parallelism Polly exploits
on kernels like the matmul chains.

:func:`hybrid_task_graph` relaxes that chain using the *actual*
intra-statement dependences:

* blocks of a statement are chained only where a (flow/anti/output)
  self-dependence connects them — independent blocks may run concurrently;
* because "block ``e`` finished" then no longer implies "all earlier blocks
  finished", a cross-statement in-dependency on source end ``e`` becomes
  edges from **every** source block up to ``e`` (prefix edges), unless the
  source's own chain is complete, in which case the single edge suffices.

On the plain matmul chains this recovers Polly's per-nest parallelism *and*
removes Polly's inter-nest barriers, strictly dominating both strategies in
the simulator (see ``benchmarks/bench_hybrid.py``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..pipeline import PipelineInfo
from ..schedule import TaskAst, TaskBlock, generate_task_ast
from ..scop import DepKind, dependence_relation
from .task import TaskGraph


def intra_block_edges(
    scop, info: PipelineInfo, statement: str
) -> set[tuple[int, int]]:
    """Block-level self-dependence edges of one statement.

    Returns pairs ``(pred block id, succ block id)`` with ``pred < succ``
    such that some instance of the succ block depends on an instance of the
    pred block (any dependence class).
    """
    stmt = scop.statement(statement)
    blocking = info.blockings[statement]
    edges: set[tuple[int, int]] = set()
    for kind in DepKind:
        rel = dependence_relation(scop, stmt, stmt, kind)
        if rel.is_empty():
            continue
        src_blocks = blocking.block_of_rows(rel.out_part)
        tgt_blocks = blocking.block_of_rows(rel.in_part)
        pairs = np.unique(
            np.stack([src_blocks, tgt_blocks], axis=1), axis=0
        )
        for a, b in pairs.tolist():
            if a != b:
                edges.add((min(a, b), max(a, b)))
    return edges


def has_complete_chain(num_blocks: int, edges: set[tuple[int, int]]) -> bool:
    """True when consecutive blocks are all directly dependent."""
    return all((k, k + 1) in edges for k in range(num_blocks - 1))


def hybrid_task_graph(
    scop,
    info: PipelineInfo,
    ast: TaskAst | None = None,
    cost_of_block: Callable[[TaskBlock], float] | None = None,
) -> TaskGraph:
    """Task graph combining pipeline dependencies with relaxed self-chains."""
    ast = ast if ast is not None else generate_task_ast(info)
    graph = TaskGraph()
    token_to_task: dict[tuple[str, tuple[int, ...]], int] = {}
    stmt_tasks: dict[str, list[int]] = {}
    stmt_chain_complete: dict[str, bool] = {}

    for nest in ast.nests:
        tids: list[int] = []
        for block in nest.blocks:
            cost = cost_of_block(block) if cost_of_block else float(block.size)
            tid = graph.add_task(nest.statement, block.block_id, cost, block)
            token_to_task[block.out_token] = tid
            tids.append(tid)
        stmt_tasks[nest.statement] = tids

        edges = intra_block_edges(scop, info, nest.statement)
        stmt_chain_complete[nest.statement] = has_complete_chain(
            len(tids), edges
        )
        if stmt_chain_complete[nest.statement]:
            for prev, nxt in zip(tids, tids[1:]):
                graph.add_edge(prev, nxt)
        else:
            for a, b in edges:
                graph.add_edge(tids[a], tids[b])

    for nest in ast.nests:
        for block in nest.blocks:
            tid = token_to_task[block.out_token]
            for src_name, end in block.in_tokens:
                src_tid = token_to_task[(src_name, end)]
                if stmt_chain_complete[src_name]:
                    graph.add_edge(src_tid, tid)
                else:
                    # prefix edges: the requirement is "source ran up to
                    # end", which without a complete chain means every
                    # source block at or before it.
                    src_block = graph.tasks[src_tid].block_id
                    for k in range(src_block + 1):
                        graph.add_edge(stmt_tasks[src_name][k], tid)
    graph.validate()
    return graph
