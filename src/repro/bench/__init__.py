"""Benchmark harness regenerating every table and figure of Section 6."""

from .calibration import (
    SensitivityRow,
    format_sensitivity,
    overhead_sensitivity,
)
from .execution import (
    format_execution_bench,
    measured_speedup,
    run_execution_bench,
    run_workload,
)
from .figure2 import Figure2Result, format_figure2, run_figure2
from .figure5 import Figure5Result, format_figure5, run_figure5
from .figure10 import (
    DEFAULT_NS,
    DEFAULT_SIZES,
    Figure10Cell,
    format_figure10,
    run_cell,
    run_figure10,
)
from .figure11 import (
    DEFAULT_MATRIX_SIZE,
    Figure11Row,
    format_figure11,
    run_figure11,
    run_kernel,
)
from .harness import (
    DEFAULT_OVERHEAD,
    PAPER_WORKERS,
    ExperimentResult,
    build_scop,
    pipeline_task_graph,
    run_pipeline,
    run_polly,
    run_sequential,
)
from .report import ascii_timeline, strategy_table, worker_timeline
from .serve import format_serve_bench, run_serve_bench
from .table9 import format_table9, kernel_structure
from .trace import (
    trace_events,
    trace_json,
    validate_trace_document,
    write_trace,
)

__all__ = [
    "DEFAULT_MATRIX_SIZE",
    "DEFAULT_NS",
    "DEFAULT_OVERHEAD",
    "DEFAULT_SIZES",
    "ExperimentResult",
    "Figure10Cell",
    "Figure2Result",
    "Figure5Result",
    "Figure11Row",
    "PAPER_WORKERS",
    "SensitivityRow",
    "ascii_timeline",
    "build_scop",
    "format_execution_bench",
    "format_figure2",
    "format_figure5",
    "format_figure10",
    "format_figure11",
    "format_sensitivity",
    "format_serve_bench",
    "measured_speedup",
    "run_execution_bench",
    "run_workload",
    "format_table9",
    "kernel_structure",
    "overhead_sensitivity",
    "pipeline_task_graph",
    "run_cell",
    "run_figure2",
    "run_figure5",
    "run_figure10",
    "run_figure11",
    "run_kernel",
    "run_pipeline",
    "run_polly",
    "run_sequential",
    "run_serve_bench",
    "strategy_table",
    "trace_events",
    "trace_json",
    "validate_trace_document",
    "worker_timeline",
    "write_trace",
]
