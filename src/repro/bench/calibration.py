"""Sensitivity of the evaluation to the simulator's free parameter.

The discrete-event model has exactly one tunable: the per-task
creation/dispatch overhead (in abstract cost units).  The paper's wall
clock bakes the OpenMP task overhead into its numbers; here we expose it
and sweep it, so EXPERIMENTS.md can state how robust each figure's *shape*
is to the choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tasking import simulate
from ..workloads import TABLE9
from .harness import PAPER_WORKERS, build_scop, pipeline_task_graph

DEFAULT_OVERHEADS = (0.0, 0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class SensitivityRow:
    kernel: str
    n: int
    size: int
    #: overhead value -> pipelined speed-up
    speedups: dict[float, float]

    def spread(self) -> float:
        values = list(self.speedups.values())
        return max(values) - min(values)


def overhead_sensitivity(
    kernels: list[str],
    n: int = 20,
    size: int = 8,
    overheads: tuple[float, ...] = DEFAULT_OVERHEADS,
    workers: int = PAPER_WORKERS,
) -> list[SensitivityRow]:
    """Sweep the task overhead for each kernel at one problem size."""
    rows: list[SensitivityRow] = []
    for name in kernels:
        kern = TABLE9[name]
        scop = build_scop(kern.source(n))
        graph = pipeline_task_graph(scop, kern.cost_model(size))
        total = graph.total_cost()
        speedups = {
            oh: total / simulate(graph, workers, overhead=oh).makespan
            for oh in overheads
        }
        rows.append(SensitivityRow(name, n, size, speedups))
    return rows


def format_sensitivity(rows: list[SensitivityRow]) -> str:
    if not rows:
        return "(no rows)"
    overheads = sorted(rows[0].speedups)
    header = f"{'kernel':>8}" + "".join(f"  oh={oh:g}".rjust(10) for oh in overheads)
    lines = [header]
    for row in rows:
        cells = "".join(f"{row.speedups[oh]:10.2f}" for oh in overheads)
        lines.append(f"{row.kernel:>8}{cells}")
    return "\n".join(lines)
