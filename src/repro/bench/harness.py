"""Experiment harness: one call per (kernel, configuration) cell.

Runs the full stack — frontend, SCoP extraction, Algorithm 1, Algorithm 2,
task-graph construction — then simulates pipelined execution and the
baselines on the same cost model, returning the speed-up figures the
paper's evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..baselines import polly_task_graph, sequential_time
from ..lang import parse
from ..lang.ast import Program
from ..pipeline import detect_pipeline
from ..schedule import generate_task_ast
from ..scop import Scop, extract_scop
from ..tasking import TaskGraph, simulate
from ..workloads import CostModel

#: Paper hardware: x86 quad-core, two threads per core (Section 6).
PAPER_WORKERS = 8
#: Task creation/dispatch overhead in abstract cost units (one unit is one
#: iteration of a num=1, SIZE=1 statement); exposed for ablation.
DEFAULT_OVERHEAD = 1.0


@dataclass(frozen=True)
class ExperimentResult:
    """Simulated outcome of one kernel under one strategy."""

    kernel: str
    strategy: str
    sequential: float
    makespan: float
    tasks: int
    workers: int

    @property
    def speedup(self) -> float:
        return self.sequential / self.makespan if self.makespan else 1.0


def build_scop(
    source_or_program: str | Program, params: Mapping[str, int] | None = None
) -> Scop:
    program = (
        parse(source_or_program)
        if isinstance(source_or_program, str)
        else source_or_program
    )
    return extract_scop(program, dict(params or {}))


def pipeline_task_graph(scop: Scop, cost_model: CostModel) -> TaskGraph:
    """The paper's transformation: Algorithm 1 + 2 + task extraction."""
    info = detect_pipeline(scop)
    ast = generate_task_ast(info)
    return TaskGraph.from_task_ast(ast, cost_of_block=cost_model.block_cost)


def run_pipeline(
    kernel: str,
    scop: Scop,
    cost_model: CostModel,
    workers: int = PAPER_WORKERS,
    overhead: float = DEFAULT_OVERHEAD,
    policy: str = "fifo",
) -> ExperimentResult:
    """Simulated cross-loop pipelined execution."""
    graph = pipeline_task_graph(scop, cost_model)
    sim = simulate(graph, workers=workers, overhead=overhead, policy=policy)
    seq = sequential_time(scop, cost_model.iter_costs)
    return ExperimentResult(
        kernel, "pipeline", seq, sim.makespan, len(graph), workers
    )


def run_polly(
    kernel: str,
    scop: Scop,
    cost_model: CostModel,
    threads: int,
    overhead: float = DEFAULT_OVERHEAD,
) -> ExperimentResult:
    """Simulated Polly baseline with ``threads`` threads."""
    graph = polly_task_graph(scop, threads, cost_model.iter_costs)
    sim = simulate(graph, workers=threads, overhead=overhead)
    seq = sequential_time(scop, cost_model.iter_costs)
    return ExperimentResult(
        kernel, f"polly_{threads}", seq, sim.makespan, len(graph), threads
    )


def run_sequential(
    kernel: str, scop: Scop, cost_model: CostModel
) -> ExperimentResult:
    seq = sequential_time(scop, cost_model.iter_costs)
    return ExperimentResult(kernel, "sequential", seq, seq, 1, 1)
