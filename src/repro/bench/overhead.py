"""Task-overhead optimizer benchmark: what reduction + tuning buy.

Three questions, answered with real numbers in ``BENCH_overhead.json``:

1. **Slot reduction** — for every Table 9 kernel, how many depend-in
   slots does transitive reduction remove, and is the executed partial
   order provably unchanged (reachability matrices of the reduced and
   unreduced task graphs compared bit-for-bit)?
2. **Tuned granularity** — on the latency-bound workload (the paper's
   expensive-kernel scenario, PR 3's hardest case), does the auto-tuned
   coarsening beat both the untuned finest blocking *and* the previous
   hand-picked factor (``max(2, n // 2)``, the PR 3 baseline)?
3. **Bit identity** — do all three backends still produce arrays
   identical to the sequential interpreter with tuning + reduction on?

``python -m repro bench-overhead --out BENCH_overhead.json`` runs it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

import numpy as np

from ..interp import Interpreter, execute_measured
from ..pipeline import detect_pipeline, reduce_dependencies, task_graph_stats
from ..tuning import auto_tune
from ..workloads import TABLE9
from .execution import LATENCY_S, blocking_compute, dispatch_mode_of

#: Problem size per kernel for the reduction table (small: the slot
#: ratios are size-independent for these access patterns).
REDUCTION_N = 12


def _partial_order_identical(info, reduced) -> bool:
    """Reachability of reduced vs unreduced task graphs, bit-compared."""
    from ..schedule import generate_task_ast
    from ..tasking import TaskGraph

    full = TaskGraph.from_task_ast(generate_task_ast(info))
    slim = TaskGraph.from_task_ast(generate_task_ast(reduced))
    return bool(np.array_equal(full.reachability(), slim.reachability()))


def reduction_table(
    workers: int, n: int = REDUCTION_N, repeats: int = 1
) -> list[dict]:
    """Per-kernel slot counts and measured walls before/after reduction."""
    rows = []
    for name, kern in TABLE9.items():
        interp = Interpreter.from_source(kern.source(n), {})
        info = detect_pipeline(interp.scop)
        reduced, stats = reduce_dependencies(info)
        shape = task_graph_stats(info)
        wall_before, _, ex = _measure(interp, info, "threads", workers, repeats)
        wall_after, _, _ = _measure(interp, reduced, "threads", workers, repeats)
        rows.append(
            {
                "name": name,
                "n": n,
                "dispatch_mode": dispatch_mode_of(ex),
                "tasks": shape["tasks"],
                "critical_path_tasks": shape["critical_path_tasks"],
                "slots_before": stats.slots_before,
                "slots_after": stats.slots_after,
                "reduction_ratio": round(stats.ratio, 4),
                "wall_before_s": wall_before,
                "wall_after_s": wall_after,
                "identical_partial_order": _partial_order_identical(
                    info, reduced
                ),
            }
        )
    return rows


def _measure(
    interp: Interpreter,
    info,
    backend: str,
    workers: int,
    repeats: int,
) -> tuple[float, object, object]:
    best, store = None, None
    for _ in range(max(1, repeats)):
        store, stats = execute_measured(
            interp, info, backend=backend, workers=workers
        )
        if best is None or stats.wall_time < best.wall_time:
            best = stats
    return best.wall_time, store, best


def latency_workload(
    workers: int, n: int, repeats: int = 1, tune_mode: str = "model"
) -> dict:
    """Tuned coarsening vs the PR 3 baseline on the latency workload.

    The statement bodies block for :data:`LATENCY_S` per call (opaque to
    the vectorizer), so wall time is pure overlap + dispatch overhead —
    exactly what granularity controls.  Three configurations run on the
    thread backend: the untuned finest blocking, the PR 3 hand-picked
    factor ``max(2, n // 2)``, and the auto-tuned plan (with reduced
    dependency lists).
    """
    source = TABLE9["P5"].source(n)
    funcs = {"compute": blocking_compute}

    def fresh() -> Interpreter:
        return Interpreter.from_source(source, {}, funcs)

    interp = fresh()
    reference = interp.run_sequential(interp.new_store())

    fine = detect_pipeline(interp.scop)
    baseline_factor = max(2, n // 2)
    baseline = detect_pipeline(interp.scop, coarsen=baseline_factor)

    t_tune0 = time.perf_counter()
    plan = auto_tune(interp, fine, workers=workers, mode=tune_mode)
    tuned, reduction = reduce_dependencies(plan.info)
    tuning_seconds = time.perf_counter() - t_tune0

    runs: dict[str, dict] = {}
    for label, info in (
        ("untuned-fine", fine),
        ("pr3-baseline", baseline),
        ("tuned-reduced", tuned),
    ):
        wall, store, ex = _measure(fresh(), info, "threads", workers, repeats)
        runs[label] = {
            "wall_time_s": wall,
            "tasks": info.num_tasks(),
            "dispatch_mode": dispatch_mode_of(ex),
            "identical_to_sequential": reference.equal(store),
        }

    # Bit identity of the tuned+reduced plan across all three backends.
    identity = {}
    for backend in ("serial", "threads", "processes"):
        _, store, _ = _measure(fresh(), tuned, backend, workers, 1)
        identity[backend] = reference.equal(store)

    return {
        "name": "P5-latency",
        "n": n,
        "latency_s": LATENCY_S,
        "workers": workers,
        "repeats": repeats,
        "baseline_coarsen": baseline_factor,
        "tuned_factors": dict(plan.factors),
        "tuning_mode": plan.mode,
        "tuning_seconds": round(tuning_seconds, 3),
        "model": plan.model.as_dict() if plan.model else None,
        "reduction": reduction.as_dict(),
        "runs": runs,
        "identical_all_backends": identity,
        "speedup_vs_pr3_baseline": (
            runs["pr3-baseline"]["wall_time_s"]
            / runs["tuned-reduced"]["wall_time_s"]
        ),
        "speedup_vs_untuned": (
            runs["untuned-fine"]["wall_time_s"]
            / runs["tuned-reduced"]["wall_time_s"]
        ),
    }


def fused_dispatch_workload(
    n: int = 24, coarsen: int = 48, repeats: int = 3
) -> dict:
    """The per-task dispatch floor: interpreter vs vectorized vs fused.

    A dispatch-bound P5 (many small blocks, serial backend so the walls
    are pure per-task cost, no overlap): the interpreter pays a Python
    loop per iteration, the vectorized path one slice kernel per block,
    and the fused path one closure call per *merged chain task* over
    pre-sliced rectangles.  ``per_block_us`` divides each wall by the
    shared member-block count (same work denominator for every row);
    ``tasks`` shows the chain planner's dispatch collapse on top.
    """
    source = TABLE9["P5"].source(n)
    probe = Interpreter.from_source(source, {})
    info = detect_pipeline(probe.scop, coarsen=coarsen)
    reference = probe.run_sequential(probe.new_store())

    runs: dict[str, dict] = {}
    for label, vectorize, fuse in (
        ("interp", "off", "off"),
        ("vectorized", "auto", "off"),
        ("fused", "off", "auto"),
    ):
        interp = Interpreter.from_source(
            source, {}, vectorize=vectorize, fuse=fuse
        )
        wall, store, stats = _measure(interp, info, "serial", 1, repeats)
        # executed task count: chain merging collapses member blocks
        # (chain members share one blocking, a merge precondition)
        tasks = stats.blocks_total
        if stats.fused_chains:
            merged_away = sum(len(c) - 1 for c in stats.fused_chains)
            per_stmt = stats.blocks_total // max(1, len(stats.dispatch_modes))
            tasks = stats.blocks_total - merged_away * per_stmt
        runs[label] = {
            "wall_time_s": wall,
            "tasks": tasks,
            "per_block_us": round(
                wall * 1e6 / max(1, stats.blocks_total), 2
            ),
            "dispatch_mode": dispatch_mode_of(stats),
            "fused_chains": [list(c) for c in stats.fused_chains],
            "identical_to_sequential": reference.equal(store),
        }

    return {
        "name": "P5-dispatch",
        "n": n,
        "coarsen": coarsen,
        "repeats": repeats,
        "runs": runs,
        "fused_speedup_vs_interp": (
            runs["interp"]["wall_time_s"] / runs["fused"]["wall_time_s"]
        ),
        "fused_speedup_vs_vectorized": (
            runs["vectorized"]["wall_time_s"] / runs["fused"]["wall_time_s"]
        ),
        "per_block_floor_drop": (
            runs["interp"]["per_block_us"] / runs["fused"]["per_block_us"]
        ),
    }


def run_overhead_bench(
    workers: int = 4, quick: bool = False, out_path: str | None = None
) -> dict:
    """The full task-overhead benchmark (BENCH_overhead.json)."""
    repeats = 1 if quick else 3
    n_latency = 6 if quick else 8

    reductions = reduction_table(workers, repeats=repeats)
    latency = latency_workload(workers, n_latency, repeats=repeats)
    fused = fused_dispatch_workload(
        n=16 if quick else 24, coarsen=32 if quick else 48, repeats=repeats
    )

    qualifying = [
        r["name"]
        for r in reductions
        if r["reduction_ratio"] >= 0.25 and r["identical_partial_order"]
    ]
    criteria = {
        "kernels_with_25pct_slot_cut": qualifying,
        "at_least_3_kernels_cut": len(qualifying) >= 3,
        "all_partial_orders_identical": all(
            r["identical_partial_order"] for r in reductions
        ),
        "tuned_beats_pr3_baseline": latency["speedup_vs_pr3_baseline"] > 1.0,
        "all_backends_bit_identical": all(
            latency["identical_all_backends"].values()
        ),
        "fused_dispatch_rows_bit_identical": all(
            run["identical_to_sequential"]
            for run in fused["runs"].values()
        ),
        "fused_speedup_vs_interp": round(
            fused["fused_speedup_vs_interp"], 2
        ),
        "fused_beats_interp_dispatch": (
            fused["fused_speedup_vs_interp"] > 1.0
        ),
        "fused_per_block_us": fused["runs"]["fused"]["per_block_us"],
        "interp_per_block_us": fused["runs"]["interp"]["per_block_us"],
    }
    report = {
        "bench": "overhead",
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "workers": workers,
        "quick": quick,
        "reductions": reductions,
        "latency_workload": latency,
        "fused_dispatch": fused,
        "criteria": criteria,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def format_overhead_bench(report: dict) -> str:
    """Human-readable tables of the bench report."""
    host = report["host"]
    lines = [
        f"task-overhead bench — {host['cpus']} cpu(s), "
        f"{report['workers']} workers, numpy {host['numpy']}",
        "",
        f"{'kernel':>8}  {'tasks':>6}  {'slots':>6}  {'reduced':>7}  "
        f"{'cut':>5}  {'wall ms':>8}  {'red ms':>8}  {'order kept':>10}",
    ]
    for r in report["reductions"]:
        lines.append(
            f"{r['name']:>8}  {r['tasks']:>6}  {r['slots_before']:>6}  "
            f"{r['slots_after']:>7}  {r['reduction_ratio'] * 100:4.0f}%  "
            f"{r['wall_before_s'] * 1e3:8.2f}  {r['wall_after_s'] * 1e3:8.2f}  "
            f"{str(r['identical_partial_order']):>10}"
        )
    lat = report["latency_workload"]
    lines.append("")
    lines.append(
        f"latency workload (N={lat['n']}, {lat['latency_s'] * 1e3:.0f} ms "
        f"per call, pr3 coarsen={lat['baseline_coarsen']}):"
    )
    for label, run in lat["runs"].items():
        lines.append(
            f"{label:>16}: {run['wall_time_s'] * 1e3:9.2f} ms  "
            f"{run['tasks']:>4} tasks  "
            f"identical={run['identical_to_sequential']}"
        )
    lines.append(
        f"{'':>16}  tuned vs pr3 baseline "
        f"{lat['speedup_vs_pr3_baseline']:.2f}x, vs untuned "
        f"{lat['speedup_vs_untuned']:.2f}x; backends identical: "
        + json.dumps(lat["identical_all_backends"])
    )
    fused = report.get("fused_dispatch")
    if fused:
        lines.append("")
        lines.append(
            f"dispatch floor (P5 N={fused['n']}, "
            f"coarsen={fused['coarsen']}, serial):"
        )
        for label, run in fused["runs"].items():
            lines.append(
                f"{label:>16}: {run['wall_time_s'] * 1e3:9.2f} ms  "
                f"{run['tasks']:>4} tasks  "
                f"{run['per_block_us']:8.1f} us/block  "
                f"identical={run['identical_to_sequential']}"
            )
        lines.append(
            f"{'':>16}  fused vs interp "
            f"{fused['fused_speedup_vs_interp']:.2f}x, vs vectorized "
            f"{fused['fused_speedup_vs_vectorized']:.2f}x "
            f"(per-block floor drop {fused['per_block_floor_drop']:.2f}x)"
        )
    lines.append("")
    lines.append("criteria: " + json.dumps(report["criteria"]))
    return "\n".join(lines)
