"""Figure 10: pipelined speed-up of P1–P10 over an (N, SIZE) grid.

The paper's heat-map shows the speed-up of the pipelined program against
the sequential program for ten problem-size columns.  We sweep five values
of N crossed with two values of SIZE (ten cells per kernel, like the
figure) on the simulated quad-core (8 hardware threads).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import TABLE9, PKernel
from .harness import (
    DEFAULT_OVERHEAD,
    PAPER_WORKERS,
    build_scop,
    run_pipeline,
)

#: Grid roughly matching the figure's ten columns.
DEFAULT_NS = (16, 24, 32, 48, 64)
DEFAULT_SIZES = (4, 16)


@dataclass(frozen=True)
class Figure10Cell:
    kernel: str
    n: int
    size: int
    speedup: float


def run_cell(
    kernel: PKernel,
    n: int,
    size: int,
    workers: int = PAPER_WORKERS,
    overhead: float = DEFAULT_OVERHEAD,
    measured: bool = False,
) -> Figure10Cell:
    if measured:
        # Real wall clock: vectorized threaded pipeline vs compiled-loop
        # serial baseline (the SIZE axis only weights the simulator's
        # cost model, so measured cells carry size 0).
        from .execution import measured_speedup

        sp = measured_speedup(kernel.source(n), {}, workers=workers)
        return Figure10Cell(kernel.name, n, 0, sp)
    scop = build_scop(kernel.source(n))
    result = run_pipeline(
        kernel.name, scop, kernel.cost_model(size), workers, overhead
    )
    return Figure10Cell(kernel.name, n, size, result.speedup)


def run_figure10(
    kernels: list[str] | None = None,
    ns: tuple[int, ...] = DEFAULT_NS,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    workers: int = PAPER_WORKERS,
    overhead: float = DEFAULT_OVERHEAD,
    measured: bool = False,
) -> list[Figure10Cell]:
    names = kernels or sorted(TABLE9, key=lambda k: int(k[1:]))
    if measured:
        sizes = (0,)  # wall-clock mode has no simulated SIZE axis
    cells: list[Figure10Cell] = []
    for name in names:
        kern = TABLE9[name]
        for size in sizes:
            for n in ns:
                cells.append(
                    run_cell(kern, n, size, workers, overhead, measured)
                )
    return cells


def format_figure10(cells: list[Figure10Cell]) -> str:
    """Render the heat-map as the paper's rows-by-columns text table."""
    kernels: list[str] = []
    for c in cells:
        if c.kernel not in kernels:
            kernels.append(c.kernel)
    columns: list[tuple[int, int]] = []
    for c in cells:
        if (c.n, c.size) not in columns:
            columns.append((c.n, c.size))
    lookup = {(c.kernel, c.n, c.size): c.speedup for c in cells}

    header = ["     "] + [f"N{n}/S{s}" for n, s in columns]
    lines = ["  ".join(f"{h:>8}" for h in header)]
    for k in kernels:
        row = [f"{k:>5}"] + [
            f"{lookup[(k, n, s)]:8.2f}" for n, s in columns
        ]
        lines.append("  ".join(row))
    return "\n".join(lines)
