"""Compile-as-a-service benchmark: cold vs warm vs concurrent dedupe.

Three claims the artifact store + ``repro serve`` make, measured for
real and written to ``BENCH_serve.json``:

1. **Warm ≥ 10x cold** — a fresh process answering an identical compile
   of P5 from the store (hit + mandatory re-verification of whatever
   must not be trusted) is at least an order of magnitude faster than
   the fresh-process cold compile that populated it.  Both sides run in
   *subprocesses* so neither inherits warmed in-process state.
2. **N identical concurrent requests, one compile** — eight simultaneous
   identical ``compile`` requests against a live ``repro serve`` pay
   exactly one compile; the other seven await the in-flight future.
3. **Bit identity** — executing a store-served analysis yields arrays
   byte-identical to the cold compile's on all three backends.

``python -m repro bench-serve --out BENCH_serve.json`` runs it.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

#: fresh-process warm compiles must beat cold by at least this factor
WARM_SPEEDUP_MIN = 10.0

#: the quick (CI smoke) round uses a smaller instantiation whose warm
#: floor is a larger fraction of the cold wall — hold it to a relaxed
#: bar and leave the 10x claim to the full run
WARM_SPEEDUP_MIN_QUICK = 5.0

#: simultaneous identical requests in the dedupe round
DEDUPE_REQUESTS = 8

_CHILD = r"""
import json, sys, time
cfg = json.loads(sys.stdin.read())
from repro.interp import Interpreter
from repro.service import cached_analysis, options_from_dict
from repro.store import ArtifactStore
opts = options_from_dict(cfg["options"])
interp = Interpreter.from_source(
    cfg["source"], cfg["params"],
    vectorize=opts.vectorize, fuse=opts.fuse,
)
store = ArtifactStore(cfg["cache_dir"])
t0 = time.perf_counter()
analysis, status = cached_analysis(
    interp, cfg["source"], cfg["params"], opts, store
)
print(json.dumps({
    "wall_s": time.perf_counter() - t0,
    "status": status,
    "tasks": len(analysis.graph),
}))
"""


def _options_dict(workers: int) -> dict:
    # The realistic serving configuration: the instance-exact legality
    # check runs cold (its verdict is stored), execution-verification
    # stays off (compile benchmark, not run benchmark).
    return {"check": True, "verify": False, "workers": workers}


def _fresh_process_compile(
    source: str, params: dict, options: dict, cache_dir: str
) -> dict:
    """Time one ``cached_analysis`` in a brand-new interpreter process."""
    env = dict(os.environ)
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        input=json.dumps(
            {
                "source": source,
                "params": params,
                "options": options,
                "cache_dir": cache_dir,
            }
        ),
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench child failed:\n{proc.stderr.strip()[-2000:]}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


async def _dedupe_round(
    source: str, params: dict, options: dict, cache_dir: str
) -> dict:
    """Fire N identical concurrent compile requests at a live server."""
    from ..service.server import serve

    loop = asyncio.get_running_loop()
    ready: asyncio.Future = loop.create_future()
    task = asyncio.ensure_future(
        serve(
            port=0,
            cache_dir=cache_dir,
            workers=4,
            ready=ready,
            announce=lambda *_: None,
        )
    )
    host, port, server = await asyncio.wait_for(ready, 60)

    async def request(payload: dict) -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())
        finally:
            writer.close()

    compile_req = {
        "op": "compile",
        "source": source,
        "params": params,
        "options": options,
    }
    t0 = time.perf_counter()
    results = await asyncio.gather(
        *(request(dict(compile_req)) for _ in range(DEDUPE_REQUESTS))
    )
    wall = time.perf_counter() - t0
    stats = await request({"op": "stats"})
    await request({"op": "shutdown"})
    await asyncio.wait_for(task, 60)

    statuses: dict[str, int] = {}
    for r in results:
        statuses[r.get("status", "error")] = (
            statuses.get(r.get("status", "error"), 0) + 1
        )
    return {
        "requests": DEDUPE_REQUESTS,
        "wall_s": wall,
        "ok": all(r.get("ok") for r in results),
        "statuses": statuses,
        "compiles": stats["counters"]["compiles"],
        "inflight_hits": stats["counters"]["inflight_hits"],
        "store_hits": stats["counters"]["store_hits"],
    }


def _identity_round(
    source: str, params: dict, options: dict, cache_dir: str
) -> dict:
    """Checksums of cold-compiled vs store-served executions, per backend."""
    from ..interp import Interpreter, execute_measured
    from ..service import cached_analysis, options_from_dict
    from ..service.server import _checksums
    from ..store import ArtifactStore

    opts = options_from_dict(options)
    store = ArtifactStore(cache_dir)

    def compile_once():
        interp = Interpreter.from_source(
            source, params, vectorize=opts.vectorize, fuse=opts.fuse
        )
        analysis, status = cached_analysis(
            interp, source, params, opts, store
        )
        return interp, analysis, status

    interp, cold, cold_status = compile_once()
    interp2, warm, warm_status = compile_once()
    out: dict = {"cold_status": cold_status, "warm_status": warm_status}
    identical = True
    for backend in ("serial", "threads", "processes"):
        a, _ = execute_measured(
            interp, cold.info, backend=backend, workers=2
        )
        b, _ = execute_measured(
            interp2, warm.info, backend=backend, workers=2
        )
        same = _checksums(a) == _checksums(b)
        out[backend] = bool(same)
        identical = identical and same
    out["identical"] = identical
    return out


def run_serve_bench(quick: bool = False, out_path: str | None = None) -> dict:
    """Run all three rounds; optionally write the JSON report."""
    from ..workloads import TABLE9

    # Below ~n=12 the warm path's fixed floor (store read + schedule and
    # graph rebuild) hides the Algorithm 1 work the store skips, so even
    # the quick round needs a real instantiation.
    n = 12 if quick else 16
    source = TABLE9["P5"].source(n)
    params: dict = {}
    options = _options_dict(workers=2)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        cold_dir = os.path.join(tmp, "store")
        cold = _fresh_process_compile(source, params, options, cold_dir)
        warm = _fresh_process_compile(source, params, options, cold_dir)
        if (cold["status"], warm["status"]) != ("cold", "warm"):
            raise RuntimeError(
                f"expected cold->warm, got {cold['status']}->{warm['status']}"
            )
        speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)

        dedupe_dir = os.path.join(tmp, "dedupe")
        dedupe = asyncio.run(
            _dedupe_round(source, params, options, dedupe_dir)
        )

        ident_dir = os.path.join(tmp, "identity")
        identity = _identity_round(source, params, options, ident_dir)

    report = {
        "benchmark": "serve",
        "kernel": "P5",
        "n": n,
        "quick": bool(quick),
        "options": options,
        "rows": {
            "cold": cold,
            "warm": dict(warm, speedup_vs_cold=speedup),
            "dedupe": dedupe,
        },
        "identity": identity,
        "criteria": {
            "warm_speedup_min": (
                WARM_SPEEDUP_MIN_QUICK if quick else WARM_SPEEDUP_MIN
            ),
            "meets_warm_speedup": speedup
            >= (WARM_SPEEDUP_MIN_QUICK if quick else WARM_SPEEDUP_MIN),
            "dedupe_single_compile": dedupe["compiles"] == 1,
            "bit_identical": identity["identical"],
        },
        "env": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return report


def format_serve_bench(report: dict) -> str:
    rows = report["rows"]
    crit = report["criteria"]
    ded = rows["dedupe"]
    mark = lambda ok: "PASS" if ok else "FAIL"  # noqa: E731
    lines = [
        f"serve bench: {report['kernel']} n={report['n']}"
        + (" (quick)" if report["quick"] else ""),
        f"  cold compile (fresh process)   {rows['cold']['wall_s'] * 1e3:9.1f} ms"
        f"  ({rows['cold']['tasks']} tasks)",
        f"  warm compile (fresh process)   {rows['warm']['wall_s'] * 1e3:9.1f} ms"
        f"  ({rows['warm']['speedup_vs_cold']:.1f}x vs cold)",
        f"  warm >= {crit['warm_speedup_min']:.0f}x cold            "
        f"  {mark(crit['meets_warm_speedup'])}",
        f"  {ded['requests']} concurrent identical requests -> "
        f"{ded['compiles']} compile(s), {ded['inflight_hits']} in-flight "
        f"hit(s) in {ded['wall_s'] * 1e3:.1f} ms",
        f"  dedupe pays exactly one compile  {mark(crit['dedupe_single_compile'])}",
        "  store-served run bit-identical to fresh compile: "
        + ", ".join(
            f"{b}={mark(report['identity'][b])}"
            for b in ("serial", "threads", "processes")
        ),
    ]
    return "\n".join(lines)
