"""Export simulated schedules as Chrome trace-event JSON.

``chrome://tracing`` / Perfetto can load the output to inspect pipelined
schedules interactively — one lane per worker, one slice per task, with
statement/block metadata attached.  Abstract cost units are emitted as
microseconds (the viewer's native unit).
"""

from __future__ import annotations

import json
from typing import Any

from ..presburger import cache as presburger_cache
from ..tasking import SimResult, TaskGraph


def trace_events(graph: TaskGraph, sim: SimResult) -> list[dict[str, Any]]:
    """Chrome trace-event list (``X`` complete events, one per task)."""
    events: list[dict[str, Any]] = []
    for task in graph.tasks:
        tid = task.task_id
        events.append(
            {
                "name": f"{task.statement}#{task.block_id}",
                "cat": task.statement,
                "ph": "X",
                "ts": float(sim.start[tid]),
                "dur": float(sim.finish[tid] - sim.start[tid]),
                "pid": 0,
                "tid": int(sim.worker[tid]),
                "args": {
                    "statement": task.statement,
                    "block": task.block_id,
                    "cost": task.cost,
                    "predecessors": sorted(graph.preds[tid]),
                },
            }
        )
    return events


def trace_json(
    graph: TaskGraph,
    sim: SimResult,
    indent: int | None = None,
    execution=None,
    overhead=None,
) -> str:
    """Full trace document (``traceEvents`` plus display metadata).

    ``execution`` attaches the measured-execution record of a real run
    (an :class:`~repro.interp.executor.ExecutionStats` or its dict form):
    backend, workers, wall time, vectorization coverage and per-statement
    fallback reasons — alongside the simulated schedule they contextualize.
    ``overhead`` attaches the task-overhead optimizer record (reduction
    stats, tuning plan, or a dict combining both — anything exposing
    ``as_dict``).
    """
    other: dict[str, Any] = {
        "makespan": sim.makespan,
        "workers": sim.workers,
        "policy": sim.policy,
        "tasks": len(graph),
        "presburger_cache": presburger_cache.stats().as_dict(),
    }
    if execution is not None:
        other["execution"] = (
            execution if isinstance(execution, dict) else execution.as_dict()
        )
    if overhead is not None:
        other["overhead"] = (
            overhead if isinstance(overhead, dict) else overhead.as_dict()
        )
    doc = {
        "traceEvents": trace_events(graph, sim)
        + [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": w,
                "args": {"name": f"worker {w}"},
            }
            for w in range(sim.workers)
        ],
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    return json.dumps(doc, indent=indent)


def write_trace(
    path: str,
    graph: TaskGraph,
    sim: SimResult,
    execution=None,
    overhead=None,
) -> None:
    """Write the trace document to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            trace_json(graph, sim, execution=execution, overhead=overhead)
        )
