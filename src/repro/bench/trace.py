"""Export schedules and runtime observations as Chrome trace-event JSON.

``chrome://tracing`` / Perfetto can load the output to inspect pipelined
schedules interactively — one lane per worker, one slice per task, with
statement/block metadata attached.  Abstract cost units are emitted as
microseconds (the viewer's native unit).

A document can carry up to three lane groups, each its own pid:

* **pid 0 — simulated schedule**: the list-scheduled execution of the
  task graph (always present).
* **pid 1 — compile phases**: hierarchical spans from
  :mod:`repro.obs.spans` (pass ``spans=``), nesting parse → SCoP →
  pipeline → schedule → codegen with Presburger-op attribution.
* **pid 2 — measured execution**: live task events collected from a real
  backend run via :mod:`repro.obs.runtime` (pass ``runtime=``), with
  queue-depth counter tracks for the thread backend.

``process_name`` / ``process_sort_index`` metadata events label and
order the groups so Perfetto shows compile above simulation above the
measured lanes.
"""

from __future__ import annotations

import json
from typing import Any

from ..presburger import cache as presburger_cache
from ..tasking import SimResult, TaskGraph

#: pid per lane group (Chrome trace "processes" are display groups).
SIM_PID = 0
COMPILE_PID = 1
MEASURED_PID = 2


def _as_dict(record: Any) -> Any:
    """Normalize a stats record: dicts pass through, else ``as_dict()``.

    The single conversion point for every ``otherData`` section —
    ``trace_json`` accepted "a dict or anything with ``as_dict``" in two
    separately duck-typed branches before.
    """
    if record is None or isinstance(record, dict):
        return record
    as_dict = getattr(record, "as_dict", None)
    if as_dict is None:
        raise TypeError(
            f"expected a dict or an object with as_dict(), got "
            f"{type(record).__name__}"
        )
    return as_dict()


def trace_events(graph: TaskGraph, sim: SimResult) -> list[dict[str, Any]]:
    """Chrome trace-event list (``X`` complete events, one per task)."""
    events: list[dict[str, Any]] = []
    for task in graph.tasks:
        tid = task.task_id
        events.append(
            {
                "name": f"{task.statement}#{task.block_id}",
                "cat": task.statement,
                "ph": "X",
                "ts": float(sim.start[tid]),
                "dur": float(sim.finish[tid] - sim.start[tid]),
                "pid": SIM_PID,
                "tid": int(sim.worker[tid]),
                "args": {
                    "statement": task.statement,
                    "block": task.block_id,
                    "cost": task.cost,
                    "predecessors": sorted(graph.preds[tid]),
                },
            }
        )
    return events


def _process_meta(pid: int, name: str, sort_index: int) -> list[dict[str, Any]]:
    return [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        },
        {
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": sort_index},
        },
    ]


def trace_json(
    graph: TaskGraph,
    sim: SimResult,
    indent: int | None = None,
    execution=None,
    overhead=None,
    spans=None,
    runtime=None,
) -> str:
    """Full trace document (``traceEvents`` plus display metadata).

    ``execution`` attaches the measured-execution record of a real run
    (an :class:`~repro.interp.executor.ExecutionStats` or its dict form):
    backend, workers, wall time, vectorization coverage and per-statement
    fallback reasons — alongside the simulated schedule they contextualize.
    ``overhead`` attaches the task-overhead optimizer record (reduction
    stats, tuning plan, or a dict combining both — anything exposing
    ``as_dict``).

    ``spans`` (a list of :class:`~repro.obs.spans.SpanRecord`) adds the
    compile-phase lane group; ``runtime`` (a
    :class:`~repro.obs.runtime.RuntimeTrace`, defaulting to
    ``execution.events`` when present) adds the measured-execution lanes.
    """
    if runtime is None:
        runtime = getattr(execution, "events", None)

    other: dict[str, Any] = {
        "makespan": sim.makespan,
        "workers": sim.workers,
        "policy": sim.policy,
        "tasks": len(graph),
        "presburger_cache": presburger_cache.stats().as_dict(),
    }
    if execution is not None:
        other["execution"] = _as_dict(execution)
    if overhead is not None:
        other["overhead"] = _as_dict(overhead)
    if runtime is not None:
        other["runtime"] = runtime.summary_dict()
    if spans:
        from ..obs.spans import phase_breakdown

        other["phases"] = phase_breakdown(spans)

    events = trace_events(graph, sim)
    events += [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": SIM_PID,
            "tid": w,
            "args": {"name": f"worker {w}"},
        }
        for w in range(sim.workers)
    ]
    events += _process_meta(SIM_PID, "simulated schedule", 1)
    if spans:
        from ..obs.spans import spans_to_trace_events

        events += _process_meta(COMPILE_PID, "compile phases", 0)
        events += spans_to_trace_events(spans, pid=COMPILE_PID)
    if runtime is not None and len(runtime):
        events += _process_meta(
            MEASURED_PID, f"measured execution ({runtime.backend})", 2
        )
        events += runtime.to_trace_events(pid=MEASURED_PID)

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
    return json.dumps(doc, indent=indent)


def write_trace(
    path: str,
    graph: TaskGraph,
    sim: SimResult,
    execution=None,
    overhead=None,
    spans=None,
    runtime=None,
) -> None:
    """Write the trace document to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            trace_json(
                graph,
                sim,
                execution=execution,
                overhead=overhead,
                spans=spans,
                runtime=runtime,
            )
        )


#: ph types the exporter may legitimately emit.
_KNOWN_PHASES = {"X", "M", "C", "B", "E", "i"}


def validate_trace_document(doc: Any) -> list[str]:
    """Check a parsed trace document against the Chrome trace-event format.

    Returns a list of problems (empty when the document is valid):
    missing top-level keys, events without ``name``/``ph``/``pid``/
    ``tid``, unknown ``ph`` types, negative ``ts``/``dur``, and complete
    (``X``) events missing their duration.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    for k, e in enumerate(events):
        where = f"traceEvents[{k}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                problems.append(f"{where}: missing {key!r}")
        ph = e.get("ph")
        if ph is not None and ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown ph {ph!r}")
        if ph in ("X", "C", "B", "E", "i") and "ts" not in e:
            problems.append(f"{where}: {ph} event missing 'ts'")
        ts = e.get("ts")
        if ts is not None and not isinstance(ts, (int, float)):
            problems.append(f"{where}: non-numeric ts {ts!r}")
        elif ts is not None and ts < 0:
            problems.append(f"{where}: negative ts {ts}")
        if ph == "X":
            dur = e.get("dur")
            if dur is None:
                problems.append(f"{where}: X event missing 'dur'")
            elif not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
    return problems
