"""Figure 11: pipeline vs Polly on matrix-multiplication chains.

For each of the twelve kernels (2mm..4mm, transposed, generalized,
generalized-transposed) the paper plots the base-2 logarithm of the
speed-up of three strategies over sequential execution:

* ``pipeline`` — the cross-loop pipelined program,
* ``polly_8`` — Polly with all 8 hardware threads,
* ``polly``  — Polly with n threads (n = number of loop nests).

Expected shape: Polly wins on the plain/transposed chains (every nest is a
parallel loop), while on the generalized variants Polly finds nothing
(log speed-up 0) and only cross-loop pipelining gains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..workloads import MatmulKernel, figure11_kernels
from .harness import (
    DEFAULT_OVERHEAD,
    PAPER_WORKERS,
    build_scop,
    run_pipeline,
    run_polly,
)

DEFAULT_MATRIX_SIZE = 32


@dataclass(frozen=True)
class Figure11Row:
    kernel: str
    pipeline: float
    polly_8: float
    polly_n: float

    def log2(self) -> tuple[float, float, float]:
        return (
            math.log2(self.pipeline),
            math.log2(self.polly_8),
            math.log2(self.polly_n),
        )


def run_kernel(
    kernel: MatmulKernel,
    size: int = DEFAULT_MATRIX_SIZE,
    workers: int = PAPER_WORKERS,
    overhead: float = DEFAULT_OVERHEAD,
    measured: bool = False,
) -> Figure11Row:
    scop = build_scop(kernel.source(size))
    cost = kernel.cost_model(size)
    if measured:
        # The pipeline column becomes a real wall-clock speed-up
        # (vectorized threaded execution vs compiled-loop serial); the
        # Polly baselines stay simulated — there is no Polly executor.
        from .execution import measured_speedup

        pipe_speedup = measured_speedup(
            kernel.source(size), {}, workers=workers
        )
    else:
        pipe_speedup = run_pipeline(
            kernel.name, scop, cost, workers, overhead
        ).speedup
    polly8 = run_polly(kernel.name, scop, cost, threads=8, overhead=overhead)
    pollyn = run_polly(
        kernel.name, scop, cost, threads=kernel.n, overhead=overhead
    )
    return Figure11Row(
        kernel.name, pipe_speedup, polly8.speedup, pollyn.speedup
    )


def run_figure11(
    size: int = DEFAULT_MATRIX_SIZE,
    workers: int = PAPER_WORKERS,
    overhead: float = DEFAULT_OVERHEAD,
    measured: bool = False,
) -> list[Figure11Row]:
    return [
        run_kernel(k, size, workers, overhead, measured)
        for k in figure11_kernels()
    ]


def format_figure11(rows: list[Figure11Row]) -> str:
    lines = [
        f"{'kernel':>8}  {'log2(pipeline)':>14}  {'log2(polly_8)':>14}  "
        f"{'log2(polly)':>12}"
    ]
    for row in rows:
        lp, l8, ln = row.log2()
        lines.append(
            f"{row.kernel:>8}  {lp:14.2f}  {l8:14.2f}  {ln:12.2f}"
        )
    return "\n".join(lines)
