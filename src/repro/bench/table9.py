"""Table 9: structural properties of the experimental kernels."""

from __future__ import annotations

from ..workloads import TABLE9, PKernel


def format_table9() -> str:
    """Reproduce Table 9's Specification / Memory access columns."""
    lines = [f"{'Name':>5}  {'Specification':<28}  Memory access"]
    for name in sorted(TABLE9, key=lambda k: int(k[1:])):
        kern = TABLE9[name]
        nums = ", ".join(
            f"num{k}={spec.num}" for k, spec in enumerate(kern.nests, start=1)
        )
        spec_col = f"{kern.num_nests} for-loop; {nums}"
        reads = [
            f"S{k} <- {r.render()}"
            for k, spec in enumerate(kern.nests, start=1)
            for r in spec.reads
        ]
        access_col = "; ".join(reads) if reads else "(none)"
        lines.append(f"{name:>5}  {spec_col:<28}  {access_col}")
    return "\n".join(lines)


def kernel_structure(kernel: PKernel, n: int) -> dict:
    """Machine-readable row: nests, weights, extents, reads."""
    return {
        "name": kernel.name,
        "nests": kernel.num_nests,
        "nums": [spec.num for spec in kernel.nests],
        "extents": kernel.extents(n),
        "reads": [
            [(r.source, r.row, r.col) for r in spec.reads]
            for spec in kernel.nests
        ],
    }
