"""Figure 2: sequential vs pipelined execution of Listing 1.

The paper's motivating visualization: sequentially, R starts only after
every iteration of S; pipelined, iterations of R overlap S and R leaves
the critical path.  This module regenerates both timelines from the same
task graph and quantifies the overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pipeline import detect_pipeline
from ..schedule import generate_task_ast
from ..tasking import TaskGraph, simulate
from ..workloads import CostModel
from .harness import build_scop
from .report import ascii_timeline

LISTING1_TEMPLATE = """
for(i=0; i<{n1}; i++)
  for(j=0; j<{n1}; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for(i=0; i<{n2}; i++)
  for(j=0; j<{n2}; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
"""


@dataclass(frozen=True)
class Figure2Result:
    sequential_makespan: float
    pipelined_makespan: float
    overlap: float  # time where S and R run concurrently (pipelined)
    sequential_text: str
    pipelined_text: str

    @property
    def r_off_critical_path(self) -> bool:
        """The paper's claim: R is no longer on the critical path."""
        return self.overlap > 0 and self.pipelined_makespan < (
            self.sequential_makespan
        )


def run_figure2(n: int = 20, workers: int = 2) -> Figure2Result:
    """Build both executions of Listing 1 and measure the overlap."""
    scop = build_scop(LISTING1_TEMPLATE.format(n1=n - 1, n2=n // 2 - 1))
    info = detect_pipeline(scop)
    ast = generate_task_ast(info)
    cost = CostModel.uniform(1.0)
    graph = TaskGraph.from_task_ast(ast, cost_of_block=cost.block_cost)

    pipelined = simulate(graph, workers=workers)
    sequential = simulate(graph, workers=1)

    overlap = _statement_overlap(graph, pipelined, "S", "R")
    return Figure2Result(
        sequential_makespan=sequential.makespan,
        pipelined_makespan=pipelined.makespan,
        overlap=overlap,
        sequential_text=ascii_timeline(graph, sequential),
        pipelined_text=ascii_timeline(graph, pipelined),
    )


def _statement_overlap(graph, sim, a: str, b: str) -> float:
    """Total time during which both statements have a running task."""
    def busy(stmt: str) -> list[tuple[float, float]]:
        spans = sorted(
            (float(sim.start[t.task_id]), float(sim.finish[t.task_id]))
            for t in graph.tasks
            if t.statement == stmt
        )
        merged: list[tuple[float, float]] = []
        for s, f in spans:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], f))
            else:
                merged.append((s, f))
        return merged

    total = 0.0
    for sa, fa in busy(a):
        for sb, fb in busy(b):
            total += max(0.0, min(fa, fb) - max(sa, sb))
    return total


def format_figure2(result: Figure2Result) -> str:
    lines = [
        "(a) Sequential execution — R starts after S finishes:",
        result.sequential_text,
        "",
        "(b) Pipeline execution — iterations of R overlap S:",
        result.pipelined_text,
        "",
        f"sequential: {result.sequential_makespan:g} units, "
        f"pipelined: {result.pipelined_makespan:g} units, "
        f"S/R overlap: {result.overlap:g} units",
    ]
    return "\n".join(lines)
