"""Figure 5 / Equation 6: the average-case pipelined timeline.

The paper decomposes the pipelined running time as

    time(pipeline) = starting time + time(L_max) + finishing time

where the *starting time* is the span before the heaviest nest begins and
the *finishing time* the span after it ends (Figure 5 draws the case where
the third of four nests dominates).  This module builds exactly that
scenario, measures the three components on the simulated schedule, and
checks the identity — the quantitative backbone behind the claim that
minimal blocks minimize start-up and drain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tasking import simulate
from ..workloads import CostModel
from .harness import build_scop, pipeline_task_graph
from .report import ascii_timeline

#: Four chained nests; the third is the heaviest (the paper's Figure 5).
KERNEL_TEMPLATE = """
for(i=0; i<{n}; i++)
  for(j=0; j<{n}; j++)
    L1: A1[i][j] = f(A1[i][j], A1[i][j+1], A1[i+1][j+1]);
for(i=0; i<{n}; i++)
  for(j=0; j<{n}; j++)
    L2: A2[i][j] = f(A2[i][j], A2[i][j+1], A2[i+1][j+1], A1[i][j]);
for(i=0; i<{n}; i++)
  for(j=0; j<{n}; j++)
    L3: A3[i][j] = f(A3[i][j], A3[i][j+1], A3[i+1][j+1], A2[i][j]);
for(i=0; i<{n}; i++)
  for(j=0; j<{n}; j++)
    L4: A4[i][j] = f(A4[i][j], A4[i][j+1], A4[i+1][j+1], A3[i][j]);
"""


@dataclass(frozen=True)
class Figure5Result:
    heaviest: str
    starting_time: float
    lmax_span: float
    finishing_time: float
    makespan: float
    lmax_cost: float
    timeline: str

    @property
    def decomposition_gap(self) -> float:
        """``makespan - (start + span + finish)`` — 0 when Eq. 6 is exact."""
        return self.makespan - (
            self.starting_time + self.lmax_span + self.finishing_time
        )

    @property
    def lmax_runs_without_stalls(self) -> bool:
        """True when the heaviest nest's span equals its total cost."""
        return abs(self.lmax_span - self.lmax_cost) < 1e-9


def run_figure5(
    n: int = 24, heavy_factor: float = 6.0, workers: int = 8
) -> Figure5Result:
    """Simulate the four-nest scenario with a dominant third nest."""
    scop = build_scop(KERNEL_TEMPLATE.format(n=n))
    cost = CostModel({"L1": 1.0, "L2": 1.0, "L3": heavy_factor, "L4": 1.0})
    graph = pipeline_task_graph(scop, cost)
    sim = simulate(graph, workers=workers)

    heavy_tasks = [t.task_id for t in graph.tasks if t.statement == "L3"]
    start = float(min(sim.start[t] for t in heavy_tasks))
    finish = float(max(sim.finish[t] for t in heavy_tasks))
    lmax_cost = sum(
        graph.tasks[t].cost for t in heavy_tasks
    )
    return Figure5Result(
        heaviest="L3",
        starting_time=start,
        lmax_span=finish - start,
        finishing_time=sim.makespan - finish,
        makespan=sim.makespan,
        lmax_cost=float(lmax_cost),
        timeline=ascii_timeline(graph, sim),
    )


def format_figure5(result: Figure5Result) -> str:
    lines = [
        result.timeline,
        "",
        f"starting time:  {result.starting_time:g}",
        f"time(L_max):    {result.lmax_span:g} "
        f"(cost {result.lmax_cost:g}; "
        f"{'no stalls' if result.lmax_runs_without_stalls else 'stalled'})",
        f"finishing time: {result.finishing_time:g}",
        f"makespan:       {result.makespan:g} "
        f"(Eq. 6 gap {result.decomposition_gap:g})",
    ]
    return "\n".join(lines)
