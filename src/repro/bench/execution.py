"""Measured-execution benchmark: real wall-clock pipeline speed-ups.

Everything else in :mod:`repro.bench` *simulates* schedules on abstract
cost units; this module actually runs the generated task programs and
times them.  Three questions are answered per kernel:

1. how much faster is the vectorized sequential execution than the
   compiled-loop interpreter (whole-block NumPy kernels vs per-iteration
   Python)?
2. does the thread backend overlap anything (it can only overlap NumPy
   kernels and blocking calls — scalar Python bodies serialize on the
   GIL)?
3. does the process backend (shared-memory store, true multi-core) beat
   the best sequential execution?

On CPU-bound kernels question 3 needs physical cores; on a single-CPU
host the honest answer is "no".  The bench therefore includes a
*latency-bound* workload — the statement bodies call an opaque function
that blocks (modelling the paper's expensive prime-search kernel, or any
I/O / external-library call).  Such a call is not elementwise, so the
vectorizer correctly refuses it and the sequential paths pay the full
latency serially, while the pipeline backends overlap blocked tasks even
on one core.  Host CPU count is recorded in the report so the numbers
can be read in context.

``python -m repro bench-exec --out BENCH_execution.json`` runs it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Mapping

import numpy as np

from ..interp import Interpreter, execute_measured
from ..interp.interp import _mix
from ..pipeline import detect_pipeline
from ..workloads import TABLE9

#: Seconds each opaque call blocks in the latency-bound workload.
LATENCY_S = 0.002


def blocking_compute(*args: float) -> float:
    """Opaque statement body that *blocks* per call.

    Deliberately not marked elementwise: the vectorizer must refuse it
    (calling it once per block would change semantics from once per
    iteration), so every sequential path pays the latency serially.
    Module-level, hence picklable for the process backend.
    """
    time.sleep(LATENCY_S)
    return _mix(*args)


def dispatch_mode_of(stats) -> str:
    """Collapse per-statement dispatch modes into one row label."""
    modes = set(getattr(stats, "dispatch_modes", {}).values())
    if not modes:
        return "interp"
    return modes.pop() if len(modes) == 1 else "mixed"


def _measure(
    source: str,
    params: Mapping[str, int],
    backend: str,
    vectorize: str,
    workers: int,
    coarsen: int,
    funcs: Mapping[str, Callable] | None = None,
    repeats: int = 3,
    fuse: str = "off",
) -> tuple[dict, "np.ndarray | None", object]:
    """Best-of-``repeats`` measured execution; returns (record, _, store)."""
    interp = Interpreter.from_source(
        source, params, funcs, vectorize=vectorize, fuse=fuse
    )
    info = detect_pipeline(interp.scop, coarsen=coarsen)
    best = None
    store = None
    for _ in range(max(1, repeats)):
        store, stats = execute_measured(
            interp, info, backend=backend, workers=workers
        )
        if best is None or stats.wall_time < best.wall_time:
            best = stats
    record = best.as_dict()
    record["dispatch_mode"] = dispatch_mode_of(best)
    return record, best, store


def run_workload(
    name: str,
    source: str,
    params: Mapping[str, int],
    workers: int,
    coarsen: int,
    funcs: Mapping[str, Callable] | None = None,
    repeats: int = 3,
) -> dict:
    """Run one kernel on every execution configuration.

    The first four pin the pre-fusion trajectory (``fuse='off'`` keeps
    their meaning across recordings); the fused rows run the closure
    dispatch path — chain merging included — on all three backends.
    """
    configs = (
        ("scalar-serial", "serial", "off", "off"),
        ("vector-serial", "serial", "auto", "off"),
        ("threads", "threads", "auto", "off"),
        ("processes", "processes", "auto", "off"),
        ("fused-serial", "serial", "off", "auto"),
        ("fused-threads", "threads", "off", "auto"),
        ("fused-processes", "processes", "off", "auto"),
    )
    oracle = Interpreter.from_source(source, params, funcs)
    reference = oracle.run_sequential(oracle.new_store())

    runs: dict[str, dict] = {}
    identical = True
    for label, backend, mode, fuse in configs:
        record, stats, store = _measure(
            source, params, backend, mode, workers, coarsen, funcs,
            repeats, fuse=fuse,
        )
        same = reference.equal(store)
        record["identical_to_sequential"] = same
        identical = identical and same
        runs[label] = record

    t = {label: runs[label]["wall_time_s"] for label in runs}
    return {
        "name": name,
        "params": dict(params),
        "coarsen": coarsen,
        "repeats": repeats,
        "runs": runs,
        "identical": identical,
        "speedup_vectorized": t["scalar-serial"] / t["vector-serial"],
        "speedup_threads": t["scalar-serial"] / t["threads"],
        "speedup_processes": t["scalar-serial"] / t["processes"],
        "processes_vs_vector_serial": t["vector-serial"] / t["processes"],
        "speedup_fused": t["scalar-serial"] / t["fused-serial"],
        "fused_vs_vector_serial": t["vector-serial"] / t["fused-serial"],
    }


#: Reduction workloads for the privatized-execution section.  Inline
#: (not read from examples/) so the bench is self-contained; both are
#: histogram-class kernels whose cross-nest dependences are a full
#: barrier until the accumulator is privatized.
def histogram_source(_n: int) -> str:
    return (
        "for(i=0; i<N; i++)\n"
        "  for(j=0; j<N; j++)\n"
        "    S: H[i][j] += A[i][j];\n"
        "for(i=0; i<N; i++)\n"
        "  for(j=0; j<N; j++)\n"
        "    R: H[N-1-i][N-1-j] += B[i][j];\n"
    )


def histogram_latency_source(_n: int) -> str:
    return (
        "for(i=0; i<N; i++)\n"
        "  S: H[i] += compute(A[i]);\n"
        "for(i=0; i<N; i++)\n"
        "  R: H[N-1-i] += compute(B[i]);\n"
    )


def run_privatized_workload(
    name: str,
    source: str,
    params: Mapping[str, int],
    workers: int,
    parts: int,
    funcs: Mapping[str, Callable] | None = None,
    repeats: int = 3,
    backends: tuple[str, ...] = ("serial", "threads", "processes"),
) -> dict:
    """Privatized execution of one reduction kernel on every backend.

    The sequential baseline is the compiled-loop interpreter (reduction
    statements don't vectorize: their accumulator writes overlap), so
    the privatized speed-up is the real end-to-end win of executing the
    proof.  Alongside the per-backend match against sequential (group-
    aware tolerance) the record asserts *bit*-identity across the
    privatized backends themselves — they all combine the same privates
    in the same fixed join order.
    """
    from ..driver import prepare_privatized
    from ..interp import execute_privatized, privatized_matches
    from ..schedule import plan_privatization

    oracle = Interpreter.from_source(source, params, funcs, vectorize="off")
    seq_wall = None
    reference = None
    for _ in range(max(1, repeats)):
        fresh = oracle.new_store()
        t0 = time.perf_counter()
        reference = oracle.run_sequential(fresh)
        elapsed = time.perf_counter() - t0
        seq_wall = elapsed if seq_wall is None else min(seq_wall, elapsed)

    plan = plan_privatization(oracle.scop)
    if not plan.groups:
        raise ValueError(f"workload {name!r} has no privatizable reduction")

    runs: dict[str, dict] = {}
    stores: dict[str, object] = {}
    identical = True
    for backend in backends:
        interp = Interpreter.from_source(
            source, params, funcs, vectorize="auto"
        )
        info, _sched, _ast, _graph, _joins = prepare_privatized(
            interp.scop, plan, parts=parts
        )
        best = None
        best_store = None
        for _ in range(max(1, repeats)):
            store, stats = execute_privatized(
                interp, info, plan, backend=backend, workers=workers
            )
            if best is None or stats.wall_time < best.wall_time:
                best, best_store = stats, store
        ok, detail = privatized_matches(plan, reference, best_store)
        record = best.as_dict()
        record["identical_to_sequential"] = bool(
            reference.equal(best_store)
        )
        record["matches_sequential"] = ok
        record["match_detail"] = detail
        identical = identical and ok
        runs[f"privatized-{backend}"] = record
        stores[backend] = best_store

    first = stores[backends[0]]
    bit_identical = all(first.equal(stores[b]) for b in backends[1:])
    t_threads = runs["privatized-threads"]["wall_time_s"]
    return {
        "name": name,
        "params": dict(params),
        "parts": parts,
        "repeats": repeats,
        "sequential_wall_s": seq_wall,
        "runs": runs,
        "identical": identical,
        "bit_identical_across_backends": bit_identical,
        "speedup_privatized_serial": (
            seq_wall / runs["privatized-serial"]["wall_time_s"]
        ),
        "speedup_privatized_threads": seq_wall / t_threads,
        "plan": plan.to_dict(),
    }


def measured_speedup(
    source: str,
    params: Mapping[str, int],
    workers: int = 4,
    coarsen: int | None = None,
    funcs: Mapping[str, Callable] | None = None,
    repeats: int = 3,
) -> float:
    """Wall-clock speed-up of the vectorized threaded pipeline over the
    compiled-loop serial baseline (the figure runners' ``--measured``)."""
    if coarsen is None:
        probe = Interpreter.from_source(source, params, funcs)
        per_stmt = max(
            (len(s.points.points) for s in probe.scop.statements), default=1
        )
        coarsen = max(1, per_stmt // 8)  # ~8 coarse blocks per statement
    _, base, _ = _measure(
        source, params, "serial", "off", workers, coarsen, funcs, repeats
    )
    _, pipe, _ = _measure(
        source, params, "threads", "auto", workers, coarsen, funcs, repeats
    )
    return base.wall_time / pipe.wall_time if pipe.wall_time else 1.0


def run_execution_bench(
    workers: int = 4, quick: bool = False, out_path: str | None = None
) -> dict:
    """The full measured-execution benchmark (BENCH_execution.json)."""
    repeats = 1 if quick else 3
    n_small = 16 if quick else 32
    n_p5 = 24 if quick else 64
    # Blocks must tile the N*N/2-point nests evenly: ragged blocks
    # decompose into many small rectangles and hide the vectorization win.
    coarsen_p5 = 288 if quick else 1024
    n_latency = 6 if quick else 8

    workloads = [
        run_workload(
            "P1",
            TABLE9["P1"].source(n_small),
            {},
            workers,
            coarsen=max(8, n_small * 2),
            repeats=repeats,
        ),
        run_workload(
            "P5",
            TABLE9["P5"].source(n_p5),
            {},
            workers,
            coarsen=coarsen_p5,
            repeats=repeats,
        ),
        run_workload(
            "P5-latency",
            TABLE9["P5"].source(n_latency),
            {},
            workers,
            coarsen=max(2, n_latency // 2),
            funcs={"compute": blocking_compute},
            repeats=1,  # latency workload is deterministic enough
        ),
    ]

    # privatized-reduction section: execute the portfolio's proofs on a
    # CPU-bound and a latency-bound histogram (the class the paper's
    # barrier-locked reductions fall into)
    parts = max(2, workers)
    n_hist = 12 if quick else 24
    n_hist_latency = 2 * workers * 2  # two chunk waves per statement
    privatized = [
        run_privatized_workload(
            "histogram",
            histogram_source(n_hist),
            {"N": n_hist},
            workers,
            parts=parts,
            repeats=repeats,
        ),
        run_privatized_workload(
            "histogram-latency",
            histogram_latency_source(n_hist_latency),
            {"N": n_hist_latency},
            workers,
            parts=parts,
            funcs={"compute": blocking_compute},
            repeats=1,  # latency workload is deterministic enough
            backends=("serial", "threads"),
        ),
    ]

    p5 = next(w for w in workloads if w["name"] == "P5")
    hist_latency = next(
        w for w in privatized if w["name"] == "histogram-latency"
    )
    criteria = {
        "all_paths_bit_identical": all(w["identical"] for w in workloads),
        "vectorized_speedup_on_P5": round(p5["speedup_vectorized"], 2),
        "vectorized_10x_on_P5": p5["speedup_vectorized"] >= 10.0,
        "fused_speedup_on_P5": round(p5["speedup_fused"], 2),
        "fused_beats_interpreter_on_P5": p5["speedup_fused"] > 1.0,
        "fused_rows_bit_identical": all(
            w["runs"][label]["identical_to_sequential"]
            for w in workloads
            for label in w["runs"]
            if label.startswith("fused-")
        ),
        "processes_beat_vector_serial_somewhere": any(
            w["processes_vs_vector_serial"] > 1.0 for w in workloads
        ),
        "privatized_matches_sequential": all(
            w["identical"] for w in privatized
        ),
        "privatized_bit_identical_across_backends": all(
            w["bit_identical_across_backends"] for w in privatized
        ),
        "privatized_speedup_on_latency": round(
            hist_latency["speedup_privatized_threads"], 2
        ),
        "privatized_beats_sequential_on_latency": (
            hist_latency["speedup_privatized_threads"] > 1.0
        ),
    }
    report = {
        "bench": "execution",
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "workers": workers,
        "quick": quick,
        "latency_s": LATENCY_S,
        "workloads": workloads,
        "privatized": privatized,
        "criteria": criteria,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def format_execution_bench(report: dict) -> str:
    """Human-readable table of the bench report."""
    host = report["host"]
    lines = [
        f"measured execution bench — {host['cpus']} cpu(s), "
        f"{report['workers']} workers, numpy {host['numpy']}",
        "",
        f"{'workload':>12}  {'config':>15}  {'wall ms':>9}  "
        f"{'vec cov':>7}  {'dispatch':>10}  {'identical':>9}",
    ]
    for w in report["workloads"]:
        for label, run in w["runs"].items():
            lines.append(
                f"{w['name']:>12}  {label:>15}  "
                f"{run['wall_time_s'] * 1e3:9.2f}  "
                f"{run['iteration_coverage'] * 100:6.0f}%  "
                f"{run.get('dispatch_mode', 'interp'):>10}  "
                f"{str(run['identical_to_sequential']):>9}"
            )
        speedups = (
            f"{'':>12}  speedups: vectorized {w['speedup_vectorized']:.2f}x, "
            f"threads {w['speedup_threads']:.2f}x, "
            f"processes {w['speedup_processes']:.2f}x "
            f"({w['processes_vs_vector_serial']:.2f}x vs vector-serial)"
        )
        if "speedup_fused" in w:
            speedups += (
                f", fused {w['speedup_fused']:.2f}x "
                f"({w['fused_vs_vector_serial']:.2f}x vs vector-serial)"
            )
        lines.append(speedups)
    for w in report.get("privatized", ()):
        lines.append(
            f"{w['name']:>12}  {'sequential':>14}  "
            f"{w['sequential_wall_s'] * 1e3:9.2f}  {'':>7}  "
            f"{'True':>9}"
        )
        for label, run in w["runs"].items():
            lines.append(
                f"{w['name']:>12}  {label:>14}  "
                f"{run['wall_time_s'] * 1e3:9.2f}  "
                f"{run['iteration_coverage'] * 100:6.0f}%  "
                f"{str(run['matches_sequential']):>9}"
            )
        lines.append(
            f"{'':>12}  privatized ({w['parts']} parts): serial "
            f"{w['speedup_privatized_serial']:.2f}x, threads "
            f"{w['speedup_privatized_threads']:.2f}x vs sequential; "
            f"backends bit-identical: {w['bit_identical_across_backends']}"
        )
    lines.append("")
    lines.append("criteria: " + json.dumps(report["criteria"]))
    return "\n".join(lines)
