"""Measured-execution benchmark: real wall-clock pipeline speed-ups.

Everything else in :mod:`repro.bench` *simulates* schedules on abstract
cost units; this module actually runs the generated task programs and
times them.  Three questions are answered per kernel:

1. how much faster is the vectorized sequential execution than the
   compiled-loop interpreter (whole-block NumPy kernels vs per-iteration
   Python)?
2. does the thread backend overlap anything (it can only overlap NumPy
   kernels and blocking calls — scalar Python bodies serialize on the
   GIL)?
3. does the process backend (shared-memory store, true multi-core) beat
   the best sequential execution?

On CPU-bound kernels question 3 needs physical cores; on a single-CPU
host the honest answer is "no".  The bench therefore includes a
*latency-bound* workload — the statement bodies call an opaque function
that blocks (modelling the paper's expensive prime-search kernel, or any
I/O / external-library call).  Such a call is not elementwise, so the
vectorizer correctly refuses it and the sequential paths pay the full
latency serially, while the pipeline backends overlap blocked tasks even
on one core.  Host CPU count is recorded in the report so the numbers
can be read in context.

``python -m repro bench-exec --out BENCH_execution.json`` runs it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Mapping

import numpy as np

from ..interp import Interpreter, execute_measured
from ..interp.interp import _mix
from ..pipeline import detect_pipeline
from ..workloads import TABLE9

#: Seconds each opaque call blocks in the latency-bound workload.
LATENCY_S = 0.002


def blocking_compute(*args: float) -> float:
    """Opaque statement body that *blocks* per call.

    Deliberately not marked elementwise: the vectorizer must refuse it
    (calling it once per block would change semantics from once per
    iteration), so every sequential path pays the latency serially.
    Module-level, hence picklable for the process backend.
    """
    time.sleep(LATENCY_S)
    return _mix(*args)


def _measure(
    source: str,
    params: Mapping[str, int],
    backend: str,
    vectorize: str,
    workers: int,
    coarsen: int,
    funcs: Mapping[str, Callable] | None = None,
    repeats: int = 3,
) -> tuple[dict, "np.ndarray | None", object]:
    """Best-of-``repeats`` measured execution; returns (record, _, store)."""
    interp = Interpreter.from_source(source, params, funcs, vectorize=vectorize)
    info = detect_pipeline(interp.scop, coarsen=coarsen)
    best = None
    store = None
    for _ in range(max(1, repeats)):
        store, stats = execute_measured(
            interp, info, backend=backend, workers=workers
        )
        if best is None or stats.wall_time < best.wall_time:
            best = stats
    return best.as_dict(), best, store


def run_workload(
    name: str,
    source: str,
    params: Mapping[str, int],
    workers: int,
    coarsen: int,
    funcs: Mapping[str, Callable] | None = None,
    repeats: int = 3,
) -> dict:
    """Run one kernel on all four execution configurations."""
    configs = (
        ("scalar-serial", "serial", "off"),
        ("vector-serial", "serial", "auto"),
        ("threads", "threads", "auto"),
        ("processes", "processes", "auto"),
    )
    oracle = Interpreter.from_source(source, params, funcs)
    reference = oracle.run_sequential(oracle.new_store())

    runs: dict[str, dict] = {}
    identical = True
    for label, backend, mode in configs:
        record, stats, store = _measure(
            source, params, backend, mode, workers, coarsen, funcs, repeats
        )
        same = reference.equal(store)
        record["identical_to_sequential"] = same
        identical = identical and same
        runs[label] = record

    t = {label: runs[label]["wall_time_s"] for label in runs}
    return {
        "name": name,
        "params": dict(params),
        "coarsen": coarsen,
        "repeats": repeats,
        "runs": runs,
        "identical": identical,
        "speedup_vectorized": t["scalar-serial"] / t["vector-serial"],
        "speedup_threads": t["scalar-serial"] / t["threads"],
        "speedup_processes": t["scalar-serial"] / t["processes"],
        "processes_vs_vector_serial": t["vector-serial"] / t["processes"],
    }


def measured_speedup(
    source: str,
    params: Mapping[str, int],
    workers: int = 4,
    coarsen: int | None = None,
    funcs: Mapping[str, Callable] | None = None,
    repeats: int = 3,
) -> float:
    """Wall-clock speed-up of the vectorized threaded pipeline over the
    compiled-loop serial baseline (the figure runners' ``--measured``)."""
    if coarsen is None:
        probe = Interpreter.from_source(source, params, funcs)
        per_stmt = max(
            (len(s.points.points) for s in probe.scop.statements), default=1
        )
        coarsen = max(1, per_stmt // 8)  # ~8 coarse blocks per statement
    _, base, _ = _measure(
        source, params, "serial", "off", workers, coarsen, funcs, repeats
    )
    _, pipe, _ = _measure(
        source, params, "threads", "auto", workers, coarsen, funcs, repeats
    )
    return base.wall_time / pipe.wall_time if pipe.wall_time else 1.0


def run_execution_bench(
    workers: int = 4, quick: bool = False, out_path: str | None = None
) -> dict:
    """The full measured-execution benchmark (BENCH_execution.json)."""
    repeats = 1 if quick else 3
    n_small = 16 if quick else 32
    n_p5 = 24 if quick else 64
    # Blocks must tile the N*N/2-point nests evenly: ragged blocks
    # decompose into many small rectangles and hide the vectorization win.
    coarsen_p5 = 288 if quick else 1024
    n_latency = 6 if quick else 8

    workloads = [
        run_workload(
            "P1",
            TABLE9["P1"].source(n_small),
            {},
            workers,
            coarsen=max(8, n_small * 2),
            repeats=repeats,
        ),
        run_workload(
            "P5",
            TABLE9["P5"].source(n_p5),
            {},
            workers,
            coarsen=coarsen_p5,
            repeats=repeats,
        ),
        run_workload(
            "P5-latency",
            TABLE9["P5"].source(n_latency),
            {},
            workers,
            coarsen=max(2, n_latency // 2),
            funcs={"compute": blocking_compute},
            repeats=1,  # latency workload is deterministic enough
        ),
    ]

    p5 = next(w for w in workloads if w["name"] == "P5")
    criteria = {
        "all_paths_bit_identical": all(w["identical"] for w in workloads),
        "vectorized_speedup_on_P5": round(p5["speedup_vectorized"], 2),
        "vectorized_10x_on_P5": p5["speedup_vectorized"] >= 10.0,
        "processes_beat_vector_serial_somewhere": any(
            w["processes_vs_vector_serial"] > 1.0 for w in workloads
        ),
    }
    report = {
        "bench": "execution",
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "workers": workers,
        "quick": quick,
        "latency_s": LATENCY_S,
        "workloads": workloads,
        "criteria": criteria,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def format_execution_bench(report: dict) -> str:
    """Human-readable table of the bench report."""
    host = report["host"]
    lines = [
        f"measured execution bench — {host['cpus']} cpu(s), "
        f"{report['workers']} workers, numpy {host['numpy']}",
        "",
        f"{'workload':>12}  {'config':>14}  {'wall ms':>9}  "
        f"{'vec cov':>7}  {'identical':>9}",
    ]
    for w in report["workloads"]:
        for label, run in w["runs"].items():
            lines.append(
                f"{w['name']:>12}  {label:>14}  "
                f"{run['wall_time_s'] * 1e3:9.2f}  "
                f"{run['iteration_coverage'] * 100:6.0f}%  "
                f"{str(run['identical_to_sequential']):>9}"
            )
        lines.append(
            f"{'':>12}  speedups: vectorized {w['speedup_vectorized']:.2f}x, "
            f"threads {w['speedup_threads']:.2f}x, "
            f"processes {w['speedup_processes']:.2f}x "
            f"({w['processes_vs_vector_serial']:.2f}x vs vector-serial)"
        )
    lines.append("")
    lines.append("criteria: " + json.dumps(report["criteria"]))
    return "\n".join(lines)
