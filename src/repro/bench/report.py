"""Human-readable reports: ASCII timelines and comparison tables.

The paper visualizes pipelined execution as per-statement timelines
(Figures 2 and 5).  :func:`ascii_timeline` renders a simulated schedule the
same way; :func:`strategy_table` formats multi-strategy speed-up
comparisons like the evaluation section's discussions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from ..tasking import SimResult, TaskGraph


def ascii_timeline(graph: TaskGraph, sim: SimResult, width: int = 72) -> str:
    """One row per statement; ``#`` marks intervals where a block runs.

    Mirrors the paper's Figure 2/5 visualization of overlap between the
    loop nests of a pipelined program.
    """
    if width < 8:
        raise ValueError("width too small to draw a timeline")
    span = sim.makespan
    if span <= 0:
        return "(empty schedule)"
    spans: dict[str, list[tuple[float, float]]] = defaultdict(list)
    order: list[str] = []
    for task in graph.tasks:
        if task.statement not in spans:
            order.append(task.statement)
        spans[task.statement].append(
            (float(sim.start[task.task_id]), float(sim.finish[task.task_id]))
        )
    label_w = max(len(s) for s in order)
    lines = []
    for name in order:
        cells = [" "] * width
        for s, f in spans[name]:
            lo = int(s / span * (width - 1))
            hi = max(lo, int(f / span * (width - 1)))
            for k in range(lo, hi + 1):
                cells[k] = "#"
        lines.append(f"{name:>{label_w}} |{''.join(cells)}|")
    scale = f"{' ' * label_w}  0{' ' * (width - len(f'{span:g}') - 1)}{span:g}"
    return "\n".join(lines + [scale])


def worker_timeline(graph: TaskGraph, sim: SimResult, width: int = 72) -> str:
    """One row per worker, showing occupancy."""
    span = sim.makespan
    if span <= 0:
        return "(empty schedule)"
    rows = []
    for w in range(sim.workers):
        cells = [" "] * width
        for task in graph.tasks:
            if sim.worker[task.task_id] != w:
                continue
            s = float(sim.start[task.task_id])
            f = float(sim.finish[task.task_id])
            lo = int(s / span * (width - 1))
            hi = max(lo, int(f / span * (width - 1)))
            for k in range(lo, hi + 1):
                cells[k] = "#"
        rows.append(f"w{w:<3} |{''.join(cells)}|")
    return "\n".join(rows)


def strategy_table(
    speedups: Mapping[str, Mapping[str, float]],
    strategies: list[str] | None = None,
) -> str:
    """Kernels × strategies speed-up table.

    ``speedups[kernel][strategy] -> value``; kernels appear in insertion
    order, strategies in the given order (default: union, first-seen).
    """
    if not speedups:
        return "(no results)"
    if strategies is None:
        strategies = []
        for per_kernel in speedups.values():
            for s in per_kernel:
                if s not in strategies:
                    strategies.append(s)
    kernel_w = max(len(k) for k in speedups) + 2
    header = " " * kernel_w + "".join(f"{s:>12}" for s in strategies)
    lines = [header]
    for kernel, per_kernel in speedups.items():
        cells = "".join(
            f"{per_kernel.get(s, float('nan')):>12.2f}" for s in strategies
        )
        lines.append(f"{kernel:<{kernel_w}}{cells}")
    return "\n".join(lines)
