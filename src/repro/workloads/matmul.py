"""Matrix-multiplication chain kernels of Figure 11.

``nmm``/``nmmt`` are chains of ``n`` matrix multiplications (Polybench 2mm /
3mm plus a 4mm sibling); ``ngmm``/``ngmmt`` are the paper's *generalized*
variants where each result element is additionally combined with its
neighbours ``C[i+1][j]`` and ``C[i][j-1]`` — which makes both loop levels
carry dependences, defeating Polly, while the cross-nest pipeline remains.

**Row-anchor encoding.**  The paper expresses each multiplication as
consecutive vector–matrix products whose inner dot product is an opaque
compute call (their prototype generates code for depth-2 nests with a
single write each).  Computing ``C[i][j]`` needs *all* of row ``i`` of the
previous result: the lexicographically last cell of that row, ``[i][N-1]``,
is written last, so a single read of ``Prev[i][N-1]`` induces exactly the
same pipeline map, blocking, and task dependencies as reading the whole
row — the declared access is the dependence *anchor*.  (Verified against
full-row access sets in ``tests/workloads/test_matmul.py``.)  Execution
semantics use the same anchor cells through a deterministic mixing
function; numerical equality with a real matmul is not needed for any
figure, only the dependence/cost structure is.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import parse
from ..lang.ast import Program
from .costmodel import CostModel

VARIANTS = ("mm", "mmt", "gmm", "gmmt")


@dataclass(frozen=True)
class MatmulKernel:
    """One Figure 11 kernel: ``{n}{variant}`` for n in 2..4."""

    n: int
    variant: str

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}")
        if self.n < 2:
            raise ValueError("need at least two multiplications")

    @property
    def name(self) -> str:
        return f"{self.n}{self.variant}"

    @property
    def generalized(self) -> bool:
        return self.variant.startswith("g")

    @property
    def transposed(self) -> bool:
        return self.variant.endswith("t")

    # ------------------------------------------------------------------
    def source(self, size: int) -> str:
        """Kernel source for ``size``×``size`` matrices."""
        last = size - 1
        chunks: list[str] = []
        for k in range(1, self.n + 1):
            prev = "A0" if k == 1 else f"C{k - 1}"
            operand = (
                f"B{k}[j][{last}]" if self.transposed else f"B{k}[{last}][j]"
            )
            row_anchor = f"{prev}[i][{last}]"
            if self.generalized:
                # gemm-like neighbour coupling: C[i][j] also combines
                # C[i+1][j] (anti dep, level 0) and C[i][j-1] (flow, level 1).
                chunks.append(
                    f"for(i=0; i<{size - 1}; i++)\n"
                    f"  for(j=1; j<{size}; j++)\n"
                    f"    M{k}: C{k}[i][j] = dot({row_anchor}, {operand}, "
                    f"C{k}[i+1][j], C{k}[i][j-1], C{k}[i][j]);"
                )
            else:
                chunks.append(
                    f"for(i=0; i<{size}; i++)\n"
                    f"  for(j=0; j<{size}; j++)\n"
                    f"    M{k}: C{k}[i][j] = dot({row_anchor}, {operand});"
                )
        return "\n".join(chunks)

    def program(self, size: int) -> Program:
        return parse(self.source(size))

    def cost_model(self, size: int) -> CostModel:
        """Each element costs a length-``size`` dot product (+3 for gemm)."""
        per = float(size + (3 if self.generalized else 0))
        return CostModel(
            {f"M{k}": per for k in range(1, self.n + 1)}
        )

    def statement_names(self) -> list[str]:
        return [f"M{k}" for k in range(1, self.n + 1)]


def figure11_kernels() -> list[MatmulKernel]:
    """The twelve kernels of Figure 11, in the paper's x-axis order."""
    out: list[MatmulKernel] = []
    for n in (2, 3, 4):
        for variant in VARIANTS:
            out.append(MatmulKernel(n, variant))
    return out
