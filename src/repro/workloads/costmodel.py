"""Cost models for simulated execution.

The paper's kernels spend their time in opaque compute functions
(``next_prime`` over multi-precision arrays of ``SIZE`` elements, dot
products of length ``N``).  A :class:`CostModel` assigns each statement a
per-iteration cost in abstract time units; block costs are the sum over
the block's iterations, which is what the discrete-event simulator charges
per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..schedule import TaskBlock


@dataclass(frozen=True)
class CostModel:
    """Per-statement, per-iteration execution costs."""

    per_iteration: dict[str, float]
    default: float = 1.0

    def cost_of(self, statement: str) -> float:
        return self.per_iteration.get(statement, self.default)

    def iter_costs(self, statement: str, iters: np.ndarray) -> np.ndarray:
        """Vector of costs for a batch of iterations (uniform per statement)."""
        return np.full(iters.shape[0], self.cost_of(statement))

    def block_cost(self, block: TaskBlock) -> float:
        """Total cost of one pipeline block (simulator task weight)."""
        return self.cost_of(block.statement) * block.size

    @staticmethod
    def uniform(value: float = 1.0) -> "CostModel":
        return CostModel({}, default=value)
