"""The P1–P10 synthetic kernels of Table 9.

Each kernel is a sequence of depth-2 loop nests; nest ``k`` updates matrix
``A{k}`` by calling a compute-intensive function of its own cell and the
listed read accesses into earlier arrays.  In the paper the function finds
the ``num``-th next prime over a ``SIZE``-element multi-precision array,
which Polly treats as an opaque call; here the same role is played by the
cost model (``cost = num * SIZE`` abstract units per iteration) while a
deterministic mixing function supplies real values for correctness runs.

Table 9's access column is reproduced below (reconstructed from the paper;
the OCR of the original table is noisy — where ambiguous we chose the
reading consistent with the prose and with Figure 10's speed-up ordering,
see EXPERIMENTS.md).  Loop bounds are derived automatically so that every
read stays inside the region written by its producer nest, the paper's
"lower and upper bounds of the loops are set accordingly".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import parse
from ..lang.ast import Program
from .costmodel import CostModel


@dataclass(frozen=True)
class ReadSpec:
    """One read access: source nest (1-based) and index templates."""

    source: int
    row: str
    col: str

    def render(self) -> str:
        return f"A{self.source}[{self.row}][{self.col}]"


@dataclass(frozen=True)
class NestSpec:
    """One loop nest: its ``num`` weight and its cross-nest reads."""

    num: int
    reads: tuple[ReadSpec, ...] = ()


@dataclass(frozen=True)
class PKernel:
    """A Table 9 kernel definition."""

    name: str
    nests: tuple[NestSpec, ...]

    @property
    def num_nests(self) -> int:
        return len(self.nests)

    # ------------------------------------------------------------------
    def extents(self, n: int) -> list[tuple[int, int]]:
        """Per-nest ``(rows, cols)`` extents keeping reads in their producers.

        Nest 1 spans ``n``×``n``; later nests take, per dimension, the
        largest extent such that every read index stays within the producer
        nest's written region.  A template mentioning only ``i`` constrains
        the row extent, only ``j`` the column extent; a coupled template
        (e.g. ``2*i+j``) conservatively constrains both.
        """
        extents: list[tuple[int, int]] = []
        for spec in self.nests:
            mi = mj = n
            for read in spec.reads:
                src_i, src_j = extents[read.source - 1]
                for template, limit in ((read.row, src_i), (read.col, src_j)):
                    uses_i = "i" in template
                    uses_j = "j" in template
                    bound = _max_extent(template, limit)
                    if uses_i:
                        mi = min(mi, bound)
                    if uses_j:
                        mj = min(mj, bound)
                    if not (uses_i or uses_j) and not (
                        0 <= int(template) < limit
                    ):
                        raise ValueError(
                            f"constant access {template} out of range"
                        )
            if mi < 1 or mj < 1:
                raise ValueError(
                    f"kernel {self.name}: N={n} too small for access bounds"
                )
            extents.append((mi, mj))
        return extents

    def source(self, n: int) -> str:
        """Kernel source text for problem size ``n``."""
        extents = self.extents(n)
        chunks: list[str] = []
        for k, (spec, (mi, mj)) in enumerate(
            zip(self.nests, extents), start=1
        ):
            # The paper designs the kernels so Polly cannot parallelize any
            # loop: like Listing 1's f(), each nest reads its own array at
            # [i][j+1] and [i+1][j+1], carrying (anti) dependences at both
            # loop levels while keeping the write injective.
            args = [
                f"A{k}[i][j]",
                f"A{k}[i][j+1]",
                f"A{k}[i+1][j+1]",
            ] + [r.render() for r in spec.reads]
            chunks.append(
                f"for(i=0; i<{mi}; i++)\n"
                f"  for(j=0; j<{mj}; j++)\n"
                f"    S{k}: A{k}[i][j] = compute({', '.join(args)});"
            )
        return "\n".join(chunks)

    def program(self, n: int) -> Program:
        return parse(self.source(n))

    def cost_model(self, size: int) -> CostModel:
        """Per-iteration cost ``num_k * SIZE`` for statement ``S{k}``."""
        return CostModel(
            {
                f"S{k}": float(spec.num * size)
                for k, spec in enumerate(self.nests, start=1)
            }
        )

    def statement_names(self) -> list[str]:
        return [f"S{k}" for k in range(1, self.num_nests + 1)]


def _max_extent(template: str, src_extent: int) -> int:
    """Largest M with ``template`` in range over ``i, j < M``.

    Index templates are monotone in ``i``/``j`` with non-negative
    coefficients, so the maximum index occurs at ``i = j = M - 1``.
    """
    for m in range(src_extent, 0, -1):
        value = eval(template, {"__builtins__": {}}, {"i": m - 1, "j": m - 1})
        if 0 <= value < src_extent:
            return m
    raise ValueError(f"no feasible extent for access template {template!r}")


def _k(name: str, *nests: NestSpec) -> PKernel:
    return PKernel(name, tuple(nests))


#: Table 9, reconstructed.  ``NestSpec(num, reads)``; ``ReadSpec(src, i, j)``.
TABLE9: dict[str, PKernel] = {
    "P1": _k(
        "P1",
        NestSpec(1),
        NestSpec(1, (ReadSpec(1, "i", "j"),)),
    ),
    "P2": _k(
        "P2",
        NestSpec(2),
        NestSpec(6, (ReadSpec(1, "2*i", "2*j"),)),
    ),
    "P3": _k(
        "P3",
        NestSpec(1),
        NestSpec(1, (ReadSpec(1, "i", "j"),)),
        NestSpec(1, (ReadSpec(1, "i", "j"), ReadSpec(2, "i", "j"))),
    ),
    "P4": _k(
        "P4",
        NestSpec(2),
        NestSpec(2, (ReadSpec(1, "i+3", "j"),)),
        NestSpec(
            8,
            (ReadSpec(1, "2*i+j", "2*j"), ReadSpec(2, "2*i", "2*j")),
        ),
    ),
    "P5": _k(
        "P5",
        NestSpec(1),
        NestSpec(1, (ReadSpec(1, "i", "j"),)),
        NestSpec(1, (ReadSpec(1, "i", "j"), ReadSpec(2, "i", "j"))),
        NestSpec(
            1,
            (
                ReadSpec(1, "i", "j"),
                ReadSpec(2, "i", "j"),
                ReadSpec(3, "i", "j"),
            ),
        ),
    ),
    "P6": _k(
        "P6",
        NestSpec(1),
        NestSpec(8, (ReadSpec(1, "i+3", "j"),)),
        NestSpec(32, (ReadSpec(1, "i+3", "j"), ReadSpec(2, "i", "j"))),
        NestSpec(
            32,
            (
                ReadSpec(1, "i+3", "j"),
                ReadSpec(2, "i", "j"),
                ReadSpec(3, "i", "j"),
            ),
        ),
    ),
    "P7": _k(
        "P7",
        NestSpec(1),
        NestSpec(8, (ReadSpec(1, "2*i", "2*j"),)),
        NestSpec(
            8,
            (ReadSpec(1, "2*i", "2*j"), ReadSpec(2, "2*i", "2*j")),
        ),
        NestSpec(8, (ReadSpec(1, "i", "j"), ReadSpec(2, "i", "j"))),
    ),
    "P8": _k(
        "P8",
        NestSpec(1),
        NestSpec(1, (ReadSpec(1, "i", "j"),)),
        NestSpec(1, (ReadSpec(1, "i", "j"),)),
        NestSpec(1, (ReadSpec(1, "i", "j"),)),
    ),
    "P9": _k(
        "P9",
        NestSpec(1),
        NestSpec(1, (ReadSpec(1, "i", "2*j"),)),
        NestSpec(1, (ReadSpec(1, "i", "j"), ReadSpec(2, "i", "2*j"))),
        NestSpec(
            1,
            (ReadSpec(1, "i", "2*j"), ReadSpec(3, "i", "j")),
        ),
    ),
    "P10": _k(
        "P10",
        NestSpec(1),
        NestSpec(2, (ReadSpec(1, "i+3", "j"),)),
        NestSpec(2, (ReadSpec(2, "i", "j"),)),
        NestSpec(2, (ReadSpec(3, "i", "j"),)),
    ),
}


def kernel(name: str) -> PKernel:
    try:
        return TABLE9[name]
    except KeyError:
        raise KeyError(
            f"unknown P-kernel {name!r}; available: {sorted(TABLE9)}"
        ) from None
