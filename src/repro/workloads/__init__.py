"""Benchmark workloads: Table 9 P-kernels and Figure 11 matmul chains."""

from .costmodel import CostModel
from .matmul import VARIANTS, MatmulKernel, figure11_kernels
from .pkernels import TABLE9, NestSpec, PKernel, ReadSpec, kernel

__all__ = [
    "CostModel",
    "MatmulKernel",
    "NestSpec",
    "PKernel",
    "ReadSpec",
    "TABLE9",
    "VARIANTS",
    "figure11_kernels",
    "kernel",
]
