"""repro — cross-loop pipeline pattern detection in the polyhedral model.

A from-scratch Python reproduction of *"A Pipeline Pattern Detection
Technique in Polly"* (Talaashrafi, Doerfert, Moreno Maza; IMPACT 2022):
a miniature integer-set library, a C-like loop-nest frontend, SCoP
extraction and dependence analysis, the cross-loop pipeline detection
algorithm, schedule-tree construction, task code generation, and an
OpenMP-task-style runtime with both a threaded executor and a
discrete-event performance simulator.

See :mod:`repro.pipeline` for the paper's core contribution and
``examples/quickstart.py`` for a guided tour.
"""

__version__ = "1.0.0"

from .driver import (
    TransformOptions,
    TransformResult,
    VerificationFailedError,
    transform,
)

__all__ = [
    "TransformOptions",
    "TransformResult",
    "VerificationFailedError",
    "transform",
    "__version__",
]
