"""Pipeline blocking maps (Section 4.2 of the paper).

A *blocking map* partitions a statement's iteration domain into contiguous
lexicographic intervals ("blocks"), mapping every iteration to the largest
iteration of its block (the *block end*).  Block ends come from the pipeline
maps: the domain of ``T_{S,T}`` for S as source, the range for T as target.
Iterations after the last end form a final block ending at the domain's
lexicographic maximum (the paper's left-over rule).

Equation 3 combines all blocking maps of one statement by a pointwise
``lexmin``; because each blocking map sends ``x`` to the smallest end
``>= x`` of its own end set, the pointwise minimum equals blocking by the
*union* of all end sets — which is how :func:`combine_blockings` computes
it (and what the property tests verify against the literal definition).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..presburger import PointRelation, PointSet
from .pipeline_map import PipelineMap


@dataclass(frozen=True)
class Blocking:
    """A blocking map over one statement's iteration domain."""

    statement: str
    #: total map: iteration -> block end (lex-largest iteration of its block)
    mapping: PointRelation

    def __post_init__(self) -> None:
        if not self.mapping.is_single_valued():
            raise AssertionError("blocking map must be single-valued")

    @cached_property
    def ends(self) -> PointSet:
        """The block ends, in lexicographic (execution) order."""
        return self.mapping.range()

    @property
    def num_blocks(self) -> int:
        return len(self.ends)

    @cached_property
    def block_index(self) -> dict[tuple[int, ...], int]:
        """Block end tuple -> dense block id in execution order."""
        return {
            tuple(int(v) for v in row): k
            for k, row in enumerate(self.ends.points)
        }

    def block_of_rows(self, iters: np.ndarray) -> np.ndarray:
        """Dense block ids for an array of iterations of this statement.

        Vectorized: rank-join the iterations against the (sorted) blocking
        map, then rank the resulting ends against the end table.
        """
        from ..presburger import joint_ranks

        iters = np.asarray(iters, dtype=np.int64)
        if iters.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        keys, queries = joint_ranks(self.mapping.in_part, iters)
        idx = np.searchsorted(keys, queries)
        if np.any(idx >= len(keys)) or np.any(keys[idx % len(keys)] != queries):
            raise KeyError("some iterations are outside the blocked domain")
        ends = self.mapping.out_part[idx]
        end_keys, end_queries = joint_ranks(self.ends.points, ends)
        return np.searchsorted(end_keys, end_queries)

    def iterations_of_block(self, block_id: int) -> np.ndarray:
        """All iterations belonging to one block, in lexicographic order."""
        end = self.ends.points[block_id]
        mask = np.all(self.mapping.out_part == end, axis=1)
        return self.mapping.in_part[mask]

    def iterations_by_block(self) -> list[np.ndarray]:
        """Iterations of every block at once (one vectorized grouping).

        Equivalent to ``[iterations_of_block(k) for k in range(num_blocks)]``
        but linear instead of quadratic — the task-AST generator's hot path.
        """
        if self.num_blocks == 0:
            return []
        ids = self.block_of_rows(self.mapping.in_part)
        order = np.argsort(ids, kind="stable")  # keeps lex order per block
        grouped = self.mapping.in_part[order]
        bounds = np.searchsorted(ids[order], np.arange(self.num_blocks + 1))
        return [
            grouped[bounds[k] : bounds[k + 1]] for k in range(self.num_blocks)
        ]

    def block_sizes(self) -> np.ndarray:
        """Number of iterations in each block, in execution order."""
        _, ranks = np.unique(
            self.mapping.out_part, axis=0, return_inverse=True
        )
        return np.bincount(ranks.ravel(), minlength=self.num_blocks)

    def coarsened(self, factor: int) -> "Blocking":
        """Merge every ``factor`` consecutive blocks into one.

        The surviving ends are every ``factor``-th end (keeping the last),
        so each merged block still ends at one of the original ends — block
        requirements stay valid, blocks just get coarser (the task
        granularity knob the paper lists as future work).
        """
        if factor < 1:
            raise ValueError("coarsening factor must be >= 1")
        if factor == 1 or self.num_blocks == 0:
            return self
        keep = self.ends.points[factor - 1 :: factor]
        last = self.ends.points[-1:]
        ends = PointSet(np.concatenate([keep, last], axis=0))
        domain = self.mapping.domain()
        coarse = blocking_from_ends(self.statement, domain, ends)
        # The coarse map must repartition exactly the original domain with
        # a subset of the original ends (so block requirements derived for
        # parameterized sizes stay dominated); cheap invariants guard the
        # granularity tuner, which calls this on every candidate factor.
        if coarse.mapping.domain() != domain:
            raise AssertionError(
                f"coarsened({factor}) changed the domain of "
                f"{self.statement}"
            )
        if len(coarse.ends.difference(self.ends)):
            raise AssertionError(
                f"coarsened({factor}) invented block ends for "
                f"{self.statement}"
            )
        return coarse

    def to_dict(self) -> dict:
        """JSON-ready form for the durable artifact store."""
        return {
            "statement": self.statement,
            "mapping": self.mapping.to_dict(),
        }

    @staticmethod
    def from_dict(d: dict) -> "Blocking":
        return Blocking(d["statement"], PointRelation.from_dict(d["mapping"]))

    def __str__(self) -> str:
        return (
            f"Blocking({self.statement}: {self.num_blocks} blocks over "
            f"{len(self.mapping)} iterations)"
        )


def blocking_from_ends(
    statement: str, domain: PointSet, ends: PointSet
) -> Blocking:
    """Blocking map sending each iteration to the smallest end ``>=`` it.

    Iterations beyond the last end are folded into a final block ending at
    ``lexmax(domain)``.
    """
    if domain.is_empty():
        return Blocking(statement, PointRelation.empty(domain.ndim, domain.ndim))
    # Ends outside the domain would create blocks no iteration belongs to;
    # restrict defensively (pipeline anchors always lie in the domain).
    ends = ends.intersect(domain)
    top = np.asarray([domain.lexmax()], dtype=np.int64)
    if len(ends) == 0:
        table = top
        idx = np.zeros(len(domain), dtype=np.int64)
    else:
        idx = domain.first_geq(ends)
        # Append the fallback top end for iterations past the last end.
        if np.any(idx == len(ends)) and not ends.contains(domain.lexmax()):
            table = np.concatenate([ends.points, top], axis=0)
        else:
            table = ends.points
            idx = np.minimum(idx, len(ends) - 1)
    mapping = PointRelation.from_arrays(domain.points, table[idx])
    return Blocking(statement, mapping)


def source_blocking(
    statement: str, domain: PointSet, pmap: PipelineMap
) -> Blocking:
    """Blocking of the *source* statement of a pipeline map (ends = Dom T)."""
    return blocking_from_ends(statement, domain, pmap.relation.domain())


def target_blocking(
    statement: str, domain: PointSet, pmap: PipelineMap
) -> Blocking:
    """Blocking of the *target* statement of a pipeline map (ends = Range T)."""
    return blocking_from_ends(statement, domain, pmap.relation.range())


def combine_blockings(
    statement: str, domain: PointSet, blockings: list[Blocking]
) -> Blocking:
    """Equation 3: the pointwise-lexmin refinement of several blockings.

    Implemented as blocking by the union of all end sets, which equals the
    pointwise ``lexmin`` of the individual maps (each maps ``x`` to its
    smallest own end ``>= x``).
    """
    if not blockings:
        return blocking_from_ends(statement, domain, PointSet.empty(domain.ndim))
    ends = blockings[0].ends
    for b in blockings[1:]:
        ends = ends.union(b.ends)
    return blocking_from_ends(statement, domain, ends)


def pointwise_lexmin(
    statement: str, blockings: list[Blocking]
) -> Blocking:
    """Literal Equation 3: per-iteration lexmin across blocking maps.

    Quadratic-free reference implementation used to cross-check
    :func:`combine_blockings` in the test-suite.
    """
    if not blockings:
        raise ValueError("need at least one blocking map")
    union = blockings[0].mapping
    for b in blockings[1:]:
        union = union.union(b.mapping)
    return Blocking(statement, union.lexmin_per_domain())
