"""Cross-loop pipeline pattern detection — the paper's core contribution.

* :mod:`~repro.pipeline.pipeline_map` — Section 4.1, the ``T_{S,T}`` maps.
* :mod:`~repro.pipeline.blocking` — Section 4.2, blocking maps and the
  Equation-3 refinement ``E_S``.
* :mod:`~repro.pipeline.dependencies` — Section 4.3, the ``Q_S``/``Q_S^O``
  block dependency relations.
* :mod:`~repro.pipeline.detect` — Algorithm 1 tying it all together.
"""

from .blocking import (
    Blocking,
    blocking_from_ends,
    combine_blockings,
    pointwise_lexmin,
    source_blocking,
    target_blocking,
)
from .dependencies import BlockDependency, block_dependency, out_dependency
from .detect import (
    PipelineInfo,
    UncoveredDependenceError,
    derive_dependencies,
    detect_pipeline,
)
from .reduce import (
    ReductionStats,
    SourceReduction,
    reduce_dependencies,
    task_graph_stats,
)
from .patterns import (
    NoPatternError,
    QuasiAffineForm,
    consistent_across_sizes,
    describe_pipeline_map,
    infer_quasi_affine,
    infer_relation_pattern,
)
from .reference import (
    blocking_bruteforce,
    pipeline_pairs_bruteforce,
    pipeline_relation_as_dict,
)
from .pipeline_map import (
    PipelineMap,
    compute_pipeline_map,
    prefix_lexmax,
    raw_dependence_map,
)

__all__ = [
    "BlockDependency",
    "Blocking",
    "PipelineInfo",
    "NoPatternError",
    "PipelineMap",
    "QuasiAffineForm",
    "ReductionStats",
    "SourceReduction",
    "UncoveredDependenceError",
    "block_dependency",
    "blocking_bruteforce",
    "blocking_from_ends",
    "combine_blockings",
    "compute_pipeline_map",
    "consistent_across_sizes",
    "derive_dependencies",
    "describe_pipeline_map",
    "detect_pipeline",
    "reduce_dependencies",
    "infer_quasi_affine",
    "infer_relation_pattern",
    "out_dependency",
    "pipeline_pairs_bruteforce",
    "pipeline_relation_as_dict",
    "pointwise_lexmin",
    "prefix_lexmax",
    "raw_dependence_map",
    "source_blocking",
    "target_blocking",
    "task_graph_stats",
]
