"""Pipeline maps (Section 4.1 of the paper).

For a source statement S and a target statement T, the pipeline map
``T_{S,T}`` relates each S iteration ``i`` to the lexicographically largest
T iteration ``j`` such that finishing S up to ``i`` makes running T up to
``j`` safe.  Following the paper:

1. ``P = Wr⁻¹ ∘ Rd`` maps each T iteration to the S iterations that wrote
   the cells it reads.
2. ``D′`` maps each member of ``Dom(P)`` to all members lexicographically
   ``<=`` it; hence ``H = lexmax(P ∘ D′)`` maps each read iteration to the
   largest write iteration it *or any earlier read iteration* depends on.
   Because ``D′`` is a prefix closure, ``H`` is computed here as a running
   lexicographic maximum over ``Dom(P)`` in lexicographic order.
3. ``T_{S,T} = lexmax(H⁻¹)``.

All steps run on explicit relations with vectorized NumPy kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..presburger import PointRelation, lex_ranks
from ..presburger import cache as pcache
from ..scop import DepKind, Scop, ScopStatement


@dataclass(frozen=True)
class PipelineMap:
    """The pipeline relation between a source and a target statement."""

    source: str
    target: str
    #: source iteration -> largest safe target iteration (a partial bijection)
    relation: PointRelation
    #: target iteration -> largest source iteration it transitively needs
    requirement: PointRelation

    def __post_init__(self) -> None:
        if not self.relation.is_single_valued():
            raise AssertionError("pipeline map must be single-valued")

    def anchors(self) -> PointRelation:
        return self.relation

    def to_dict(self) -> dict:
        """JSON-ready form for the durable artifact store."""
        return {
            "source": self.source,
            "target": self.target,
            "relation": self.relation.to_dict(),
            "requirement": self.requirement.to_dict(),
        }

    @staticmethod
    def from_dict(d: dict) -> "PipelineMap":
        return PipelineMap(
            source=d["source"],
            target=d["target"],
            relation=PointRelation.from_dict(d["relation"]),
            requirement=PointRelation.from_dict(d["requirement"]),
        )

    def __str__(self) -> str:
        return (
            f"T_{{{self.source},{self.target}}} with "
            f"{len(self.relation)} anchor pairs"
        )


def prefix_lexmax(rel: PointRelation) -> PointRelation:
    """Running lexicographic maximum of a single-valued relation.

    The input must map each domain point to exactly one value; the output
    maps each domain point (in lexicographic domain order) to the largest
    value seen at or before it.  This implements ``lexmax(P ∘ D′)`` without
    materializing the quadratic prefix-closure relation ``D′``.
    """
    if rel.is_empty():
        pcache.count_trivial("pipeline.prefix_lexmax")
        return rel
    if not rel.is_single_valued():
        raise ValueError("prefix_lexmax expects a single-valued relation")
    return pcache.memoized(
        "pipeline.prefix_lexmax", lambda: _prefix_lexmax(rel), rel
    )


def _prefix_lexmax(rel: PointRelation) -> PointRelation:
    out = rel.out_part
    ranks = lex_ranks(out)
    running = np.maximum.accumulate(ranks)
    idx = np.arange(len(ranks))
    # Index of the row achieving the running max: refreshed where a new
    # maximum appears, carried forward otherwise.
    best = np.maximum.accumulate(np.where(ranks == running, idx, -1))
    return PointRelation.from_arrays(rel.in_part, out[best])


def raw_dependence_map(
    scop: Scop,
    source: ScopStatement,
    target: ScopStatement,
    kind: DepKind = DepKind.FLOW,
) -> PointRelation:
    """The ``P`` relation: target iteration → source iterations it reads.

    ``kind`` selects which access pairing defines the dependence; the paper
    uses flow (source writes, target reads), the anti/output variants back
    the future-work extension exercised in the tests.
    """
    if kind is DepKind.FLOW:
        src_rel, tgt_rel = scop.write_relation(source), scop.read_relation(target)
    elif kind is DepKind.ANTI:
        src_rel, tgt_rel = scop.read_relation(source), scop.write_relation(target)
    else:
        src_rel, tgt_rel = scop.write_relation(source), scop.write_relation(target)
    return src_rel.inverse().after(tgt_rel)


def compute_pipeline_map(
    scop: Scop,
    source: ScopStatement,
    target: ScopStatement,
    kind: DepKind = DepKind.FLOW,
) -> PipelineMap | None:
    """Compute ``T_{source,target}``, or ``None`` when T does not depend on S."""
    P = raw_dependence_map(scop, source, target, kind)
    if P.is_empty():
        return None

    # H: for each j in Dom(P) (lexicographic order), the running lexmax of
    # the largest source iteration needed by j or any earlier j'.
    per_point_max = P.lexmax_per_domain()
    H = prefix_lexmax(per_point_max)

    # T = lexmax(H^{-1}): each source anchor i maps to the largest j with
    # H(j) = i.  H is monotone, so this is a partial bijection.
    T = H.inverse().lexmax_per_domain()
    return PipelineMap(source.name, target.name, T, H)
