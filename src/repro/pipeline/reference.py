"""Definition-level reference implementations (test oracles, ablations).

These recompute Section 4's objects *directly from their definitions* with
plain Python loops over points — independent of the vectorized algorithm in
:mod:`repro.pipeline.pipeline_map` — so the test-suite can cross-check the
fast path, and the backend ablation can price the naive approach.
"""

from __future__ import annotations

import numpy as np

from ..presburger import PointRelation
from ..scop import DepKind, Scop, ScopStatement
from .pipeline_map import raw_dependence_map


def pipeline_pairs_bruteforce(
    scop: Scop,
    source: ScopStatement,
    target: ScopStatement,
    kind: DepKind = DepKind.FLOW,
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """The pipeline map straight from the paper's definition.

    ``(i, j)`` belongs to the map iff (1) running T up to ``j`` is safe
    once S finished up to ``i``; (2) ``i`` is the smallest vector and ``j``
    the largest vector with property (1).
    """
    P = raw_dependence_map(scop, source, target, kind)
    if P.is_empty():
        return []
    deps = [
        (tuple(int(v) for v in row[: P.n_in]), tuple(int(v) for v in row[P.n_in :]))
        for row in P.pairs
    ]  # (target j', source i') pairs

    src_points = [tuple(int(v) for v in r) for r in source.points.points]
    tgt_points = [tuple(int(v) for v in r) for r in target.points.points]

    def safe(i: tuple[int, ...], j: tuple[int, ...]) -> bool:
        return all(ip <= i for jp, ip in deps if jp <= j)

    # For each target point j: the minimal source prefix enabling it.
    def min_source_for(j: tuple[int, ...]) -> tuple[int, ...] | None:
        needed = [ip for jp, ip in deps if jp <= j]
        return max(needed) if needed else None

    # Pair each source anchor with the largest safe target point.
    anchors: dict[tuple[int, ...], tuple[int, ...]] = {}
    for j in tgt_points:
        i_min = min_source_for(j)
        if i_min is None:
            continue
        if i_min not in anchors or j > anchors[i_min]:
            anchors[i_min] = j
    out = sorted(anchors.items())
    for i, j in out:
        assert safe(i, j), "oracle inconsistency"
    return out


def blocking_bruteforce(
    domain: np.ndarray, ends: list[tuple[int, ...]]
) -> dict[tuple[int, ...], tuple[int, ...]]:
    """Blocking map from its definition: smallest end >= each iteration."""
    pts = sorted(tuple(int(v) for v in r) for r in domain)
    sorted_ends = sorted(ends)
    top = pts[-1]
    out: dict[tuple[int, ...], tuple[int, ...]] = {}
    for x in pts:
        chosen = next((e for e in sorted_ends if e >= x), top)
        out[x] = chosen
    return out


def pipeline_relation_as_dict(
    rel: PointRelation,
) -> dict[tuple[int, ...], tuple[int, ...]]:
    """Single-valued relation → Python dict (for oracle comparisons)."""
    return {
        tuple(int(v) for v in row[: rel.n_in]): tuple(
            int(v) for v in row[rel.n_in :]
        )
        for row in rel.pairs
    }
