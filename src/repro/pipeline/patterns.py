"""Closed-form pattern inference for pipeline maps.

The paper prints pipeline maps symbolically, e.g. for Listing 1::

    { S[i0, i1] -> R[o0, o1] : o0 = i0 and o1 = floor(i1 / 2) and ... }

Our analysis is instantiated (explicit points), but the affine/quasi-affine
*shape* of a map is recoverable from its tabulation: for each output
dimension, :func:`infer_quasi_affine` fits ``floor((a·x + c) / d)`` by
exact rational interpolation and verifies the formula against every pair.
:func:`describe_pipeline_map` renders the result in the paper's notation —
useful for inspecting analyses, for documentation, and for checking that a
map's shape is size-independent (:func:`consistent_across_sizes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..presburger import PointRelation


@dataclass(frozen=True)
class QuasiAffineForm:
    """``floor((coeffs · x + const) / denom)`` with integer coefficients."""

    coeffs: tuple[int, ...]
    const: int
    denom: int

    def evaluate_rows(self, rows: np.ndarray) -> np.ndarray:
        num = rows @ np.asarray(self.coeffs, dtype=np.int64) + self.const
        return num // self.denom

    @property
    def is_affine(self) -> bool:
        return self.denom == 1

    def render(self, var_names: tuple[str, ...]) -> str:
        terms: list[str] = []
        for c, name in zip(self.coeffs, var_names):
            if c == 0:
                continue
            if c == 1:
                term = name
            elif c == -1:
                term = f"-{name}"
            else:
                term = f"{c}{name}"
            terms.append(("+ " if terms and not term.startswith("-") else "")
                         + (term if not terms or not term.startswith("-")
                            else f"- {term[1:]}"))
        body = " ".join(terms) if terms else "0"
        if self.const:
            sign = "+" if self.const > 0 else "-"
            body = f"{body} {sign} {abs(self.const)}" if terms else str(self.const)
        if self.denom == 1:
            return body
        return f"floor(({body}) / {self.denom})"


class NoPatternError(ValueError):
    """The relation does not follow a single quasi-affine pattern."""


def infer_quasi_affine(
    inputs: np.ndarray, outputs: np.ndarray, max_denom: int = 8
) -> QuasiAffineForm:
    """Fit one output column as ``floor(affine(x) / d)`` and verify exactly.

    Tries denominators 1..``max_denom``; for each, solves the rational
    least-squares system on ``d * y ≈ a·x + c`` restricted to an integer
    solution, then checks the floor formula on *every* row.  Raises
    :class:`NoPatternError` when nothing fits.
    """
    n, dim = inputs.shape
    if outputs.shape != (n,):
        raise ValueError("outputs must be one column aligned with inputs")
    if n == 0:
        raise NoPatternError("cannot infer a pattern from zero pairs")

    design = np.concatenate(
        [inputs.astype(np.float64), np.ones((n, 1))], axis=1
    )
    for denom in range(1, max_denom + 1):
        target = outputs.astype(np.float64) * denom
        sol, *_ = np.linalg.lstsq(design, target, rcond=None)
        cand = np.round(sol).astype(np.int64)
        form = QuasiAffineForm(
            tuple(int(v) for v in cand[:dim]), int(cand[dim]), denom
        )
        if np.array_equal(form.evaluate_rows(inputs), outputs):
            return form
        # The floor truncation biases the naive fit; retry with offsets.
        for offset in range(denom):
            form = QuasiAffineForm(
                tuple(int(v) for v in cand[:dim]),
                int(cand[dim]) + offset,
                denom,
            )
            if np.array_equal(form.evaluate_rows(inputs), outputs):
                return form
    raise NoPatternError(
        f"no quasi-affine pattern with denominator <= {max_denom}"
    )


def infer_relation_pattern(
    rel: PointRelation, max_denom: int = 8
) -> list[QuasiAffineForm]:
    """One quasi-affine form per output dimension of a functional relation."""
    if not rel.is_single_valued():
        raise NoPatternError("relation is not a function")
    return [
        infer_quasi_affine(rel.in_part, rel.out_part[:, k], max_denom)
        for k in range(rel.n_out)
    ]


def describe_pipeline_map(
    pmap,
    in_names: tuple[str, ...] | None = None,
    out_names: tuple[str, ...] | None = None,
) -> str:
    """The paper-style symbolic rendering of a pipeline map.

    Combines the inferred per-dimension formulas with the bounding box of
    the anchors; raises :class:`NoPatternError` for irregular maps.
    """
    rel = pmap.relation
    n_in, n_out = rel.n_in, rel.n_out
    in_names = in_names or tuple(f"i{k}" for k in range(n_in))
    out_names = out_names or tuple(f"o{k}" for k in range(n_out))
    forms = infer_relation_pattern(rel)
    eqs = [
        f"{name} = {form.render(in_names)}"
        for name, form in zip(out_names, forms)
    ]
    lo = rel.in_part.min(axis=0)
    hi = rel.in_part.max(axis=0)
    bounds = [
        f"{int(l)} <= {name} <= {int(h)}"
        for name, l, h in zip(in_names, lo, hi)
    ]
    return (
        f"{{ {pmap.source}[{', '.join(in_names)}] -> "
        f"{pmap.target}[{', '.join(out_names)}] : "
        + " and ".join(eqs + bounds)
        + " }"
    )


def consistent_across_sizes(
    make_relation, sizes: list[int], max_denom: int = 8
) -> bool:
    """True when ``make_relation(size)`` fits one pattern for all sizes.

    A practical check that the instantiated analysis has a size-independent
    (parametric) shape: infer the pattern at the smallest size, then verify
    it reproduces every larger instance exactly.
    """
    if not sizes:
        raise ValueError("need at least one size")
    rels = [make_relation(size) for size in sorted(sizes)]
    forms = infer_relation_pattern(rels[0], max_denom)
    for rel in rels[1:]:
        for k, form in enumerate(forms):
            if not np.array_equal(
                form.evaluate_rows(rel.in_part), rel.out_part[:, k]
            ):
                return False
    return True
