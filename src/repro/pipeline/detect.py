"""Algorithm 1: the cross-loop pipeline detection driver.

Walks every ordered statement pair of the SCoP, computes pipeline maps
where a dependence exists, derives per-statement source/target blocking
maps, refines them into the combined blocking ``E_S`` (Equation 3), and
attaches the pipeline dependency relations ``Q_S`` / ``Q_S^O``
(Equation 4).  The result, :class:`PipelineInfo`, is the "SCoP with
pipeline information" the paper's transformation phase consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..scop import DepKind, Scop, ScopStatement, validate_scop
from ..presburger import PointRelation
from .blocking import (
    Blocking,
    combine_blockings,
    source_blocking,
    target_blocking,
)
from .dependencies import BlockDependency, block_dependency, out_dependency
from .pipeline_map import PipelineMap, compute_pipeline_map


@dataclass(frozen=True)
class PipelineInfo:
    """Everything Algorithm 1 adds to a SCoP."""

    scop: Scop
    #: (source name, target name) -> pipeline map
    pipeline_maps: dict[tuple[str, str], PipelineMap]
    #: statement name -> combined blocking map E_S
    blockings: dict[str, Blocking]
    #: statement name -> in-dependency relations Q_S (one per pipeline map
    #: targeting the statement)
    in_deps: dict[str, tuple[BlockDependency, ...]]
    #: statement name -> out-dependency Q_S^O (identity on block ends)
    out_deps: dict[str, PointRelation]

    # ------------------------------------------------------------------
    def blocking(self, name: str) -> Blocking:
        return self.blockings[name]

    def num_tasks(self) -> int:
        return sum(b.num_blocks for b in self.blockings.values())

    def pipelined_statements(self) -> list[str]:
        """Statements participating in at least one pipeline map."""
        names: set[str] = set()
        for s, t in self.pipeline_maps:
            names.add(s)
            names.add(t)
        return [s.name for s in self.scop.statements if s.name in names]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Explicit-relation form of everything but the SCoP itself.

        The SCoP is *not* serialized: a stored artifact is only replayed
        against a SCoP freshly extracted from the same kernel source (the
        store key covers the source hash), so :meth:`from_dict` takes the
        live SCoP and rebuilds the info against it.
        """
        return {
            "pipeline_maps": [
                pm.to_dict() for _, pm in sorted(self.pipeline_maps.items())
            ],
            "blockings": [
                self.blockings[s.name].to_dict()
                for s in self.scop.statements
                if s.name in self.blockings
            ],
            "in_deps": {
                name: [d.to_dict() for d in deps]
                for name, deps in sorted(self.in_deps.items())
            },
            "out_deps": {
                name: rel.to_dict()
                for name, rel in sorted(self.out_deps.items())
            },
        }

    @staticmethod
    def from_dict(scop: Scop, d: dict) -> "PipelineInfo":
        """Rebuild a serialized info against a freshly extracted SCoP."""
        pipeline_maps = {}
        for rec in d["pipeline_maps"]:
            pm = PipelineMap.from_dict(rec)
            pipeline_maps[(pm.source, pm.target)] = pm
        blockings = {}
        for rec in d["blockings"]:
            b = Blocking.from_dict(rec)
            blockings[b.statement] = b
        in_deps = {
            name: tuple(BlockDependency.from_dict(r) for r in deps)
            for name, deps in d["in_deps"].items()
        }
        out_deps = {
            name: PointRelation.from_dict(rec)
            for name, rec in d["out_deps"].items()
        }
        return PipelineInfo(scop, pipeline_maps, blockings, in_deps, out_deps)

    def summary(self) -> str:
        lines = [f"PipelineInfo: {len(self.pipeline_maps)} pipeline maps, "
                 f"{self.num_tasks()} tasks"]
        for (s, t), pm in sorted(self.pipeline_maps.items()):
            lines.append(f"  {pm}")
        for name, blocking in self.blockings.items():
            deps = ", ".join(d.source for d in self.in_deps.get(name, ()))
            dep_str = f" <- [{deps}]" if deps else ""
            lines.append(
                f"  {name}: {blocking.num_blocks} blocks{dep_str}"
            )
        return "\n".join(lines)


def detect_pipeline(
    scop: Scop,
    kinds: tuple[DepKind, ...] = (DepKind.FLOW,),
    validate: bool = True,
    coarsen: int = 1,
) -> PipelineInfo:
    """Run Algorithm 1 on an extracted SCoP.

    Parameters
    ----------
    scop:
        The instantiated SCoP.
    kinds:
        Dependence classes to pipeline.  The paper uses flow only; adding
        :data:`DepKind.ANTI` / :data:`DepKind.OUTPUT` enables the
        future-work extension (safe, coarser blocks).
    validate:
        Check the paper's structural assumptions first (single write per
        statement, injective writes) and raise on violations.
    coarsen:
        Merge every ``coarsen`` consecutive blocks of each statement into
        one task before computing dependencies — the task-granularity knob
        (1 = the paper's finest safe blocks).

    Raises
    ------
    UncoveredDependenceError
        When a cross-nest dependence of a class *not* in ``kinds`` exists:
        the transformed program could then reorder it.  Add the class to
        ``kinds`` (the future-work extension) or rewrite the kernel.
    """
    from ..obs.spans import span

    with span("pipeline.detect", statements=len(scop.statements)):
        if validate:
            with span("pipeline.validate"):
                validate_scop(scop).raise_if_invalid()
                _check_dependence_coverage(scop, kinds)

        pipeline_maps: dict[tuple[str, str], PipelineMap] = {}
        per_stmt_blockings: dict[str, list[Blocking]] = {
            s.name: [] for s in scop.statements
        }

        # Lines 1-7 of Algorithm 1: pipeline + blocking maps per pair.
        with span("pipeline.maps") as sp:
            for source in scop.statements:
                for target in scop.statements:
                    if source.nest_index >= target.nest_index:
                        continue
                    pmap = _best_pipeline_map(scop, source, target, kinds)
                    if pmap is None:
                        continue
                    pipeline_maps[(source.name, target.name)] = pmap
                    per_stmt_blockings[source.name].append(
                        source_blocking(source.name, source.points, pmap)
                    )
                    per_stmt_blockings[target.name].append(
                        target_blocking(target.name, target.points, pmap)
                    )
            sp.set(pipeline_maps=len(pipeline_maps))

        # Lines 8-10: E_S = lexmin over blocking maps; Q_S^O = identity.
        with span("pipeline.blocking"):
            blockings: dict[str, Blocking] = {}
            for stmt in scop.statements:
                combined = combine_blockings(
                    stmt.name, stmt.points, per_stmt_blockings[stmt.name]
                )
                if coarsen > 1:
                    combined = combined.coarsened(coarsen)
                blockings[stmt.name] = combined

        in_deps, out_deps = derive_dependencies(scop, pipeline_maps, blockings)
        return PipelineInfo(scop, pipeline_maps, blockings, in_deps, out_deps)


def derive_dependencies(
    scop: Scop,
    pipeline_maps: dict[tuple[str, str], PipelineMap],
    blockings: dict[str, Blocking],
) -> tuple[dict[str, tuple[BlockDependency, ...]], dict[str, PointRelation]]:
    """Lines 11-12 of Algorithm 1: ``Q_S`` / ``Q_S^O`` for given blockings.

    Factored out of :func:`detect_pipeline` so callers that *re-block* a
    detected pipeline (the granularity auto-tuner coarsening statements
    individually) can recompute the dependency relations without
    re-running pipeline-map detection.
    """
    from ..obs.spans import span

    with span("pipeline.dependencies"):
        out_deps = {
            name: out_dependency(blocking)
            for name, blocking in blockings.items()
        }
        in_deps: dict[str, tuple[BlockDependency, ...]] = {
            s.name: () for s in scop.statements
        }
        for (src_name, tgt_name), pmap in pipeline_maps.items():
            target = scop.statement(tgt_name)
            dep = block_dependency(
                pmap,
                blockings[src_name],
                blockings[tgt_name],
                target.points,
            )
            in_deps[tgt_name] = in_deps[tgt_name] + (dep,)
        return in_deps, out_deps


class UncoveredDependenceError(ValueError):
    """A cross-nest dependence class is not covered by the pipeline maps."""


def _check_dependence_coverage(
    scop: Scop, kinds: tuple[DepKind, ...]
) -> None:
    """Reject programs with cross-nest dependences the maps won't order.

    The paper's transformation serializes blocks of one statement and
    orders cross-statement blocks only along the computed pipeline maps; a
    cross-nest anti or output dependence outside ``kinds`` would be free to
    execute backwards.
    """
    from ..scop import dependence_relation

    missing = tuple(k for k in DepKind if k not in kinds)
    if not missing:
        return
    for source in scop.statements:
        for target in scop.statements:
            if source.nest_index >= target.nest_index:
                continue
            for kind in missing:
                rel = dependence_relation(scop, source, target, kind)
                if not rel.is_empty():
                    raise UncoveredDependenceError(
                        f"cross-nest {kind.value} dependence "
                        f"{source.name} -> {target.name} is not covered; "
                        f"pass kinds including DepKind.{kind.name} to "
                        "detect_pipeline"
                    )


def _best_pipeline_map(
    scop: Scop,
    source: ScopStatement,
    target: ScopStatement,
    kinds: tuple[DepKind, ...],
) -> PipelineMap | None:
    """Pipeline map combining the requested dependence classes.

    Each class yields its own requirement relation; they are merged by
    taking, per target iteration, the lexicographically largest requirement
    (the safe intersection of the individual pipeline conditions), then
    re-deriving the anchor map.
    """
    from .pipeline_map import prefix_lexmax

    requirement: PointRelation | None = None
    for kind in kinds:
        pmap = compute_pipeline_map(scop, source, target, kind)
        if pmap is None:
            continue
        req = pmap.requirement
        requirement = req if requirement is None else requirement.union(req)
    if requirement is None:
        return None
    merged = prefix_lexmax(requirement.lexmax_per_domain())
    anchors = merged.inverse().lexmax_per_domain()
    return PipelineMap(source.name, target.name, anchors, merged)
