"""Pipeline dependency relations (Section 4.3, Equation 4).

Once every statement has its combined blocking map ``E_S`` (its blocks are
the tasks), each block needs to know which *source blocks* must finish
before it may run.  For a pipeline map ``T_i`` with S as target and source
statement R:

* ``Y_i`` is S's target blocking for ``T_i`` — it sends an S block end
  ``e`` to the end ``b`` of the coarser ``T_i`` block containing it;
* if ``b`` is an anchor (``b ∈ Range(T_i)``) the required source iteration
  is ``T_i⁻¹(b)``, folded through ``E_R`` to the source block end it is;
* otherwise ``e`` lies in the left-over block, which may only run after
  *all* of R — its requirement is R's final block end.

The out-dependency ``Q_S^O`` is the identity on ``Range(E_S)``: finishing
block ``e`` publishes ``e``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..presburger import PointRelation, PointSet
from .blocking import Blocking, target_blocking
from .pipeline_map import PipelineMap


@dataclass(frozen=True)
class BlockDependency:
    """In-dependency of a statement's blocks on one source statement.

    ``relation`` maps each block end of the dependent statement to the block
    end of ``source`` that must complete first.
    """

    source: str
    target: str
    relation: PointRelation

    def to_dict(self) -> dict:
        """JSON-ready form for the durable artifact store."""
        return {
            "source": self.source,
            "target": self.target,
            "relation": self.relation.to_dict(),
        }

    @staticmethod
    def from_dict(d: dict) -> "BlockDependency":
        return BlockDependency(
            d["source"], d["target"], PointRelation.from_dict(d["relation"])
        )

    def __str__(self) -> str:
        return f"Q[{self.target} <- {self.source}] ({len(self.relation)} blocks)"


def block_dependency(
    pmap: PipelineMap,
    source_blocking_map: Blocking,
    target_blocking_map: Blocking,
    target_domain: PointSet,
) -> BlockDependency:
    """Equation 4 for one pipeline map.

    Parameters
    ----------
    pmap:
        The pipeline map ``T_i`` whose target's blocks need requirements.
    source_blocking_map:
        ``E_R`` — the *combined* blocking of the source statement.
    target_blocking_map:
        ``E_S`` — the combined blocking of the target statement (whose
        block ends form the domain of the result).
    target_domain:
        Iteration domain of the target statement, used to rebuild ``Y_i``.
    """
    ends = target_blocking_map.ends  # Range(E_S)
    if ends.is_empty():
        return BlockDependency(
            pmap.source, pmap.target, PointRelation.empty(ends.ndim, ends.ndim)
        )

    # Y_i: blocking of the target by this pipeline map's own anchors.
    y_i = target_blocking(pmap.target, target_domain, pmap)
    coarse = y_i.mapping.restrict_domain(ends)  # e -> b (total on ends)
    anchors = pmap.relation.range()

    e_rows = coarse.in_part
    b_rows = coarse.out_part
    is_anchor = _rows_in(b_rows, anchors)

    req = np.empty((e_rows.shape[0], pmap.relation.n_in), dtype=np.int64)

    if np.any(is_anchor):
        inv = pmap.relation.inverse()  # b -> required source iteration
        req[is_anchor] = _apply_function(inv, b_rows[is_anchor])
    if np.any(~is_anchor):
        # Left-over block: needs all of the source statement.
        last = np.asarray(
            source_blocking_map.ends.lexmax(), dtype=np.int64
        )
        req[~is_anchor] = last

    # Fold the required iterations through E_R so the tokens are block ends.
    req = _apply_function(source_blocking_map.mapping, req)
    relation = PointRelation.from_arrays(e_rows, req)
    return BlockDependency(pmap.source, pmap.target, relation)


def out_dependency(blocking: Blocking) -> PointRelation:
    """``Q_S^O``: the identity map on the statement's block ends."""
    return PointRelation.identity(blocking.ends)


# ----------------------------------------------------------------------
def _rows_in(rows: np.ndarray, pset: PointSet) -> np.ndarray:
    """Mask over ``rows``: membership in ``pset`` (order preserved)."""
    if rows.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    if pset.is_empty():
        return np.zeros(rows.shape[0], dtype=bool)
    from ..presburger import joint_ranks

    mine, theirs = joint_ranks(rows, pset.points)
    return np.isin(mine, theirs)


def _apply_function(rel: PointRelation, rows: np.ndarray) -> np.ndarray:
    """Apply a single-valued relation to each row (rows must be in its domain)."""
    if rows.shape[0] == 0:
        return rows.reshape(0, rel.n_out)
    from ..presburger import joint_ranks

    fn = rel.lexmax_per_domain()  # canonical single-valued form
    keys, queries = joint_ranks(fn.in_part, rows)
    idx = np.searchsorted(keys, queries)
    if np.any(idx >= len(keys)) or np.any(keys[np.minimum(idx, len(keys) - 1)] != queries):
        missing = rows[
            (idx >= len(keys))
            | (keys[np.minimum(idx, len(keys) - 1)] != queries)
        ]
        raise KeyError(
            f"{missing[0].tolist()} is not in the domain of the relation"
        )
    return fn.out_part[idx]
