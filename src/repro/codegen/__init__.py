"""Code generation targeting the CreateTask tasking layer (Section 5.4)."""

from .emit import (
    emit_task_program,
    load_task_program,
    run_generated,
    statement_columns,
    statement_packers,
)
from .packing import PackerOverflowError, VectorPacker

__all__ = [
    "PackerOverflowError",
    "VectorPacker",
    "emit_task_program",
    "load_task_program",
    "run_generated",
    "statement_columns",
    "statement_packers",
]
