"""Integer packing of dependency vectors (Section 5.4).

The paper converts each block-end vector into a single integer by
"multiplying each dimension by a large enough integer and adding them all",
then pairs it with a statement index to address the ``dependArr`` slot.
:class:`VectorPacker` implements exactly that as an exact mixed-radix code
(offset by the per-dimension minimum so negative coordinates pack too), and
is invertible for debugging and testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: packed codes travel through int64 ``dependArr`` slots (Figure 8)
INT64_CAPACITY = 2**63


class PackerOverflowError(ValueError):
    """The packed code space does not fit an int64 slot (rule RPA041)."""

    code = "RPA041"

    def diagnostic(self):
        """The finding as an RPA041 diagnostic."""
        from ..analysis import diagnostics as D
        from ..analysis.diagnostics import Diagnostic

        return Diagnostic(D.PACKER_OVERFLOW, str(self))


@dataclass(frozen=True)
class VectorPacker:
    """Bijective encoding of bounded integer vectors into single integers."""

    mins: tuple[int, ...]
    ranges: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.mins) != len(self.ranges):
            raise ValueError("mins and ranges must have equal length")
        if any(r < 1 for r in self.ranges):
            raise ValueError("every dimension range must be >= 1")
        cap = 1
        for r in self.ranges:
            cap *= r
        if cap >= INT64_CAPACITY:
            # np.int64 arithmetic in pack_rows would silently wrap
            raise PackerOverflowError(
                f"packer capacity {cap} exceeds the int64 slot space "
                f"({INT64_CAPACITY}); coarsen the blocking so block-end "
                f"ranges shrink [{PackerOverflowError.code}]"
            )

    @staticmethod
    def for_points(points: np.ndarray) -> "VectorPacker":
        """A packer covering every row of ``points``."""
        points = np.asarray(points, dtype=np.int64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("need a non-empty 2-D point array")
        mins = points.min(axis=0)
        ranges = points.max(axis=0) - mins + 1
        return VectorPacker(
            tuple(int(v) for v in mins), tuple(int(v) for v in ranges)
        )

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.mins)

    @property
    def capacity(self) -> int:
        cap = 1
        for r in self.ranges:
            cap *= r
        return cap

    def pack(self, vec: Sequence[int]) -> int:
        """Vector → integer (row-major mixed radix)."""
        if len(vec) != self.ndim:
            raise ValueError(f"expected {self.ndim} coordinates")
        code = 0
        for v, lo, r in zip(vec, self.mins, self.ranges):
            digit = int(v) - lo
            if not 0 <= digit < r:
                raise ValueError(f"coordinate {v} outside packer range")
            code = code * r + digit
        return code

    def unpack(self, code: int) -> tuple[int, ...]:
        """Integer → vector (inverse of :meth:`pack`)."""
        if not 0 <= code < self.capacity:
            raise ValueError(f"code {code} outside packer capacity")
        digits: list[int] = []
        for r in reversed(self.ranges):
            digits.append(code % r)
            code //= r
        return tuple(d + lo for d, lo in zip(reversed(digits), self.mins))

    def pack_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`pack` over an ``(n, ndim)`` array."""
        rows = np.asarray(rows, dtype=np.int64)
        codes = np.zeros(rows.shape[0], dtype=np.int64)
        for k in range(self.ndim):
            digit = rows[:, k] - self.mins[k]
            if np.any((digit < 0) | (digit >= self.ranges[k])):
                raise ValueError("row coordinate outside packer range")
            codes = codes * self.ranges[k] + digit
        return codes
