"""The analysis driver: run every static check over one kernel.

:func:`analyze_kernel` takes raw kernel source and runs the full stack —
parse, lint, SCoP extraction, validation, pipelinability explanation,
pipeline detection and the task-graph checks — collecting everything into
one :class:`AnalysisResult`.  Frontend and semantic failures become
``RPA001``/``RPA002`` diagnostics instead of exceptions, so ``repro lint``
and ``repro analyze`` always produce a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..lang.errors import FrontendError, ParseError, SemanticError
from ..lang.parser import parse
from . import diagnostics as D
from .diagnostics import Collector, DiagnosticReport, Severity
from .lint import lint_program


@dataclass
class AnalysisResult:
    """Everything the static-analysis subsystem found about one kernel."""

    source: str
    file: str | None
    report: DiagnosticReport = DiagnosticReport()
    program: Any = None
    scop: Any = None
    info: Any = None  # PipelineInfo when detection succeeded
    explanations: tuple = ()
    detect_error: str | None = None
    portfolio: Any = None  # PortfolioReport when requested

    @property
    def ok(self) -> bool:
        """No error-severity diagnostic."""
        return self.report.ok

    def classifications(self) -> list[dict]:
        if self.portfolio is not None:
            return [p.to_dict() for p in self.portfolio.pairs]
        return [e.to_dict() for e in self.explanations]

    def exit_code(self) -> int:
        """1 when any error diagnostic exists, else 0 (CI contract)."""
        return 0 if self.ok else 1


def analyze_kernel(
    source: str,
    params: dict[str, int] | None = None,
    file: str | None = None,
    deep: bool = True,
    portfolio: bool = False,
) -> AnalysisResult:
    """Run the full static-analysis stack over kernel source text.

    ``deep=False`` stops after the AST-level checks (parse + lint) — the
    ``repro lint`` mode.  ``deep=True`` additionally extracts and
    validates the SCoP, explains pipelinability of every consecutive
    nest pair, runs Algorithm 1 and checks the generated task graph.
    ``portfolio=True`` also runs the pattern portfolio (reduction /
    do-all / geometric-decomposition detection with machine-checked
    privatization proofs); verified proofs reclassify blocked nest pairs
    to ``pipeline-after-privatization`` in ``explanations``.
    """
    result = AnalysisResult(source=source, file=file)
    report = DiagnosticReport()

    # 1. parse
    try:
        result.program = parse(source)
    except FrontendError as exc:
        out = Collector(file)
        rule = D.PARSE_ERROR if isinstance(exc, ParseError) else (
            D.SEMANTIC_ERROR if isinstance(exc, SemanticError)
            else D.PARSE_ERROR
        )
        out.add(rule, str(exc.args[0] if exc.args else exc), exc.location)
        result.report = report.merged(out.report()).sorted()
        return result

    # 2. lint (AST level)
    report = report.merged(lint_program(result.program, params, file))
    if not deep:
        result.report = report.sorted()
        return result

    # 3. extract + validate the SCoP
    from ..scop import extract_scop, validate_scop

    try:
        result.scop = extract_scop(result.program, params)
    except SemanticError as exc:
        out = Collector(file)
        out.add(
            D.SEMANTIC_ERROR,
            str(exc.args[0] if exc.args else exc),
            exc.location,
        )
        result.report = report.merged(out.report()).sorted()
        return result

    from .portfolio.reduction import find_reduction_specs

    waivers = frozenset(
        find_reduction_specs(s.assign for s in result.scop.statements)
    )
    validation = validate_scop(result.scop, file=file,
                               reduction_waivers=waivers)
    report = report.merged(validation.diagnostics)

    # 4. pipelinability explanation (classification of nest pairs)
    from .explain import classify_nest_pairs, explain_to_diagnostics

    if result.scop.statements:
        result.explanations = classify_nest_pairs(result.scop)
        report = report.merged(
            explain_to_diagnostics(result.scop, result.explanations, file)
        )

    # 4b. pattern portfolio (opt-in): all provable patterns + proofs
    if portfolio and result.scop.statements:
        from .portfolio import portfolio_to_diagnostics, run_portfolio

        result.portfolio = run_portfolio(result.scop, result.explanations)
        result.explanations = result.portfolio.explanations()
        report = report.merged(
            portfolio_to_diagnostics(result.scop, result.portfolio, file)
        )

    # 5. pipeline detection + task-graph checks, only on a valid SCoP
    if validation.ok and result.scop.statements:
        result.info, result.detect_error = _detect(result.scop)
        if result.info is not None:
            from .taskcheck import check_task_graph

            report = report.merged(
                check_task_graph(result.scop, result.info, file=file)
            )

    result.report = report.sorted()
    return result


def _detect(scop):
    """Algorithm 1, falling back to the all-kinds extension when needed.

    Returns ``(info or None, note or None)``.  The note explains why the
    flow-only detection did not apply; the explainer has already emitted
    the corresponding diagnostics.
    """
    from ..pipeline import UncoveredDependenceError, detect_pipeline
    from ..scop import DepKind

    try:
        return detect_pipeline(scop), None
    except UncoveredDependenceError as exc:
        note = str(exc)
        try:
            return detect_pipeline(scop, kinds=tuple(DepKind)), note
        except Exception as exc2:  # pragma: no cover - defensive
            return None, f"{note}; extension also failed: {exc2}"
    except Exception as exc:
        return None, str(exc)
