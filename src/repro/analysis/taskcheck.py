"""Task-graph checking beyond schedule-level legality.

:func:`repro.schedule.legality.check_legality` asks "is every dependence
transitively ordered in the task graph?".  This module asks three harder
questions about the *generated artefacts* (Sections 5.4–5.5):

* :func:`check_packing` — is the depend-slot encoding collision-free?
  The runtime addresses ``dependArr`` as ``write_num * depend + idx``
  (Figure 8); two blocks packing to the same slot silently merge their
  dependence chains.
* :func:`check_token_coverage` — is every polyhedral dependence covered
  by an explicit in/out *token chain* (self-chain* ∘ in-token ∘
  self-chain*)?  This is deliberately **not** graph reachability: it
  certifies the depend clauses themselves, the thing the generated code
  actually declares to the runtime.
* :func:`check_races` — do adversarial interleavings admitted by the
  declared edges ever reorder a dependence?  Runs an adversarial Kahn
  scheduler (prefer ready tasks with unfinished dependence sources) plus
  a sweep of the discrete-event simulator across policies and worker
  counts, checking ``start[target] >= finish[source]`` for every
  instance pair.

:func:`check_task_graph` bundles all three into one
:class:`~repro.analysis.diagnostics.DiagnosticReport`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..pipeline import PipelineInfo
from ..scop import DepKind, Scop, dependence_relation
from . import diagnostics as D
from .diagnostics import Collector, DiagnosticReport

INT64_SLOTS = 2**63


# ----------------------------------------------------------------------
# depend-slot packing (Figure 8)
# ----------------------------------------------------------------------
def check_packing(
    ast,
    packers: Mapping[str, object] | None = None,
    columns: Mapping[str, int] | None = None,
    file: str | None = None,
    max_reports: int = 5,
) -> DiagnosticReport:
    """Verify the ``write_num * depend + idx`` addressing is collision-free.

    ``packers``/``columns`` default to what the emitter would use
    (:func:`repro.codegen.emit.statement_packers` /
    :func:`~repro.codegen.emit.statement_columns`); tests inject broken
    ones to prove the checker catches seeded collisions.
    """
    from ..codegen.emit import statement_columns, statement_packers

    out = Collector(file)
    if columns is None:
        columns = statement_columns(ast)
    if packers is None:
        packers = statement_packers(ast)
    write_num = len(columns)

    seen_cols: dict[int, str] = {}
    for name, col in sorted(columns.items()):
        if not 0 <= col < write_num:
            out.add(
                D.PACKING_COLLISION,
                f"statement {name}: column index {col} outside "
                f"[0, write_num={write_num}) — its slots alias another "
                "statement's",
            )
        elif col in seen_cols:
            out.add(
                D.PACKING_COLLISION,
                f"statements {seen_cols[col]} and {name} share dependArr "
                f"column {col}; their tokens alias",
            )
        else:
            seen_cols[col] = name

    slot_owner: dict[int, tuple[str, int]] = {}
    reported = 0
    for nest in ast.nests:
        name = nest.statement
        packer = packers.get(name)
        col = columns.get(name)
        if packer is None or col is None:
            out.add(
                D.PACKING_COLLISION,
                f"statement {name} has no packer/column assignment",
            )
            continue
        capacity = getattr(packer, "capacity", 0)
        if capacity >= INT64_SLOTS // max(write_num, 1):
            out.add(
                D.PACKER_OVERFLOW,
                f"statement {name}: packer capacity {capacity} times "
                f"write_num {write_num} exceeds the int64 slot space",
                hints=("coarsen the blocking to shrink the block-end "
                       "ranges (detect_pipeline(..., coarsen=k))",),
            )
        codes: dict[int, int] = {}
        for block in nest.blocks:
            try:
                code = packer.pack(block.end)
            except ValueError as exc:
                out.add(
                    D.PACKING_COLLISION,
                    f"block end {list(block.end)} of {name}#"
                    f"{block.block_id} is not packable: {exc}",
                )
                continue
            if code in codes and reported < max_reports:
                reported += 1
                out.add(
                    D.PACKING_COLLISION,
                    f"blocks {name}#{codes[code]} and {name}#"
                    f"{block.block_id} pack to the same code {code}; "
                    "their depend tokens collide",
                    hints=("the packer's ranges must cover every "
                           "block-end dimension (VectorPacker.for_points)",),
                )
            codes.setdefault(code, block.block_id)
            slot = write_num * code + (col if 0 <= col < write_num else 0)
            owner = slot_owner.get(slot)
            if owner is not None and owner[0] != name:
                out.add(
                    D.PACKING_COLLISION,
                    f"slot {slot} is claimed by both {owner[0]}#{owner[1]} "
                    f"and {name}#{block.block_id}",
                )
            slot_owner.setdefault(slot, (name, block.block_id))

        # in-tokens must round-trip through the producer's packer
        for block in nest.blocks:
            for src, end in block.in_tokens:
                src_packer = packers.get(src)
                if src_packer is None:
                    continue
                try:
                    src_packer.pack(end)
                except ValueError as exc:
                    out.add(
                        D.PACKING_COLLISION,
                        f"in-token {src}@{list(end)} of {name}#"
                        f"{block.block_id} is not packable by the "
                        f"producer's packer: {exc}",
                    )
    return out.report()


# ----------------------------------------------------------------------
# token-chain dependence coverage (Section 5.5)
# ----------------------------------------------------------------------
def check_token_coverage(
    scop: Scop,
    info: PipelineInfo,
    ast,
    file: str | None = None,
    kinds: Sequence[DepKind] = tuple(DepKind),
    max_reports: int = 5,
) -> DiagnosticReport:
    """Every dependence must be covered by a self-chain*/in-token chain.

    A cross-statement dependence from block ``bs`` of S to block ``bt`` of
    T is covered iff some T block ``b'' <= bt`` carries an in-token from an
    S block ``b' >= bs`` — the token chain self-chain* ∘ in-token ∘
    self-chain*.  Computed with running maxima over the in-tokens, never
    touching the task graph's edges, so it certifies the declared depend
    clauses rather than incidental reachability.
    """
    out = Collector(file)

    end_to_block: dict[str, dict[tuple[int, ...], int]] = {}
    for nest in ast.nests:
        end_to_block[nest.statement] = {
            b.end: k for k, b in enumerate(nest.blocks)
        }

    # cover[tgt][src][k] = highest src block index any in-token of target
    # blocks 0..k refers to (running max along the target self-chain)
    cover: dict[str, dict[str, np.ndarray]] = {}
    for nest in ast.nests:
        per_src: dict[str, np.ndarray] = {}
        for src in end_to_block:
            if src == nest.statement:
                continue
            best = -1
            row = np.empty(len(nest.blocks), dtype=np.int64)
            for k, block in enumerate(nest.blocks):
                for token_src, token_end in block.in_tokens:
                    if token_src != src:
                        continue
                    ref = end_to_block[src].get(token_end)
                    if ref is not None and ref > best:
                        best = ref
                row[k] = best
            per_src[src] = row
        cover[nest.statement] = per_src

    reported = 0
    for source in scop.statements:
        sb = info.blockings[source.name]
        for target in scop.statements:
            tb = info.blockings[target.name]
            for kind in kinds:
                rel = dependence_relation(scop, source, target, kind)
                if rel.is_empty():
                    continue
                src_blocks = sb.block_of_rows(rel.out_part)
                tgt_blocks = tb.block_of_rows(rel.in_part)
                if source.name == target.name:
                    # the self-chain orders blocks; within a block the
                    # execution is lexicographic, matching the dependence
                    bad = src_blocks > tgt_blocks
                else:
                    row = cover[target.name].get(source.name)
                    if row is None:
                        bad = np.ones(len(src_blocks), dtype=bool)
                    else:
                        bad = row[tgt_blocks] < src_blocks
                for idx in np.nonzero(bad)[0]:
                    if reported >= max_reports:
                        break
                    reported += 1
                    out.add(
                        D.UNCOVERED_DEPENDENCE,
                        f"{kind.value} dependence "
                        f"{source.name}{list(rel.out_part[idx])} -> "
                        f"{target.name}{list(rel.in_part[idx])} is not "
                        "covered by any in/out token chain "
                        f"(source block {int(src_blocks[idx])}, target "
                        f"block {int(tgt_blocks[idx])})",
                        hints=(
                            "the depend clauses under-approximate Q_S; "
                            "re-run detect_pipeline with the dependence's "
                            "kind included",
                        ),
                    )
    return out.report()


# ----------------------------------------------------------------------
# adversarial interleaving race check (Section 5.5)
# ----------------------------------------------------------------------
def check_races(
    scop: Scop,
    info: PipelineInfo,
    graph,
    file: str | None = None,
    workers: Sequence[int] = (2, 4),
    policies: Sequence[str] = ("fifo", "lifo", "cp"),
    max_reports: int = 5,
) -> DiagnosticReport:
    """Hunt for dependence-reordering interleavings of the task graph."""
    from ..tasking.simulator import simulate

    out = Collector(file)
    pairs = _dependence_task_pairs(scop, info, graph)
    cross = [p for p in pairs if p[1] != p[2]]
    if not cross:
        return out.report()

    s_tids = np.asarray([p[1] for p in cross], dtype=np.int64)
    t_tids = np.asarray([p[2] for p in cross], dtype=np.int64)

    reported = 0

    def report(indices: Iterable[int], how: str) -> None:
        nonlocal reported
        for i in indices:
            if reported >= max_reports:
                return
            reported += 1
            kind, s, t, s_inst, t_inst = cross[i]
            st, tt = graph.tasks[s], graph.tasks[t]
            out.add(
                D.TASK_RACE,
                f"{how}: task {tt.statement}#{tt.block_id} ran before "
                f"task {st.statement}#{st.block_id} finished, reordering "
                f"the {kind.value} dependence "
                f"{st.statement}{list(s_inst)} -> "
                f"{tt.statement}{list(t_inst)}",
                hints=(
                    "the declared depend edges admit this interleaving; "
                    "the token chains miss the dependence",
                ),
            )

    # adversarial Kahn: serialize tasks, always preferring the ready task
    # with the most unfinished dependence sources
    danger: dict[int, list[int]] = {}
    for i, (_, s, t, _, _) in enumerate(cross):
        danger.setdefault(t, []).append(i)
    done = [False] * len(graph.tasks)
    indeg = [len(p) for p in graph.preds]
    ready = {t for t in range(len(graph.tasks)) if indeg[t] == 0}
    raced: list[int] = []
    while ready:
        tid = max(
            ready,
            key=lambda t: (
                sum(
                    1
                    for i in danger.get(t, ())
                    if not done[cross[i][1]]
                ),
                -t,
            ),
        )
        ready.remove(tid)
        for i in danger.get(tid, ()):
            if not done[cross[i][1]]:
                raced.append(i)
        done[tid] = True
        for s in graph.succs[tid]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.add(s)
    report(raced, "adversarial schedule")

    # simulator sweep: no policy/worker combination may start a dependence
    # target before its source finished
    for policy in policies:
        for w in workers:
            res = simulate(graph, w, policy=policy)
            bad = res.start[t_tids] < res.finish[s_tids]
            report(
                np.nonzero(bad)[0],
                f"simulated run (policy={policy}, workers={w})",
            )
    return out.report()


def _dependence_task_pairs(scop: Scop, info: PipelineInfo, graph):
    """(kind, source task, target task, source instance, target instance)."""
    from ..schedule.legality import _tasks_by_block

    token_to_task = {
        task.block.out_token: task.task_id
        for task in graph.tasks
        if task.block is not None
    }
    pairs = []
    for source in scop.statements:
        sb = info.blockings[source.name]
        s_tasks = _tasks_by_block(token_to_task, sb, source.name)
        for target in scop.statements:
            tb = info.blockings[target.name]
            t_tasks = _tasks_by_block(token_to_task, tb, target.name)
            for kind in DepKind:
                rel = dependence_relation(scop, source, target, kind)
                if rel.is_empty():
                    continue
                s_tids = s_tasks[sb.block_of_rows(rel.out_part)]
                t_tids = t_tasks[tb.block_of_rows(rel.in_part)]
                for k in range(len(rel)):
                    pairs.append(
                        (
                            kind,
                            int(s_tids[k]),
                            int(t_tids[k]),
                            tuple(int(v) for v in rel.out_part[k]),
                            tuple(int(v) for v in rel.in_part[k]),
                        )
                    )
    return pairs


# ----------------------------------------------------------------------
def check_task_graph(
    scop: Scop,
    info: PipelineInfo,
    ast=None,
    graph=None,
    file: str | None = None,
    max_reports: int = 5,
) -> DiagnosticReport:
    """Run packing, token-coverage and race checks; merge the reports."""
    from ..schedule import generate_task_ast
    from ..tasking import TaskGraph

    if ast is None:
        ast = generate_task_ast(info)
    if graph is None:
        graph = TaskGraph.from_task_ast(ast)
    report = check_packing(ast, file=file, max_reports=max_reports)
    report = report.merged(
        check_token_coverage(scop, info, ast, file=file,
                             max_reports=max_reports)
    )
    report = report.merged(
        check_races(scop, info, graph, file=file, max_reports=max_reports)
    )
    return report
