"""The pipelinability explainer.

Classifies every *consecutive* pair of loop nests of a SCoP as one of

* ``do-all``      — no cross-nest dependence at all; the nests can run
  concurrently without any ordering;
* ``pipeline``    — a flow dependence exists and its pipeline map
  (Section 4.1) admits real overlap between the nests;
* ``fusion-only`` — dependences exist and every one is forward-aligned
  (the nests could legally be fused), but the pipeline map degenerates
  to a full barrier, so tasking buys nothing;
* ``sequential``  — a dependence forces the second nest to wait for all
  of the first, and fusion would reorder it too.

When pipelining fails or degenerates, the explainer names the offending
dependence kind and the exact access pair inducing it, reusing the
internals of :mod:`repro.pipeline.detect` (pipeline maps, requirement
relations) and :mod:`repro.scop.deps` (execution-order filtering).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..pipeline.pipeline_map import compute_pipeline_map
from ..presburger import PointSet, rowwise_lex_lt
from ..scop import DepKind, Scop, ScopStatement, dependence_relation
from ..scop.access import Access
from ..scop.deps import _filter_execution_order
from . import diagnostics as D
from .diagnostics import Collector, DiagnosticReport, Span

#: overlap fractions below this are reported as degenerate pipelining
DEGENERATE_OVERLAP = 0.25


class PairClass(enum.Enum):
    DO_ALL = "do-all"
    PIPELINE = "pipeline"
    #: every blocking dependence is reduction-carried; privatizing the
    #: accumulator (portfolio pass, rule RPA051) unlocks the pair.  Never
    #: produced by :func:`classify_nest_pairs` itself — only by the
    #: portfolio reclassifier, which attaches a verified proof.
    PIPELINE_AFTER_PRIVATIZATION = "pipeline-after-privatization"
    FUSION_ONLY = "fusion-only"
    SEQUENTIAL = "sequential"

    @property
    def rank(self) -> int:
        return {
            "do-all": 0,
            "pipeline": 1,
            "pipeline-after-privatization": 2,
            "fusion-only": 3,
            "sequential": 4,
        }[self.value]


@dataclass(frozen=True)
class DependenceBlame:
    """One dependence (kind + access pair) blamed for blocking a pipeline."""

    kind: DepKind
    source: str
    target: str
    source_access: str
    target_access: str
    pairs: int
    reason: str

    def describe(self) -> str:
        return (
            f"{self.kind.value} dependence {self.source} -> {self.target} "
            f"({self.source_access} vs {self.target_access}, "
            f"{self.pairs} instance pairs): {self.reason}"
        )


@dataclass(frozen=True)
class PairExplanation:
    """Classification of one consecutive nest pair, with its evidence."""

    source_nest: int
    target_nest: int
    classification: PairClass
    reasons: tuple[str, ...]
    blockers: tuple[DependenceBlame, ...]
    #: smallest pipeline overlap fraction across the pair's flow maps
    #: (1.0 = target may start immediately, 0.0 = full barrier); None
    #: when the pair has no flow dependence
    overlap: float | None
    #: dependences a verified privatization proof removes (set only by the
    #: portfolio reclassifier on ``pipeline-after-privatization`` pairs)
    removed_by_privatization: tuple[DependenceBlame, ...] = ()

    def describe(self) -> str:
        head = (
            f"nests ({self.source_nest}, {self.target_nest}): "
            f"{self.classification.value}"
        )
        if self.overlap is not None:
            head += f" (overlap {self.overlap:.0%})"
        return head

    def to_dict(self) -> dict:
        out = {
            "nest_pair": [self.source_nest, self.target_nest],
            "classification": self.classification.value,
            "overlap": self.overlap,
            "reasons": list(self.reasons),
            "blockers": [b.describe() for b in self.blockers],
        }
        if self.removed_by_privatization:
            out["removed_by_privatization"] = [
                b.describe() for b in self.removed_by_privatization
            ]
        return out


# ----------------------------------------------------------------------
def classify_nest_pairs(scop: Scop) -> tuple[PairExplanation, ...]:
    """Classify every consecutive nest pair of the SCoP."""
    nests: dict[int, list[ScopStatement]] = {}
    for stmt in scop.statements:
        nests.setdefault(stmt.nest_index, []).append(stmt)
    order = sorted(nests)
    return tuple(
        _classify_pair(scop, a, b, nests[a], nests[b])
        for a, b in zip(order, order[1:])
    )


def _classify_pair(
    scop: Scop,
    nest_a: int,
    nest_b: int,
    sources: list[ScopStatement],
    targets: list[ScopStatement],
) -> PairExplanation:
    reasons: list[str] = []
    blockers: list[DependenceBlame] = []
    classes: list[PairClass] = []
    overlaps: list[float] = []

    for src in sources:
        for tgt in targets:
            cls, why, blame, overlap = _classify_statement_pair(
                scop, src, tgt
            )
            if cls is not None:
                classes.append(cls)
            reasons.extend(why)
            blockers.extend(blame)
            if overlap is not None:
                overlaps.append(overlap)

    if not classes:
        classification = PairClass.DO_ALL
        reasons.append(
            f"no dependence of any kind between nest {nest_a} and nest "
            f"{nest_b}; they may run concurrently"
        )
    else:
        classification = max(classes, key=lambda c: c.rank)
    return PairExplanation(
        nest_a,
        nest_b,
        classification,
        tuple(reasons),
        tuple(blockers),
        min(overlaps) if overlaps else None,
    )


def _classify_statement_pair(
    scop: Scop, src: ScopStatement, tgt: ScopStatement
) -> tuple[PairClass | None, list[str], list[DependenceBlame], float | None]:
    rels = {
        kind: dependence_relation(scop, src, tgt, kind) for kind in DepKind
    }
    if all(rel.is_empty() for rel in rels.values()):
        return None, [], [], None

    reasons: list[str] = []
    blockers: list[DependenceBlame] = []

    flow = rels[DepKind.FLOW]
    overlap: float | None = None
    if not flow.is_empty():
        pmap = compute_pipeline_map(scop, src, tgt, DepKind.FLOW)
        overlap = _overlap_fraction(src, pmap)

    uncovered = [
        kind
        for kind in (DepKind.ANTI, DepKind.OUTPUT)
        if not rels[kind].is_empty()
    ]
    for kind in uncovered:
        for blame in _blame_accesses(
            scop, src, tgt, kind,
            reason="not covered by flow-only pipeline maps",
        ):
            blockers.append(blame)

    if overlap is not None and overlap > 0.0:
        reasons.append(
            f"{src.name} -> {tgt.name}: pipeline map admits "
            f"{overlap:.0%} overlap"
        )
        if overlap < DEGENERATE_OVERLAP:
            for blame in _blame_accesses(
                scop, src, tgt, DepKind.FLOW,
                reason=f"pipeline overlap degenerates to {overlap:.0%}",
            ):
                blockers.append(blame)
        if uncovered:
            names = "/".join(k.value for k in uncovered)
            reasons.append(
                f"{src.name} -> {tgt.name}: cross-nest {names} "
                "dependence(s) must be added to the pipelined kinds "
                "(future-work extension) before transformation"
            )
        return PairClass.PIPELINE, reasons, blockers, overlap

    # No flow dependence, or its pipeline map is a full barrier.
    if overlap == 0.0:
        for blame in _blame_accesses(
            scop, src, tgt, DepKind.FLOW,
            reason="its pipeline map degenerates to a full barrier (the "
            "first target iteration already requires the last source "
            "iteration)",
        ):
            blockers.append(blame)
        reasons.append(
            f"{src.name} -> {tgt.name}: flow dependence forces a full "
            "barrier; no overlap is possible"
        )
    else:
        names = "/".join(k.value for k in uncovered) or "non-flow"
        reasons.append(
            f"{src.name} -> {tgt.name}: only {names} dependence(s); "
            "flow-only pipelining finds nothing to overlap"
        )

    backwards = _fusion_violations(scop, src, tgt, rels)
    if not backwards:
        reasons.append(
            f"{src.name} -> {tgt.name}: every dependence is "
            "forward-aligned, so the nests could be fused instead"
        )
        return PairClass.FUSION_ONLY, reasons, blockers, overlap
    # Blame every dependence kind that runs backwards, not just the first
    # found — portfolio reclassification needs the complete list to show
    # exactly which dependences privatization would remove.
    names = "/".join(kind.value for kind in backwards)
    reasons.append(
        f"{src.name} -> {tgt.name}: {names} dependence(s) run backwards "
        "under fusion alignment; the nests must execute sequentially"
    )
    for kind in backwards:
        blockers.extend(
            _blame_accesses(
                scop, src, tgt, kind,
                reason="runs backwards under fusion alignment (the target "
                "instance would execute before its source)",
            )
        )
    return PairClass.SEQUENTIAL, reasons, blockers, overlap


# ----------------------------------------------------------------------
def _overlap_fraction(src: ScopStatement, pmap) -> float:
    """Fraction of source iterations still pending when the target may start.

    1.0 means the target's first block is unlocked immediately; 0.0 means
    the first anchor is the source's last iteration — a full barrier.
    """
    if pmap is None or pmap.relation.is_empty():
        return 0.0
    anchors = pmap.relation.domain()
    first = anchors.lexmin()
    points = src.points
    total = len(points)
    if total == 0:
        return 0.0
    rank = int(PointSet.single(first).first_geq(points)[0])
    required = rank + 1  # the anchor itself must finish too
    return max(0.0, (total - required) / total)


def _blame_accesses(
    scop: Scop,
    src: ScopStatement,
    tgt: ScopStatement,
    kind: DepKind,
    reason: str,
) -> list[DependenceBlame]:
    """The (source access, target access) pairs inducing one dependence."""
    if kind is DepKind.FLOW:
        src_accs, tgt_accs = src.writes, tgt.reads
    elif kind is DepKind.ANTI:
        src_accs, tgt_accs = src.reads, tgt.writes
    else:
        src_accs, tgt_accs = src.writes, tgt.writes

    out: list[DependenceBlame] = []
    for sa in src_accs:
        for ta in tgt_accs:
            if sa.array != ta.array:
                continue
            rel = access_pair_relation(scop, src, sa, tgt, ta)
            if rel.is_empty():
                continue
            out.append(
                DependenceBlame(
                    kind,
                    src.name,
                    tgt.name,
                    str(sa),
                    str(ta),
                    len(rel),
                    reason,
                )
            )
    return out


def access_pair_relation(
    scop: Scop,
    src: ScopStatement,
    src_acc: Access,
    tgt: ScopStatement,
    tgt_acc: Access,
):
    """Execution-ordered dependence pairs induced by one access pair.

    Same orientation as :func:`~repro.scop.deps.dependence_relation`
    (target iterations mapped to the source iterations they conflict
    with); the portfolio partition uses this to attribute each dependence
    pair to the array inducing it.
    """
    array_id = scop.array_ids[src_acc.array]
    sr = src_acc.explicit_relation(
        src.points, src.space, array_id, scop.mem_rank
    )
    tr = tgt_acc.explicit_relation(
        tgt.points, tgt.space, array_id, scop.mem_rank
    )
    candidates = sr.inverse().after(tr)
    return _filter_execution_order(candidates, src, tgt)


def _fusion_violations(
    scop: Scop, src: ScopStatement, tgt: ScopStatement, rels
) -> list[DepKind]:
    """Every dependence kind that fusing the two nests would reorder."""
    common = min(src.depth, tgt.depth)
    violations: list[DepKind] = []
    for kind, rel in rels.items():
        if rel.is_empty():
            continue
        s = rel.out_part[:, :common]
        t = rel.in_part[:, :common]
        forward = rowwise_lex_lt(s, t) | np.all(s == t, axis=1)
        if not bool(np.all(forward)):
            violations.append(kind)
    return violations


# ----------------------------------------------------------------------
def explain_to_diagnostics(
    scop: Scop,
    explanations: tuple[PairExplanation, ...],
    file: str | None = None,
) -> DiagnosticReport:
    """Render explanations as RPA030/RPA031/RPA032 diagnostics."""
    out = Collector(file)
    stmt_location = {
        s.name: s.assign.location for s in scop.statements
    }
    for exp in explanations:
        out.add(
            D.NEST_PAIR_CLASS,
            exp.describe() + "; " + "; ".join(exp.reasons),
            span=Span(file),
        )
        for blame in exp.blockers:
            rule = (
                D.UNCOVERED_CROSS_DEP
                if blame.kind is not DepKind.FLOW
                else D.PIPELINE_BLOCKED
            )
            hints = (
                (
                    "pass kinds=(DepKind.FLOW, DepKind."
                    f"{blame.kind.name}) to detect_pipeline (the paper's "
                    "future-work extension)",
                )
                if blame.kind is not DepKind.FLOW
                else (
                    "restructure the consumer to read in producer order, "
                    "or accept sequential nest execution",
                )
            )
            out.add(
                rule,
                f"nests ({exp.source_nest}, {exp.target_nest}): "
                + blame.describe(),
                location=stmt_location.get(blame.target),
                hints=hints,
            )
    return out.report()
