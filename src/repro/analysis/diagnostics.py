"""The diagnostics engine: stable rule codes, severities, source spans.

Every analysis in this package (the DSL linter, SCoP validation, the
pipelinability explainer, the task-graph checker, the packing guard)
reports findings as :class:`Diagnostic` objects carrying a stable
``RPA0xx`` rule code, a severity, an optional source span threaded from
the :mod:`repro.lang` tokens, fix-it hints, and the paper assumption the
finding relates to.  Renderers (:mod:`repro.analysis.render`) turn a
:class:`DiagnosticReport` into text, JSON, or SARIF.

Rule-code blocks::

    RPA00x  frontend (lexer / parser / semantic lowering)
    RPA01x  SCoP validation (Section 4 structural preconditions)
    RPA02x  DSL lint (AST-level, before extraction)
    RPA03x  pipelinability (Algorithm 1, Sections 4-5)
    RPA04x  task graph / codegen (Sections 5.4-5.5)
    RPA05x  pattern portfolio (reductions, do-all, geometric
            decomposition, privatization proofs)
    RPA06x  megakernel fusion (fused-closure legality gate)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..lang.errors import SourceLocation


class Severity(enum.Enum):
    """Diagnostic severity, ordered from advisory to fatal."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    @property
    def sarif_level(self) -> str:
        return {"info": "note", "warning": "warning", "error": "error"}[
            self.value
        ]


@dataclass(frozen=True)
class Span:
    """A source position (file plus 1-based line/column, optional end)."""

    file: str | None = None
    line: int | None = None
    column: int | None = None
    end_column: int | None = None

    @staticmethod
    def of(
        location: SourceLocation | None, file: str | None = None
    ) -> "Span | None":
        if location is None:
            return Span(file) if file else None
        return Span(
            file,
            location.line,
            location.column,
            getattr(location, "end_column", None),
        )

    def __str__(self) -> str:
        parts = [self.file or "<kernel>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        return ":".join(parts)


@dataclass(frozen=True)
class Rule:
    """One registered diagnostic rule with a stable code."""

    code: str
    name: str
    severity: Severity
    #: the paper assumption / section the rule checks
    assumption: str


_RULES: dict[str, Rule] = {}


def register_rule(
    code: str, name: str, severity: Severity, assumption: str
) -> Rule:
    if code in _RULES:
        raise ValueError(f"duplicate rule code {code}")
    rule = Rule(code, name, severity, assumption)
    _RULES[code] = rule
    return rule


def rule(code: str) -> Rule:
    return _RULES[code]


def all_rules() -> tuple[Rule, ...]:
    return tuple(_RULES[c] for c in sorted(_RULES))


# ----------------------------------------------------------------------
# the rule table
# ----------------------------------------------------------------------
E, W, I = Severity.ERROR, Severity.WARNING, Severity.INFO

PARSE_ERROR = register_rule(
    "RPA001", "parse-error", E,
    "the kernel must be a sequence of affine for-loop nests (Section 4)")
SEMANTIC_ERROR = register_rule(
    "RPA002", "semantic-error", E,
    "bounds and subscripts must lower to affine forms (Section 4)")

EMPTY_SCOP = register_rule(
    "RPA010", "empty-scop", E,
    "the program must contain at least one statement (Section 4)")
STATEMENT_OUTSIDE_LOOP = register_rule(
    "RPA011", "statement-outside-loop", E,
    "every statement must sit inside a loop nest (Section 4)")
MULTIPLE_WRITES = register_rule(
    "RPA012", "multiple-writes", E,
    "each statement performs exactly one array write (Section 4)")
NON_INJECTIVE_WRITE = register_rule(
    "RPA013", "non-injective-write", E,
    "each statement's write relation is injective — no over-writes "
    "(Section 4)")
EMPTY_DOMAIN = register_rule(
    "RPA014", "empty-domain", W,
    "statements with empty iteration domains contribute nothing")
MULTI_STATEMENT_NEST = register_rule(
    "RPA015", "multi-statement-nest", W,
    "the prototype pipelines one statement per nest (Section 5.4)")

NON_AFFINE_SUBSCRIPT = register_rule(
    "RPA020", "non-affine-subscript", E,
    "subscripts must be affine in the loop variables — Polly's SCoP rule "
    "(Section 4)")
DEAD_WRITE = register_rule(
    "RPA021", "dead-write", W,
    "an array written but never read feeds no dependence, so it cannot "
    "anchor a pipeline (Section 4.1)")
OVERWRITING_WRITE = register_rule(
    "RPA022", "overwriting-write", E,
    "a write subscript missing an enclosing loop variable over-writes "
    "cells, breaking the injective-write precondition (Section 4)")
UNUSED_ARRAY = register_rule(
    "RPA023", "unused-array", W,
    "an array touched by exactly one statement instance is likely a "
    "scalar in disguise; the analysis models arrays (Section 4)")
UNUSED_PARAMETER = register_rule(
    "RPA024", "unused-parameter", W,
    "structure parameters are substituted at extraction (DESIGN.md §2); "
    "unused ones hint at a mistyped bound")
SHADOWED_INDUCTION = register_rule(
    "RPA025", "shadowed-induction-variable", E,
    "loop variables must be distinct along a nest path so domains stay "
    "well-formed (Section 4)")

NEST_PAIR_CLASS = register_rule(
    "RPA030", "nest-pair-classification", I,
    "consecutive nest pairs are classified do-all / pipeline / "
    "fusion-only / sequential (Sections 4-5)")
PIPELINE_BLOCKED = register_rule(
    "RPA031", "pipeline-blocked", W,
    "a dependence whose pipeline map degenerates to a full barrier "
    "yields no overlap (Section 4.1)")
UNCOVERED_CROSS_DEP = register_rule(
    "RPA032", "uncovered-cross-nest-dependence", W,
    "flow-only pipeline maps do not order cross-nest anti/output "
    "dependences (Section 5; future-work extension)")

PACKING_COLLISION = register_rule(
    "RPA040", "packing-collision", E,
    "depend-slot addresses (write_num * depend + idx, Figure 8) must be "
    "collision-free across statements (Section 5.4)")
PACKER_OVERFLOW = register_rule(
    "RPA041", "packer-overflow", E,
    "packed dependency integers must fit an int64 slot (Section 5.4)")
UNCOVERED_DEPENDENCE = register_rule(
    "RPA042", "uncovered-dependence", E,
    "every polyhedral dependence must be covered by an in/out token "
    "chain of the generated depend clauses (Section 5.5)")
TASK_RACE = register_rule(
    "RPA043", "task-race", E,
    "no interleaving admitted by the declared depend edges may reorder "
    "a dependence (Section 5.5)")

REDUCTION_DETECTED = register_rule(
    "RPA050", "reduction-detected", I,
    "an associative, commutative accumulation whose carried dependences "
    "privatization may relax (Doerfert et al., reductions in Polly)")
PRIVATIZATION_RECLASSIFIED = register_rule(
    "RPA051", "privatization-reclassification", I,
    "a nest pair blocked only by reduction-carried dependences becomes "
    "pipelinable once the accumulator is privatized")
NEST_PATTERN = register_rule(
    "RPA052", "nest-pattern", I,
    "each nest is classified do-all / reduction / geometric-"
    "decomposition / irregular from its dependence evidence")
PROOF_REJECTED = register_rule(
    "RPA053", "privatization-proof-rejected", E,
    "privatization proofs are machine-checked against recomputed "
    "dependences; a rejected proof must never be acted on")
UNCOVERED_BY_PORTFOLIO = register_rule(
    "RPA054", "uncovered-by-portfolio", W,
    "a blocked nest pair none of the portfolio detectors can unlock "
    "keeps its sequential classification")
REDUCTION_ACCUMULATOR_WRITE = register_rule(
    "RPA055", "reduction-accumulator-write", W,
    "a non-injective write that is a proven associative accumulation is "
    "benign for analysis (privatization restores injectivity), but the "
    "pipeline transformation still rejects it")

FUSE_NO_LOOP_DIMS = register_rule(
    "RPA060", "fuse-no-loop-dimensions", I,
    "a zero-dimensional statement has no block to slice; it runs once "
    "through the interpreter")
FUSE_UNSUPPORTED_OP = register_rule(
    "RPA061", "fuse-unsupported-operator", W,
    "only plain and compound assignments lower to slice form")
FUSE_NO_SLICE_FORM = register_rule(
    "RPA062", "fuse-no-slice-form", W,
    "a coupled, non-affine, or otherwise unsupported subscript has no "
    "strided-slice equivalent")
FUSE_NON_POSITIVE_STRIDE = register_rule(
    "RPA063", "fuse-non-positive-stride", W,
    "NumPy basic slices require positive strides; reversed accesses run "
    "through the interpreter or vectorized gather path")
FUSE_DIAGONAL_ACCESS = register_rule(
    "RPA064", "fuse-diagonal-access", W,
    "one loop variable driving two dimensions of an access selects a "
    "diagonal, which has no slice form")
FUSE_NON_INJECTIVE_WRITE = register_rule(
    "RPA065", "fuse-non-injective-write", W,
    "a write not using every loop variable collides under whole-block "
    "scatter; per-iteration order is the only safe semantics")
FUSE_FLOW_SELF_DEPENDENCE = register_rule(
    "RPA066", "fuse-flow-self-dependence", W,
    "a recurrence must observe values written earlier in the same "
    "block; gather-before-scatter whole-block execution would not "
    "(shared Presburger check with the vectorization gate)")
FUSE_NON_ELEMENTWISE_CALL = register_rule(
    "RPA067", "fuse-non-elementwise-call", W,
    "an opaque function not marked elementwise cannot be assumed to map "
    "over array slices")

del E, W, I


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding."""

    rule: Rule
    message: str
    span: Span | None = None
    hints: tuple[str, ...] = ()
    #: override of the rule's default severity (packing checks downgrade
    #: advisory findings, validation keeps rule defaults)
    severity_override: Severity | None = field(default=None, compare=False)

    @property
    def code(self) -> str:
        return self.rule.code

    @property
    def severity(self) -> Severity:
        return self.severity_override or self.rule.severity

    def render(self) -> str:
        loc = f"{self.span}: " if self.span else ""
        text = f"{loc}{self.severity.value}: {self.message} [{self.code}]"
        for hint in self.hints:
            text += f"\n    hint: {hint}"
        return text

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class DiagnosticReport:
    """An ordered collection of diagnostics."""

    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self._by(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self._by(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self._by(Severity.INFO)

    def _by(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def merged(self, other: "DiagnosticReport") -> "DiagnosticReport":
        return DiagnosticReport(self.diagnostics + other.diagnostics)

    def sorted(self) -> "DiagnosticReport":
        def key(d: Diagnostic):
            s = d.span or Span()
            return (
                s.file or "",
                s.line or 0,
                s.column or 0,
                -d.severity.rank,
                d.code,
            )

        return DiagnosticReport(tuple(sorted(self.diagnostics, key=key)))

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __str__(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)


class Collector:
    """Mutable builder for a :class:`DiagnosticReport`."""

    def __init__(self, file: str | None = None):
        self.file = file
        self._items: list[Diagnostic] = []

    def add(
        self,
        rule_: Rule,
        message: str,
        location: SourceLocation | None = None,
        span: Span | None = None,
        hints: tuple[str, ...] = (),
        severity: Severity | None = None,
    ) -> Diagnostic:
        if span is None:
            span = Span.of(location, self.file)
        diag = Diagnostic(rule_, message, span, hints, severity)
        self._items.append(diag)
        return diag

    def extend(self, diags) -> None:
        self._items.extend(diags)

    def report(self) -> DiagnosticReport:
        return DiagnosticReport(tuple(self._items))
