"""The DSL linter: AST-level checks of the paper's assumptions.

Runs before SCoP extraction, so every finding carries the token location
of the offending construct.  Each rule maps to the paper precondition it
guards (see the rule table in :mod:`repro.analysis.diagnostics`):

* ``RPA020`` non-affine subscripts (Polly's SCoP rule, Section 4);
* ``RPA021`` dead writes — an array written but never read;
* ``RPA022`` write-after-write over-writes that break the injective-write
  precondition (a write subscript missing an enclosing loop variable);
* ``RPA023`` arrays only ever accessed at constant subscripts;
* ``RPA024`` unused structure parameters;
* ``RPA025`` shadowed induction variables.

The linter is purely syntactic; the exact (instance-level) forms of the
same checks run in :func:`repro.scop.validate.validate_scop` after
extraction.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..lang.ast import (
    ArrayAccess,
    Assign,
    BinOp,
    Call,
    Expr,
    IntLit,
    Loop,
    Program,
    VarRef,
    expr_reads,
    walk_expr,
)
from . import diagnostics as D
from .diagnostics import Collector, DiagnosticReport


def lint_program(
    program: Program,
    params: Mapping[str, int] | None = None,
    file: str | None = None,
) -> DiagnosticReport:
    """Run every lint rule over a parsed kernel program."""
    out = Collector(file)
    for nest in program.nests:
        _lint_loop(nest, [], dict(params or {}), out)
    _lint_array_usage(program, out)
    if params:
        _lint_unused_parameters(program, dict(params), out)
    return out.report().sorted()


# ----------------------------------------------------------------------
# per-statement / per-loop rules
# ----------------------------------------------------------------------
def _lint_loop(
    loop: Loop,
    enclosing: list[str],
    params: dict[str, int],
    out: Collector,
) -> None:
    if loop.var in enclosing:
        out.add(
            D.SHADOWED_INDUCTION,
            f"loop variable {loop.var!r} shadows an outer loop variable",
            loop.location,
            hints=(f"rename the inner loop variable {loop.var!r}",),
        )
    if loop.var in params:
        out.add(
            D.SHADOWED_INDUCTION,
            f"loop variable {loop.var!r} shadows the structure parameter "
            f"{loop.var!r}",
            loop.location,
            hints=("rename the loop variable or the parameter",),
        )
    loop_vars = set(enclosing)  # bounds may use outer variables only
    for bound in (loop.lower, loop.upper):
        _check_affine(bound, loop_vars, "loop bound", out)
    inner = enclosing + [loop.var]
    for item in loop.body:
        if isinstance(item, Loop):
            _lint_loop(item, inner, params, out)
        else:
            _lint_statement(item, inner, out)


def _lint_statement(
    stmt: Assign, enclosing: list[str], out: Collector
) -> None:
    loop_vars = set(enclosing)
    target_ok = all(
        _check_affine(ix, loop_vars, f"subscript of {stmt.target.array!r}", out)
        for ix in stmt.target.indices
    )
    for acc in expr_reads(stmt.value):
        for ix in acc.indices:
            _check_affine(ix, loop_vars, f"subscript of {acc.array!r}", out)

    # RPA022: an affine write whose subscripts ignore an enclosing loop
    # variable over-writes the same cells on every iteration of that loop.
    if target_ok and enclosing:
        used = set()
        for ix in stmt.target.indices:
            used |= {
                e.name
                for e in walk_expr(ix)
                if isinstance(e, VarRef) and e.name in loop_vars
            }
        missing = [v for v in enclosing if v not in used]
        if missing:
            # a proven associative accumulation over-writes by design;
            # privatization restores injectivity (pattern portfolio)
            from .portfolio.reduction import reduction_update_spec

            spec = reduction_update_spec(stmt)
            if spec is not None:
                out.add(
                    D.REDUCTION_ACCUMULATOR_WRITE,
                    f"statement {stmt.label}: write to "
                    f"{stmt.target.array!r} never uses loop variable(s) "
                    f"{', '.join(repr(v) for v in missing)}, but the "
                    f"statement is a {spec.group.value} reduction — "
                    "privatizing the accumulator makes the over-write "
                    "benign",
                    stmt.target.location or stmt.location,
                    hints=(
                        "run `repro analyze --portfolio` for the "
                        "privatization proof",
                    ),
                )
                return
            out.add(
                D.OVERWRITING_WRITE,
                f"statement {stmt.label}: write to "
                f"{stmt.target.array!r} never uses loop variable(s) "
                f"{', '.join(repr(v) for v in missing)} — each of their "
                "iterations over-writes the same cells",
                stmt.target.location or stmt.location,
                hints=(
                    "make the write subscripts injective (use every "
                    "enclosing loop variable), or hoist the statement out "
                    f"of the {missing[0]!r} loop",
                ),
            )


def _check_affine(
    expr: Expr, loop_vars: set[str], what: str, out: Collector
) -> bool:
    """Flag the first non-affine construct in ``expr``; True when clean."""
    offender = _affine_offender(expr, loop_vars)
    if offender is None:
        return True
    node, reason = offender
    out.add(
        D.NON_AFFINE_SUBSCRIPT,
        f"non-affine {what}: {reason}",
        getattr(node, "location", None),
        hints=(
            "only sums of loop variables with constant coefficients are "
            "analyzable (Polly's affine-subscript rule)",
        ),
    )
    return False


def _affine_offender(
    expr: Expr, loop_vars: set[str]
) -> tuple[Expr, str] | None:
    """First sub-expression making ``expr`` non-affine, with a reason.

    Names outside ``loop_vars`` are structure parameters, i.e. constants.
    """
    if isinstance(expr, (IntLit, VarRef)):
        return None
    if isinstance(expr, ArrayAccess):
        return expr, f"array access {expr.array}[...] inside an index"
    if isinstance(expr, Call):
        return expr, f"call to {expr.func}() inside an index"
    if isinstance(expr, BinOp):
        for side in (expr.lhs, expr.rhs):
            found = _affine_offender(side, loop_vars)
            if found is not None:
                return found
        lhs_var = _uses_loop_var(expr.lhs, loop_vars)
        rhs_var = _uses_loop_var(expr.rhs, loop_vars)
        if expr.op == "*" and lhs_var and rhs_var:
            return expr, f"product of loop variables ({expr})"
        if expr.op in ("/", "%") and (lhs_var or rhs_var):
            return expr, f"{expr.op!r} applied to a loop variable ({expr})"
        return None
    return expr, f"unsupported expression {expr}"


def _uses_loop_var(expr: Expr, loop_vars: set[str]) -> bool:
    return any(
        isinstance(e, VarRef) and e.name in loop_vars for e in walk_expr(expr)
    )


# ----------------------------------------------------------------------
# whole-program rules
# ----------------------------------------------------------------------
def _statements_with_context(
    program: Program,
) -> Iterator[Assign]:
    for nest in program.nests:
        yield from nest.statements()


def _lint_array_usage(program: Program, out: Collector) -> None:
    written: dict[str, Assign] = {}
    read: set[str] = set()
    accesses: dict[str, list[ArrayAccess]] = {}
    for stmt in _statements_with_context(program):
        written.setdefault(stmt.target.array, stmt)
        accesses.setdefault(stmt.target.array, []).append(stmt.target)
        if stmt.op != "=":  # compound assignments read their target
            read.add(stmt.target.array)
        for acc in expr_reads(stmt.value):
            read.add(acc.array)
            accesses.setdefault(acc.array, []).append(acc)

    for array, stmt in sorted(written.items()):
        if array not in read:
            out.add(
                D.DEAD_WRITE,
                f"array {array!r} is written (first by statement "
                f"{stmt.label}) but never read",
                stmt.target.location or stmt.location,
                hints=(
                    f"if {array!r} is the kernel output this is fine; "
                    "otherwise the whole nest is dead code",
                ),
            )

    for array, accs in sorted(accesses.items()):
        if all(
            all(isinstance(ix, IntLit) for ix in acc.indices) for acc in accs
        ):
            out.add(
                D.UNUSED_ARRAY,
                f"array {array!r} is only ever accessed at constant "
                "subscripts — a scalar in disguise",
                accs[0].location,
                hints=(
                    "index the array with loop variables, or fold the "
                    "value into a parameter",
                ),
            )


def _lint_unused_parameters(
    program: Program, params: dict[str, int], out: Collector
) -> None:
    mentioned: set[str] = set()
    for nest in program.nests:
        for loop in _walk_loops(nest):
            for bound in (loop.lower, loop.upper):
                mentioned |= _names(bound)
    for stmt in _statements_with_context(program):
        for ix in stmt.target.indices:
            mentioned |= _names(ix)
        mentioned |= _names(stmt.value)
    for name in sorted(set(params) - mentioned):
        out.add(
            D.UNUSED_PARAMETER,
            f"parameter {name}={params[name]} is never referenced by the "
            "kernel",
            hints=(f"drop --param {name}=... or use it in a bound",),
        )


def _walk_loops(loop: Loop) -> Iterator[Loop]:
    yield loop
    for item in loop.body:
        if isinstance(item, Loop):
            yield from _walk_loops(item)


def _names(expr: Expr) -> set[str]:
    return {e.name for e in walk_expr(expr) if isinstance(e, VarRef)}
