"""Unified static-analysis subsystem.

The package bundles four analyses behind one diagnostics engine
(:mod:`~repro.analysis.diagnostics`, stable ``RPA0xx`` rule codes):

* :mod:`~repro.analysis.lint` — AST-level DSL linting;
* :mod:`~repro.analysis.explain` — pipelinability classification of
  consecutive nest pairs with dependence blaming;
* :mod:`~repro.analysis.taskcheck` — depend-slot packing, token-chain
  dependence coverage and adversarial race checks on task graphs;
* :mod:`~repro.analysis.portfolio` — the pattern portfolio: reduction /
  do-all / geometric-decomposition detection with machine-checked
  privatization proofs (``repro analyze --portfolio``);
* :mod:`~repro.analysis.engine` — the driver running the whole stack
  (``repro lint`` / ``repro analyze``).

Renderers for text, JSON and SARIF live in
:mod:`~repro.analysis.render`; rule codes and output schemas are
documented in ``docs/analysis.md``.

Only the lang-level pieces (diagnostics, render, lint) are imported
eagerly; ``explain``/``taskcheck``/``engine`` pull in the scop/pipeline/
schedule layers — which themselves report through this package — so they
are exposed lazily (PEP 562) to keep the import graph acyclic.
"""

from __future__ import annotations

from .diagnostics import (
    Collector,
    Diagnostic,
    DiagnosticReport,
    Rule,
    Severity,
    Span,
    all_rules,
)
from .lint import lint_program
from .render import render_json, render_sarif, render_text

_LAZY = {
    "analyze_kernel": ("engine", "analyze_kernel"),
    "AnalysisResult": ("engine", "AnalysisResult"),
    "classify_nest_pairs": ("explain", "classify_nest_pairs"),
    "explain_to_diagnostics": ("explain", "explain_to_diagnostics"),
    "PairClass": ("explain", "PairClass"),
    "PairExplanation": ("explain", "PairExplanation"),
    "DependenceBlame": ("explain", "DependenceBlame"),
    "check_task_graph": ("taskcheck", "check_task_graph"),
    "check_packing": ("taskcheck", "check_packing"),
    "check_token_coverage": ("taskcheck", "check_token_coverage"),
    "check_races": ("taskcheck", "check_races"),
    "run_portfolio": ("portfolio", "run_portfolio"),
    "portfolio_to_diagnostics": ("portfolio", "portfolio_to_diagnostics"),
    "PortfolioReport": ("portfolio", "PortfolioReport"),
    "find_reduction_specs": ("portfolio", "find_reduction_specs"),
    "ReductionSpec": ("portfolio", "ReductionSpec"),
    "PrivatizationProof": ("portfolio", "PrivatizationProof"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


__all__ = [
    "AnalysisResult",
    "Collector",
    "Diagnostic",
    "DiagnosticReport",
    "DependenceBlame",
    "PairClass",
    "PairExplanation",
    "PortfolioReport",
    "PrivatizationProof",
    "ReductionSpec",
    "Rule",
    "Severity",
    "Span",
    "all_rules",
    "analyze_kernel",
    "check_packing",
    "check_races",
    "check_task_graph",
    "check_token_coverage",
    "classify_nest_pairs",
    "explain_to_diagnostics",
    "find_reduction_specs",
    "lint_program",
    "portfolio_to_diagnostics",
    "run_portfolio",
    "render_json",
    "render_sarif",
    "render_text",
]
