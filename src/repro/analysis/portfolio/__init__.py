"""Pattern-portfolio analysis: reductions, do-all, geometric decomposition.

The portfolio is a static-analysis pass suite over the SCoP and
dependence layer that reports *all* provable patterns, not just the
pipeline the transformation targets:

* :mod:`.reduction` — AST-level recognition of associative, commutative
  accumulations (``+=``, ``*=``, min/max idioms, and their expanded
  forms);
* :mod:`.partition` — Presburger partition of each dependence relation
  into reduction-carried pairs (relaxable by privatization) and true
  pairs;
* :mod:`.privatize` — machine-checkable privatization legality proof
  objects, re-verified by :func:`repro.schedule.legality.verify_privatization`;
* :mod:`.patterns` — nest-level do-all / reduction /
  geometric-decomposition classification;
* :mod:`.analyze` — the driver (:func:`run_portfolio`) plus the
  ``RPA05x`` diagnostics bridge.
"""

from .analyze import (
    PairPortfolio,
    PortfolioReport,
    portfolio_to_diagnostics,
    run_portfolio,
)
from .partition import (
    DependencePartition,
    PairKey,
    compatible_specs,
    induced_relations,
    partition_dependences,
    partition_pair,
)
from .patterns import (
    GEOMETRIC_MAX_DISTANCES,
    GEOMETRIC_MAX_RADIUS,
    NestPattern,
    NestPatternReport,
    detect_nest_patterns,
)
from .privatize import (
    PrivatizationProof,
    ReductionClaim,
    RemovedDependence,
    build_pair_proof,
)
from .reduction import (
    ReductionGroup,
    ReductionSpec,
    accumulator_like,
    find_reduction_specs,
    reduction_update_spec,
)

__all__ = [
    "DependencePartition",
    "GEOMETRIC_MAX_DISTANCES",
    "GEOMETRIC_MAX_RADIUS",
    "NestPattern",
    "NestPatternReport",
    "PairKey",
    "PairPortfolio",
    "PortfolioReport",
    "PrivatizationProof",
    "ReductionClaim",
    "ReductionGroup",
    "ReductionSpec",
    "RemovedDependence",
    "accumulator_like",
    "build_pair_proof",
    "compatible_specs",
    "detect_nest_patterns",
    "find_reduction_specs",
    "induced_relations",
    "partition_dependences",
    "partition_pair",
    "portfolio_to_diagnostics",
    "reduction_update_spec",
    "run_portfolio",
]
