"""AST-level recognition of associative accumulation statements.

A *reduction update* is a statement whose only interaction with its
target array is a read-modify-write of the written cell through an
associative, commutative operator — the shape privatization and
reassociation legally reorder (Doerfert et al., "Polly's Polyhedral
Scheduling in the Presence of Reductions"):

* compound assignments ``T[..] += e`` / ``T[..] -= e`` (the sum group:
  any interleaving of additions and subtractions of independent terms
  commutes) and ``T[..] *= e`` (the product group);
* the explicit idioms ``T[..] = T[..] + e``, ``T[..] = e + T[..]``,
  ``T[..] = T[..] - e``, ``T[..] = T[..] * e``, ``T[..] = e * T[..]``;
* the min/max idioms ``T[..] = min(T[..], e)`` / ``T[..] = max(T[..], e)``
  (the DSL convention: functions named exactly ``min``/``max`` are the
  arithmetic minimum/maximum, see ``repro.interp.DEFAULT_FUNCS``).

``T[..] = e - T[..]`` is **not** a reduction: ``x -> b - x`` updates do
not commute (applying ``b1`` then ``b2`` yields ``b2 - b1 + x``, the
other order ``b1 - b2 + x``).  Neither are ``/=`` and ``%=``.

In every accepted form the update expression ``e`` must not read the
target array at all — a second read of the accumulator makes the update
a general recurrence, not a fold.

This module is purely syntactic (it only imports the language AST), so
both the linter and the SCoP-level portfolio passes can use it; the
instance-level consequences (which dependences the reduction carries)
live in :mod:`repro.analysis.portfolio.partition`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ...lang.ast import Assign, ArrayAccess, BinOp, Call, Expr, expr_reads


class ReductionGroup(enum.Enum):
    """The algebraic family of an accumulation operator.

    Updates of the *same* group on the *same* accumulator commute with
    each other; updates of different groups do not (``(x + a) * b`` is
    not ``x * b + a``), so only same-group dependences may be relaxed.
    """

    SUM = "sum"  # += , -= , = T + e , = e + T , = T - e
    PRODUCT = "product"  # *= , = T * e , = e * T
    MIN = "min"  # = min(T, e)
    MAX = "max"  # = max(T, e)


@dataclass(frozen=True)
class ReductionSpec:
    """One statement recognized as an associative accumulation."""

    statement: str
    #: the accumulator array (the statement's write target)
    array: str
    group: ReductionGroup
    #: the concrete operator spelled in the source (``+=``, ``min(...)``)
    operator: str

    def describe(self) -> str:
        return (
            f"{self.statement}: associative {self.group.value} reduction "
            f"over {self.array!r} ({self.operator})"
        )


#: Compound assignment operators that are associative accumulations.
_COMPOUND_GROUPS = {
    "+=": ReductionGroup.SUM,
    "-=": ReductionGroup.SUM,
    "*=": ReductionGroup.PRODUCT,
}

#: Call idioms recognized as folds (DSL convention, see module docstring).
_CALL_GROUPS = {
    "min": ReductionGroup.MIN,
    "max": ReductionGroup.MAX,
}


def reduction_update_spec(assign: Assign) -> ReductionSpec | None:
    """Match one statement against the reduction-update shapes.

    Returns ``None`` when the statement is not an associative
    accumulation — including the near-misses (``T = e - T``, an update
    expression reading the accumulator, ``/=``) that motivate the
    mutation tests.
    """
    target = assign.target
    array = target.array

    if assign.op != "=":
        group = _COMPOUND_GROUPS.get(assign.op)
        if group is None:
            return None  # /= , %= : not associative
        if _reads_array(assign.value, array):
            return None  # e.g. T[i] += T[i-1]: a recurrence, not a fold
        return ReductionSpec(assign.label, array, group, assign.op)

    value = assign.value
    if isinstance(value, BinOp) and value.op in ("+", "-", "*"):
        lhs_is_self = _is_same_access(value.lhs, target)
        rhs_is_self = _is_same_access(value.rhs, target)
        if lhs_is_self == rhs_is_self:
            # neither side is the target (plain assignment) or both are
            # (T = T + T doubles — not an accumulation of new terms)
            return None
        if value.op == "-" and rhs_is_self:
            return None  # T = e - T : updates do not commute
        other = value.rhs if lhs_is_self else value.lhs
        if _reads_array(other, array):
            return None
        group = (
            ReductionGroup.PRODUCT if value.op == "*" else ReductionGroup.SUM
        )
        return ReductionSpec(
            assign.label, array, group, f"= T {value.op} e"
        )

    if isinstance(value, Call) and value.func in _CALL_GROUPS:
        if len(value.args) != 2:
            return None
        self_args = [_is_same_access(a, target) for a in value.args]
        if sum(self_args) != 1:
            return None
        other = value.args[1] if self_args[0] else value.args[0]
        if _reads_array(other, array):
            return None
        return ReductionSpec(
            assign.label,
            array,
            _CALL_GROUPS[value.func],
            f"= {value.func}(T, e)",
        )

    return None


def find_reduction_specs(program_or_statements) -> dict[str, ReductionSpec]:
    """Specs for every reduction statement, keyed by statement label.

    Accepts a :class:`~repro.lang.ast.Program` or any iterable of
    :class:`~repro.lang.ast.Assign`.
    """
    statements = (
        program_or_statements.statements()
        if hasattr(program_or_statements, "statements")
        else program_or_statements
    )
    out: dict[str, ReductionSpec] = {}
    for stmt in statements:
        spec = reduction_update_spec(stmt)
        if spec is not None:
            out[stmt.label] = spec
    return out


def accumulator_like(assign: Assign) -> bool:
    """True when the statement *touches* its target like an accumulator.

    Matches both genuine reductions and the near-misses (``T = e - T``,
    ``/=``): any statement whose update reads its own written cell.
    Used to explain *why* a rejected update is not relaxable.
    """
    if assign.op != "=":
        return True
    return any(
        _is_same_access(e, assign.target) for e in expr_reads(assign.value)
    )


# ----------------------------------------------------------------------
def _is_same_access(expr: Expr, target: ArrayAccess) -> bool:
    """Structural equality against the write access (same array, same
    subscript expressions — locations are excluded from AST equality)."""
    return (
        isinstance(expr, ArrayAccess)
        and expr.array == target.array
        and expr.indices == target.indices
    )


def _reads_array(expr: Expr, array: str) -> bool:
    return any(acc.array == array for acc in expr_reads(expr))
