"""Privatization legality proof objects.

A :class:`PrivatizationProof` is the *evidence* that a set of dependence
pairs may be dropped from the schedule: each relaxed pair connects two
associative accumulations of the same group over the same array, and is
induced by that array alone.  Privatizing the accumulator (one private
copy per task, combined with the group's operator at the join) then
yields the same final value for any execution order of the relaxed
instances, because the updates commute.

The proof is *checkable*, not trusted: every claim it makes — the
statements are syntactic reductions, the removed pairs are actual
dependences, none of them also orders non-accumulator memory — is
re-derived from the SCoP by
:func:`repro.schedule.legality.verify_privatization`, which shares only
the AST-level spec matcher with the detector and recomputes all
relations from first principles.  Downstream consumers must call the
verifier before acting on a proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...presburger import PointRelation
from ...scop import DepKind
from .partition import DependencePartition, PairKey
from .reduction import ReductionSpec


@dataclass(frozen=True)
class ReductionClaim:
    """One statement the proof asserts to be an associative accumulation."""

    statement: str
    array: str
    group: str  # ReductionGroup value ("sum", "product", "min", "max")
    operator: str

    @staticmethod
    def of(spec: ReductionSpec) -> "ReductionClaim":
        return ReductionClaim(
            spec.statement, spec.array, spec.group.value, spec.operator
        )

    def describe(self) -> str:
        return (
            f"{self.statement}: {self.group} reduction over "
            f"{self.array!r} ({self.operator})"
        )


@dataclass(frozen=True)
class RemovedDependence:
    """One dependence relation the proof relaxes, with its instance pairs."""

    source: str
    target: str
    kind: DepKind
    pairs: PointRelation

    @property
    def key(self) -> PairKey:
        return (self.source, self.target, self.kind)

    def describe(self) -> str:
        return (
            f"{self.kind.value} {self.source} -> {self.target} "
            f"({len(self.pairs)} instance pairs)"
        )

    def to_dict(self) -> dict:
        """Replayable JSON form including every relaxed instance pair.

        ``in_part`` of a dependence relation is the *target* instance,
        ``out_part`` the *source* — serialized under explicit keys so a
        replayed proof cannot silently flip orientation.
        """
        return {
            "source": self.source,
            "target": self.target,
            "kind": self.kind.value,
            "pairs": len(self.pairs),
            "dims": [self.pairs.n_in, self.pairs.n_out],
            "instance_pairs": [
                {
                    "target": [int(v) for v in self.pairs.in_part[k]],
                    "source": [int(v) for v in self.pairs.out_part[k]],
                }
                for k in range(len(self.pairs))
            ],
        }

    @staticmethod
    def from_dict(d: dict) -> "RemovedDependence":
        import numpy as np

        n_in, n_out = (int(v) for v in d["dims"])
        rows = d.get("instance_pairs", [])
        targets = np.array(
            [p["target"] for p in rows], dtype=np.int64
        ).reshape(len(rows), n_in)
        sources = np.array(
            [p["source"] for p in rows], dtype=np.int64
        ).reshape(len(rows), n_out)
        return RemovedDependence(
            d["source"],
            d["target"],
            DepKind(d["kind"]),
            PointRelation.from_arrays(targets, sources),
        )


@dataclass(frozen=True)
class PrivatizationProof:
    """Machine-checkable evidence that relaxing ``removed`` is legal."""

    claims: tuple[ReductionClaim, ...]
    removed: tuple[RemovedDependence, ...]

    @property
    def arrays(self) -> tuple[str, ...]:
        return tuple(sorted({c.array for c in self.claims}))

    @property
    def removed_pairs(self) -> int:
        return sum(len(r.pairs) for r in self.removed)

    def relaxed_map(self) -> dict[PairKey, PointRelation]:
        """The removed relations keyed for ``check_legality(relaxed=...)``."""
        return {r.key: r.pairs for r in self.removed}

    def describe(self) -> str:
        arrays = ", ".join(repr(a) for a in self.arrays)
        return (
            f"privatize {arrays}: removes {self.removed_pairs} dependence "
            f"pair(s) across {len(self.removed)} relation(s), "
            f"{len(self.claims)} accumulation statement(s)"
        )

    def to_dict(self) -> dict:
        """Replayable JSON form: ``from_dict(to_dict())`` round-trips.

        The ``removed`` entries carry the full proof → relaxed-dependence
        mapping (every instance pair), so a serialized portfolio report
        (``repro analyze --portfolio``, ``tools/portfolio_report.py``) is
        a complete input to ``repro run --privatize`` replay — after
        mandatory re-verification by
        :func:`repro.schedule.legality.verify_privatization`.
        """
        return {
            "arrays": list(self.arrays),
            "claims": [
                {
                    "statement": c.statement,
                    "array": c.array,
                    "group": c.group,
                    "operator": c.operator,
                }
                for c in self.claims
            ],
            "removed": [r.to_dict() for r in self.removed],
        }

    @staticmethod
    def from_dict(d: dict) -> "PrivatizationProof":
        """Rebuild a proof from its JSON form (still untrusted: verify!)."""
        return PrivatizationProof(
            claims=tuple(
                ReductionClaim(
                    c["statement"], c["array"], c["group"], c["operator"]
                )
                for c in d["claims"]
            ),
            removed=tuple(
                RemovedDependence.from_dict(r) for r in d["removed"]
            ),
        )


def build_pair_proof(
    specs: dict[str, ReductionSpec],
    cross_parts: list[DependencePartition],
) -> PrivatizationProof | None:
    """Proof relaxing every dependence of one nest pair, if sound.

    ``cross_parts`` are the partitions of all cross-nest statement pairs.
    Returns ``None`` unless every one of them is *fully* reduction-
    carried — a single residual pair means the nests stay ordered and
    privatization buys nothing for this pair.
    """
    removed: list[RemovedDependence] = []
    involved: set[str] = set()
    for part in cross_parts:
        if part.full.is_empty():
            continue
        if not part.residual.is_empty():
            return None
        removed.append(
            RemovedDependence(
                part.source, part.target, part.kind, part.reduction_carried
            )
        )
        involved.update((part.source, part.target))
    if not removed:
        return None  # no dependence at all: the pair is already do-all
    claims = tuple(
        ReductionClaim.of(specs[name]) for name in sorted(involved)
    )
    return PrivatizationProof(claims, tuple(removed))
