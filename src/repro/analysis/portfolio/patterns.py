"""Nest-level pattern detectors: do-all, reduction, geometric decomposition.

These reuse the dependence evidence the partition pass already computed —
no pattern is claimed without the relations backing it:

* **do-all** — the nest carries no dependence at all; every iteration is
  independent.
* **reduction** — every carried dependence is reduction-carried, so the
  nest parallelizes once its accumulators are privatized.
* **geometric-decomposition** — every *true* (non-relaxable) dependence
  has a short constant distance vector, the uniform-dependence shape that
  block decomposition with halo exchange handles: partition the
  iteration space into contiguous blocks and only block boundaries
  communicate.
* **irregular** — anything else (long-range or non-uniform distances).

The geometric thresholds are conservative: at most
:data:`GEOMETRIC_MAX_DISTANCES` distinct distance vectors, each
component at most :data:`GEOMETRIC_MAX_RADIUS` in magnitude.  A reversal
like ``A[N-1-i]`` produces O(N) distinct distances and is rejected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ...scop import Scop, ScopStatement
from ...scop.deps import parallel_levels
from .partition import DependencePartition, PairKey
from .reduction import ReductionSpec

#: distinct dependence distance vectors a geometric nest may have
GEOMETRIC_MAX_DISTANCES = 8
#: largest |component| of a geometric dependence distance
GEOMETRIC_MAX_RADIUS = 4


class NestPattern(enum.Enum):
    DO_ALL = "do-all"
    REDUCTION = "reduction"
    GEOMETRIC = "geometric-decomposition"
    IRREGULAR = "irregular"


@dataclass(frozen=True)
class NestPatternReport:
    """Pattern classification of one loop nest, with its evidence."""

    nest_index: int
    pattern: NestPattern
    statements: tuple[str, ...]
    #: dependence-free loop levels (Polly-style per-level parallelism)
    parallel_levels: tuple[int, ...]
    #: instance pairs carried inside the nest / relaxable part of them
    carried_pairs: int
    reduction_carried_pairs: int
    #: distinct dependence distance vectors of the true dependences
    #: (only populated when they are all constant and short)
    distances: tuple[tuple[int, ...], ...]
    reasons: tuple[str, ...]

    def describe(self) -> str:
        return f"nest {self.nest_index}: {self.pattern.value}"

    def to_dict(self) -> dict:
        return {
            "nest": self.nest_index,
            "pattern": self.pattern.value,
            "statements": list(self.statements),
            "parallel_levels": list(self.parallel_levels),
            "carried_pairs": self.carried_pairs,
            "reduction_carried_pairs": self.reduction_carried_pairs,
            "distances": [list(d) for d in self.distances],
            "reasons": list(self.reasons),
        }


def detect_nest_patterns(
    scop: Scop,
    specs: dict[str, ReductionSpec],
    partitions: dict[PairKey, DependencePartition],
) -> tuple[NestPatternReport, ...]:
    """Classify every loop nest of the SCoP."""
    nests: dict[int, list[ScopStatement]] = {}
    for stmt in scop.statements:
        nests.setdefault(stmt.nest_index, []).append(stmt)
    return tuple(
        _classify_nest(scop, index, stmts, specs, partitions)
        for index, stmts in sorted(nests.items())
    )


def _classify_nest(
    scop: Scop,
    nest_index: int,
    stmts: list[ScopStatement],
    specs: dict[str, ReductionSpec],
    partitions: dict[PairKey, DependencePartition],
) -> NestPatternReport:
    names = {s.name for s in stmts}
    parts = [
        p
        for p in partitions.values()
        if p.source in names and p.target in names
    ]
    carried = sum(len(p.full) for p in parts)
    relaxable = sum(len(p.reduction_carried) for p in parts)
    levels = tuple(parallel_levels(scop, nest_index))
    ordered_names = tuple(s.name for s in stmts)

    if carried == 0:
        return NestPatternReport(
            nest_index, NestPattern.DO_ALL, ordered_names, levels, 0, 0, (),
            ("no intra-nest dependence; every iteration is independent",),
        )

    if all(p.residual.is_empty() for p in parts):
        accs = sorted({specs[n].array for n in names if n in specs})
        return NestPatternReport(
            nest_index, NestPattern.REDUCTION, ordered_names, levels,
            carried, relaxable, (),
            (
                f"all {carried} carried pair(s) are reduction-carried; "
                f"privatizing {', '.join(repr(a) for a in accs)} makes "
                "the nest do-all",
            ),
        )

    distances = _uniform_distances(stmts, parts)
    if distances is not None:
        return NestPatternReport(
            nest_index, NestPattern.GEOMETRIC, ordered_names, levels,
            carried, relaxable, distances,
            (
                f"every true dependence has a constant distance vector "
                f"({len(distances)} distinct, max radius "
                f"{max(abs(c) for d in distances for c in d)}); block "
                "decomposition with halo exchange applies",
            ),
        )

    return NestPatternReport(
        nest_index, NestPattern.IRREGULAR, ordered_names, levels,
        carried, relaxable, (),
        (
            "true dependences have non-uniform or long-range distances; "
            "no portfolio pattern applies",
        ),
    )


def _uniform_distances(
    stmts: list[ScopStatement],
    parts: list[DependencePartition],
) -> tuple[tuple[int, ...], ...] | None:
    """Distinct distance vectors of the true dependences, or ``None``.

    ``None`` when any residual relation connects statements of different
    depth (no common distance space) or the distances fail the
    short-constant criterion.
    """
    depth = {s.name: s.depth for s in stmts}
    seen: set[tuple[int, ...]] = set()
    for part in parts:
        if part.residual.is_empty():
            continue
        if depth[part.source] != depth[part.target]:
            return None
        # residual maps target iterations to source iterations; the
        # distance is target - source (how far ahead the consumer sits)
        deltas = part.residual.in_part - part.residual.out_part
        for row in np.unique(deltas, axis=0):
            seen.add(tuple(int(v) for v in row))
    if not seen or len(seen) > GEOMETRIC_MAX_DISTANCES:
        return None
    if any(abs(c) > GEOMETRIC_MAX_RADIUS for d in seen for c in d):
        return None
    return tuple(sorted(seen))
