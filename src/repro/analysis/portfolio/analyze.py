"""The portfolio driver: run every pattern detector, prove, re-verify.

:func:`run_portfolio` ties the pieces together over one SCoP:

1. match every statement against the reduction shapes (:mod:`.reduction`);
2. partition every dependence relation into reduction-carried vs true
   pairs with Presburger algebra (:mod:`.partition`);
3. classify every nest (do-all / reduction / geometric-decomposition /
   irregular, :mod:`.patterns`);
4. for every consecutive nest pair the explainer reports as blocked
   (``sequential`` / ``fusion-only``), try to build a privatization
   proof relaxing *all* of its cross-nest dependences (:mod:`.privatize`);
5. hand each proof to :func:`repro.schedule.legality.verify_privatization`
   — an independent checker that recomputes every claim — and only
   reclassify the pair to ``pipeline-after-privatization`` when the
   proof survives.  Detector output is never trusted unchecked.

Findings render through the standard diagnostics engine as the
``RPA05x`` family (:func:`portfolio_to_diagnostics`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...scop import Scop
from .. import diagnostics as D
from ..diagnostics import Collector, DiagnosticReport, Span
from ..explain import (
    PairClass,
    PairExplanation,
    _blame_accesses,
    classify_nest_pairs,
)
from .partition import (
    DependencePartition,
    PairKey,
    partition_dependences,
)
from .patterns import NestPatternReport, detect_nest_patterns
from .privatize import PrivatizationProof, build_pair_proof
from .reduction import ReductionSpec, find_reduction_specs

#: pair classes the portfolio tries to unlock
_BLOCKED = (PairClass.SEQUENTIAL, PairClass.FUSION_ONLY)


@dataclass(frozen=True)
class PairPortfolio:
    """One nest pair's original and portfolio-effective classification."""

    explanation: PairExplanation  # effective (reclassified when proven)
    original: PairClass
    proof: PrivatizationProof | None
    #: legality re-verification outcome (``None`` when no proof exists);
    #: a ``repro.schedule.legality.PrivatizationCheck``
    verification: Any

    @property
    def reclassified(self) -> bool:
        return self.explanation.classification is not self.original

    def to_dict(self) -> dict:
        out = self.explanation.to_dict()
        out["original_classification"] = self.original.value
        if self.proof is not None:
            out["privatization_proof"] = self.proof.to_dict()
            out["proof_verified"] = bool(
                self.verification is not None and self.verification.ok
            )
        return out


@dataclass(frozen=True)
class PortfolioReport:
    """Everything the pattern portfolio proved about one SCoP."""

    specs: dict[str, ReductionSpec]
    partitions: dict[PairKey, DependencePartition]
    nests: tuple[NestPatternReport, ...]
    pairs: tuple[PairPortfolio, ...]

    def explanations(self) -> tuple[PairExplanation, ...]:
        return tuple(p.explanation for p in self.pairs)

    def proofs(self) -> tuple[PrivatizationProof, ...]:
        return tuple(p.proof for p in self.pairs if p.proof is not None)

    def relaxed_map(self) -> dict[PairKey, Any]:
        """Verified relaxable dependences, ready for ``check_legality``.

        Only proofs that passed re-verification contribute — an
        unverified proof must never reach a scheduler.
        """
        out: dict[PairKey, Any] = {}
        for pair in self.pairs:
            if (
                pair.proof is not None
                and pair.verification is not None
                and pair.verification.ok
            ):
                out.update(pair.proof.relaxed_map())
        return out

    def reclassified_pairs(self) -> tuple[PairPortfolio, ...]:
        return tuple(p for p in self.pairs if p.reclassified)

    def to_dict(self) -> dict:
        return {
            "reductions": [
                {
                    "statement": s.statement,
                    "array": s.array,
                    "group": s.group.value,
                    "operator": s.operator,
                }
                for s in self.specs.values()
            ],
            "nests": [n.to_dict() for n in self.nests],
            "pairs": [p.to_dict() for p in self.pairs],
        }

    def format(self) -> str:
        lines = ["pattern portfolio:"]
        if self.specs:
            for spec in self.specs.values():
                lines.append(f"  {spec.describe()}")
        else:
            lines.append("  no reduction statements")
        for nest in self.nests:
            lines.append(f"  {nest.describe()}: {nest.reasons[0]}")
        for pair in self.pairs:
            exp = pair.explanation
            head = (
                f"  nests ({exp.source_nest}, {exp.target_nest}): "
                f"{pair.original.value}"
            )
            if pair.reclassified:
                head += (
                    f" -> {exp.classification.value} "
                    f"({pair.proof.describe()}; independently re-verified)"
                )
            lines.append(head)
        return "\n".join(lines)


def run_portfolio(
    scop: Scop,
    explanations: tuple[PairExplanation, ...] | None = None,
) -> PortfolioReport:
    """Run the full pattern portfolio over one SCoP."""
    from ...obs.spans import span

    with span("analysis.portfolio") as sp:
        specs = find_reduction_specs(s.assign for s in scop.statements)
        partitions = partition_dependences(scop, specs)
        nests = detect_nest_patterns(scop, specs, partitions)
        if explanations is None:
            explanations = classify_nest_pairs(scop)
        pairs = tuple(
            _portfolio_pair(scop, exp, specs, partitions)
            for exp in explanations
        )
        sp.set(
            reductions=len(specs),
            reclassified=sum(1 for p in pairs if p.reclassified),
        )
        return PortfolioReport(specs, partitions, nests, pairs)


def _portfolio_pair(
    scop: Scop,
    exp: PairExplanation,
    specs: dict[str, ReductionSpec],
    partitions: dict[PairKey, DependencePartition],
) -> PairPortfolio:
    if exp.classification not in _BLOCKED:
        return PairPortfolio(exp, exp.classification, None, None)

    sources = {
        s.name for s in scop.statements if s.nest_index == exp.source_nest
    }
    targets = {
        s.name for s in scop.statements if s.nest_index == exp.target_nest
    }
    cross = [
        part
        for part in partitions.values()
        if part.source in sources and part.target in targets
    ]
    proof = build_pair_proof(specs, cross)
    if proof is None:
        return PairPortfolio(exp, exp.classification, None, None)

    # Never trust the detector: the proof only counts once the legality
    # layer has re-derived every claim from the SCoP itself.
    from ...schedule.legality import verify_privatization

    check = verify_privatization(scop, proof)
    if not check.ok:
        return PairPortfolio(exp, exp.classification, proof, check)

    removed_blames = tuple(
        blame
        for rem in proof.removed
        for blame in _blame_accesses(
            scop,
            scop.statement(rem.source),
            scop.statement(rem.target),
            rem.kind,
            reason=(
                "reduction-carried; removed by privatizing "
                + ", ".join(repr(a) for a in proof.arrays)
            ),
        )
    )
    reclassified = PairExplanation(
        exp.source_nest,
        exp.target_nest,
        PairClass.PIPELINE_AFTER_PRIVATIZATION,
        exp.reasons
        + (
            f"every cross-nest dependence is reduction-carried; "
            f"{proof.describe()}",
        ),
        exp.blockers,
        exp.overlap,
        removed_by_privatization=removed_blames,
    )
    return PairPortfolio(reclassified, exp.classification, proof, check)


# ----------------------------------------------------------------------
def portfolio_to_diagnostics(
    scop: Scop,
    report: PortfolioReport,
    file: str | None = None,
) -> DiagnosticReport:
    """Render the portfolio findings as RPA050-RPA054 diagnostics."""
    out = Collector(file)
    location = {s.name: s.assign.location for s in scop.statements}

    for spec in report.specs.values():
        out.add(
            D.REDUCTION_DETECTED,
            spec.describe(),
            location=location.get(spec.statement),
            hints=(
                "privatization keeps one accumulator copy per task and "
                f"combines them with {spec.group.value} at the join",
            ),
        )

    for nest in report.nests:
        first = next(
            (location.get(n) for n in nest.statements if location.get(n)),
            None,
        )
        out.add(
            D.NEST_PATTERN,
            nest.describe() + "; " + "; ".join(nest.reasons),
            location=first,
        )

    for pair in report.pairs:
        exp = pair.explanation
        where = Span(file)
        if pair.reclassified:
            out.add(
                D.PRIVATIZATION_RECLASSIFIED,
                f"nests ({exp.source_nest}, {exp.target_nest}): "
                f"{pair.original.value} -> {exp.classification.value}; "
                f"{pair.proof.describe()}; proof independently re-verified "
                f"({pair.verification.checked_instance_pairs} instance "
                "pair(s) re-checked)",
                span=where,
                hints=tuple(
                    b.describe() for b in exp.removed_by_privatization
                ),
            )
        elif pair.proof is not None and not pair.verification.ok:
            out.add(
                D.PROOF_REJECTED,
                f"nests ({exp.source_nest}, {exp.target_nest}): "
                "privatization proof rejected by the legality checker: "
                + "; ".join(
                    f.reason for f in pair.verification.failures[:3]
                ),
                span=where,
            )
        elif pair.original in _BLOCKED:
            out.add(
                D.UNCOVERED_BY_PORTFOLIO,
                f"nests ({exp.source_nest}, {exp.target_nest}): "
                f"{pair.original.value}; no portfolio detector unlocks "
                "this pair (some cross-nest dependence is a true "
                "dependence)",
                span=where,
            )
    return out.report()
