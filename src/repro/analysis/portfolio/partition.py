"""Presburger partition of dependences into reduction-carried vs true.

A dependence pair between two statement instances is *reduction-carried*
when

1. both endpoint statements are associative accumulations over the same
   array with the same operator group (:mod:`.reduction`), and
2. the pair is induced by accesses to that accumulator array, and
3. the pair is **not** induced by an access pair on any other array.

Condition 3 is what keeps the partition sound by construction: when the
same instance pair also conflicts through other memory (the update
expression reading an array another statement writes, say), relaxing it
would reorder non-accumulator state, so it stays in the *residual* set.
The partition is computed with the explicit relational algebra — per
access-pair relations, union, and difference — so ``reduction_carried ∪
residual = full`` and the two parts are disjoint by construction.

Dependences touching any non-reduction statement are never relaxed: they
fail condition 1 and land wholly in the residual.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...presburger import PointRelation
from ...scop import DepKind, Scop, ScopStatement, dependence_relation
from ..explain import access_pair_relation
from .reduction import ReductionSpec

#: (source statement, target statement, dependence kind)
PairKey = tuple[str, str, DepKind]


@dataclass(frozen=True)
class DependencePartition:
    """One dependence relation split into relaxable and true parts."""

    source: str
    target: str
    kind: DepKind
    #: all execution-ordered dependence pairs (memory-based)
    full: PointRelation
    #: pairs induced solely through the shared accumulator — removable
    #: once the accumulator is privatized
    reduction_carried: PointRelation
    #: pairs any schedule must still preserve
    residual: PointRelation

    @property
    def key(self) -> PairKey:
        return (self.source, self.target, self.kind)

    @property
    def fully_relaxed(self) -> bool:
        """All pairs are reduction-carried (and there is at least one)."""
        return not self.full.is_empty() and self.residual.is_empty()

    def describe(self) -> str:
        return (
            f"{self.kind.value} {self.source} -> {self.target}: "
            f"{len(self.full)} pairs, {len(self.reduction_carried)} "
            f"reduction-carried, {len(self.residual)} true"
        )


def compatible_specs(
    sspec: ReductionSpec | None, tspec: ReductionSpec | None
) -> bool:
    """Updates of both statements commute with each other."""
    return (
        sspec is not None
        and tspec is not None
        and sspec.array == tspec.array
        and sspec.group is tspec.group
    )


def induced_relations(
    scop: Scop,
    src: ScopStatement,
    tgt: ScopStatement,
    kind: DepKind,
    array: str,
) -> tuple[PointRelation, PointRelation]:
    """Dependence pairs induced through ``array`` vs any other array.

    The union of the two results equals the full memory-based dependence
    relation of the pair (both sides enumerate the same access pairs the
    statement-level relations union over).
    """
    if kind is DepKind.FLOW:
        src_accs, tgt_accs = src.writes, tgt.reads
    elif kind is DepKind.ANTI:
        src_accs, tgt_accs = src.reads, tgt.writes
    else:
        src_accs, tgt_accs = src.writes, tgt.writes

    via = PointRelation.empty(tgt.depth, src.depth)
    others = PointRelation.empty(tgt.depth, src.depth)
    for sa in src_accs:
        for ta in tgt_accs:
            if sa.array != ta.array:
                continue
            rel = access_pair_relation(scop, src, sa, tgt, ta)
            if rel.is_empty():
                continue
            if sa.array == array:
                via = via.union(rel)
            else:
                others = others.union(rel)
    return via, others


def partition_pair(
    scop: Scop,
    src: ScopStatement,
    tgt: ScopStatement,
    kind: DepKind,
    specs: dict[str, ReductionSpec],
) -> DependencePartition:
    """Partition one statement pair's dependence relation."""
    full = dependence_relation(scop, src, tgt, kind)
    none = PointRelation.empty(full.n_in, full.n_out)
    sspec, tspec = specs.get(src.name), specs.get(tgt.name)
    if full.is_empty() or not compatible_specs(sspec, tspec):
        return DependencePartition(src.name, tgt.name, kind, full, none, full)
    via, others = induced_relations(scop, src, tgt, kind, sspec.array)
    carried = via.difference(others)
    return DependencePartition(
        src.name, tgt.name, kind, full, carried, full.difference(carried)
    )


def partition_dependences(
    scop: Scop, specs: dict[str, ReductionSpec]
) -> dict[PairKey, DependencePartition]:
    """All non-empty pairwise dependence partitions of the SCoP."""
    out: dict[PairKey, DependencePartition] = {}
    for src in scop.statements:
        for tgt in scop.statements:
            if tgt.position < src.position:
                continue
            for kind in DepKind:
                part = partition_pair(scop, src, tgt, kind, specs)
                if not part.full.is_empty():
                    out[part.key] = part
    return out
