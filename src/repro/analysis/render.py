"""Diagnostic renderers: plain text, JSON, and SARIF 2.1.0.

The text renderer excerpts the offending source line with a caret when
the kernel source is available — locations come from :mod:`repro.lang`
tokens, threaded through extraction into every diagnostic.  JSON and
SARIF are the machine-readable forms consumed by editors and CI; the
schema is documented in ``docs/analysis.md``.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from .diagnostics import Diagnostic, DiagnosticReport, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-analyze"


def render_text(
    report: DiagnosticReport, source: str | None = None
) -> str:
    """Clang-style one-line-per-diagnostic rendering with source excerpts."""
    lines = source.splitlines() if source else []
    chunks: list[str] = []
    for diag in report.sorted():
        chunks.append(diag.render())
        excerpt = _excerpt(diag, lines)
        if excerpt:
            chunks.append(excerpt)
    counts = (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s), "
        f"{len(report.infos)} note(s)"
    )
    chunks.append(counts)
    return "\n".join(chunks)


def _excerpt(diag: Diagnostic, lines: Sequence[str]) -> str | None:
    span = diag.span
    if span is None or span.line is None or span.column is None:
        return None
    if not 1 <= span.line <= len(lines):
        return None
    text = lines[span.line - 1]
    width = 1
    if span.end_column is not None and span.end_column > span.column:
        width = span.end_column - span.column
    caret = " " * (span.column - 1) + "^" + "~" * (width - 1)
    return f"    {text}\n    {caret}"


# ----------------------------------------------------------------------
def diagnostic_to_dict(diag: Diagnostic) -> dict[str, Any]:
    span = diag.span
    return {
        "code": diag.code,
        "rule": diag.rule.name,
        "severity": diag.severity.value,
        "message": diag.message,
        "assumption": diag.rule.assumption,
        "file": span.file if span else None,
        "line": span.line if span else None,
        "column": span.column if span else None,
        "hints": list(diag.hints),
    }


def render_json(
    report: DiagnosticReport,
    classifications: Sequence[Mapping[str, Any]] = (),
    portfolio: Mapping[str, Any] | None = None,
) -> str:
    """The ``repro lint --format json`` / ``repro analyze`` payload.

    ``portfolio`` is the :meth:`PortfolioReport.to_dict` payload of
    ``repro analyze --portfolio`` (reductions, nest patterns, proofs).
    """
    payload = {
        "tool": TOOL_NAME,
        "diagnostics": [diagnostic_to_dict(d) for d in report.sorted()],
        "classifications": list(classifications),
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "notes": len(report.infos),
        },
    }
    if portfolio is not None:
        payload["portfolio"] = dict(portfolio)
    return json.dumps(payload, indent=2)


# ----------------------------------------------------------------------
def render_sarif(report: DiagnosticReport) -> str:
    """Minimal standard-conforming SARIF log for CI upload."""
    rules_meta = [
        {
            "id": r.code,
            "name": r.name,
            "shortDescription": {"text": r.name},
            "fullDescription": {"text": r.assumption},
            "defaultConfiguration": {"level": r.severity.sarif_level},
        }
        for r in all_rules()
    ]
    results = []
    for diag in report.sorted():
        result: dict[str, Any] = {
            "ruleId": diag.code,
            "level": diag.severity.sarif_level,
            "message": {"text": diag.message},
        }
        span = diag.span
        if span is not None and span.line is not None:
            region: dict[str, Any] = {"startLine": span.line}
            if span.column is not None:
                region["startColumn"] = span.column
            if span.end_column is not None:
                region["endColumn"] = span.end_column
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": span.file or "<kernel>"
                        },
                        "region": region,
                    }
                }
            ]
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/repro/pipeline-detection"
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
