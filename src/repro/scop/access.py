"""Memory access relations.

Each access of a statement is an affine function from the statement's
iteration domain to the cells of one array.  To let reads and writes of
*different* arrays meet in one shared memory space (as the paper's ``M``),
cells are encoded as tuples ``(array_id, idx_0, …, idx_{r-1}, 0, …)`` padded
with zeros up to the maximal array rank of the SCoP.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..presburger import (
    AffineExpr,
    BasicMap,
    BasicSet,
    PointRelation,
    PointSet,
    Space,
)


class AccessKind(Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Access:
    """One affine array access of a statement.

    Parameters
    ----------
    array:
        Name of the accessed array.
    indices:
        One :class:`AffineExpr` per array dimension, in the statement's loop
        variables.
    kind:
        Read or write.
    """

    array: str
    indices: tuple[AffineExpr, ...]
    kind: AccessKind

    @property
    def rank(self) -> int:
        return len(self.indices)

    def symbolic_relation(
        self, domain: BasicSet, array_id: int, mem_rank: int
    ) -> BasicMap:
        """Iteration → encoded-cell relation as a symbolic map."""
        dims = ("arr",) + tuple(f"m{k}" for k in range(mem_rank))
        mem_space = Space(dims, "Mem")
        exprs: list[AffineExpr] = [AffineExpr.constant(array_id)]
        exprs.extend(self.indices)
        exprs.extend(AffineExpr.constant(0) for _ in range(mem_rank - self.rank))
        return BasicMap.from_affine(domain, mem_space, exprs)

    def explicit_relation(
        self, points: PointSet, space: Space, array_id: int, mem_rank: int
    ) -> PointRelation:
        """Iteration → encoded-cell relation tabulated over ``points``.

        ``space`` names the iteration dimensions so index expressions can be
        aligned into a coefficient matrix.
        """
        n_in = space.ndim
        matrix = np.zeros((mem_rank + 1, n_in), dtype=np.int64)
        const = np.zeros(mem_rank + 1, dtype=np.int64)
        const[0] = array_id
        for k, expr in enumerate(self.indices):
            vec, c = expr.vector(space)
            matrix[1 + k, :] = vec
            const[1 + k] = c
        return PointRelation.from_affine(points, matrix, const)

    def __str__(self) -> str:
        subs = "".join(f"[{i}]" for i in self.indices)
        tag = "W" if self.kind is AccessKind.WRITE else "R"
        return f"{tag}:{self.array}{subs}"
