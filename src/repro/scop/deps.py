"""Memory-based dependence analysis on explicit relations.

Computes flow (read-after-write), anti (write-after-read) and output
(write-after-write) dependences between statement instances, ordered by the
sequential execution of the program: nests run one after another, and within
a nest instances follow lexicographic order of the shared loops with textual
order breaking ties.

These relations feed (a) the "T depends on S" test of Algorithm 1, (b) the
correctness oracle used throughout the test-suite, and (c) the Polly-like
baseline's parallel-dimension detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..presburger import PointRelation, rowwise_lex_lt
from .scop import Scop, ScopStatement


class DepKind(Enum):
    FLOW = "flow"  # src writes, tgt reads
    ANTI = "anti"  # src reads, tgt writes
    OUTPUT = "output"  # src writes, tgt writes


def dependence_relation(
    scop: Scop,
    src: ScopStatement,
    tgt: ScopStatement,
    kind: DepKind = DepKind.FLOW,
) -> PointRelation:
    """Instances of ``tgt`` mapped to the ``src`` instances they depend on.

    The result only contains pairs where the source instance executes
    strictly before the target instance in the original sequential program.
    """
    if kind is DepKind.FLOW:
        src_rel, tgt_rel = scop.write_relation(src), scop.read_relation(tgt)
    elif kind is DepKind.ANTI:
        src_rel, tgt_rel = scop.read_relation(src), scop.write_relation(tgt)
    else:
        src_rel, tgt_rel = scop.write_relation(src), scop.write_relation(tgt)

    # tgt iteration -> src iteration touching the same cell
    candidates = src_rel.inverse().after(tgt_rel)
    return _filter_execution_order(candidates, src, tgt)


def _filter_execution_order(
    candidates: PointRelation, src: ScopStatement, tgt: ScopStatement
) -> PointRelation:
    if candidates.is_empty():
        return candidates
    tgt_iters = candidates.in_part
    src_iters = candidates.out_part

    if src.nest_index < tgt.nest_index:
        return candidates
    if src.nest_index > tgt.nest_index:
        return PointRelation.empty(candidates.n_in, candidates.n_out)

    # Same nest: order on the shared loop dimensions, textual order as tie
    # break; same statement requires strict lexicographic precedence.
    common = min(src.depth, tgt.depth)
    src_prefix = src_iters[:, :common]
    tgt_prefix = tgt_iters[:, :common]
    before = rowwise_lex_lt(src_prefix, tgt_prefix)
    equal = np.all(src_prefix == tgt_prefix, axis=1)
    if src.name == tgt.name:
        keep = before | (equal & rowwise_lex_lt(src_iters, tgt_iters))
    elif src.position < tgt.position:
        keep = before | equal
    else:
        keep = before
    return PointRelation(candidates.pairs[keep], candidates.n_in)


def depends_on(
    scop: Scop,
    tgt: ScopStatement,
    src: ScopStatement,
    kinds: tuple[DepKind, ...] = (DepKind.FLOW,),
) -> bool:
    """True when some instance of ``tgt`` depends on an instance of ``src``."""
    return any(
        not dependence_relation(scop, src, tgt, kind).is_empty()
        for kind in kinds
    )


@dataclass(frozen=True)
class DependenceInfo:
    """All pairwise dependence relations of a SCoP."""

    scop: Scop
    relations: dict[tuple[str, str, DepKind], PointRelation]

    def get(
        self, src: str, tgt: str, kind: DepKind = DepKind.FLOW
    ) -> PointRelation:
        key = (src, tgt, kind)
        if key in self.relations:
            return self.relations[key]
        s, t = self.scop.statement(src), self.scop.statement(tgt)
        return PointRelation.empty(t.depth, s.depth)

    def sources_of(self, tgt: str, kind: DepKind = DepKind.FLOW) -> list[str]:
        """Names of statements some instance of ``tgt`` depends on."""
        return [
            s
            for (s, t, k), rel in self.relations.items()
            if t == tgt and k is kind and len(rel) > 0 and s != tgt
        ]

    def targets_of(self, src: str, kind: DepKind = DepKind.FLOW) -> list[str]:
        return [
            t
            for (s, t, k), rel in self.relations.items()
            if s == src and k is kind and len(rel) > 0 and s != t
        ]


def analyze_dependences(
    scop: Scop, kinds: tuple[DepKind, ...] = (DepKind.FLOW,)
) -> DependenceInfo:
    """Compute all non-empty pairwise dependence relations."""
    relations: dict[tuple[str, str, DepKind], PointRelation] = {}
    for src in scop.statements:
        for tgt in scop.statements:
            if tgt.position < src.position:
                continue
            for kind in kinds:
                rel = dependence_relation(scop, src, tgt, kind)
                if not rel.is_empty():
                    relations[(src.name, tgt.name, kind)] = rel
    return DependenceInfo(scop, relations)


# ----------------------------------------------------------------------
# Loop-level parallelism (used by the Polly-like baseline)
# ----------------------------------------------------------------------
def carried_levels(scop: Scop, nest_index: int) -> set[int]:
    """Loop levels of a nest that carry a dependence.

    Level ``k`` (0-based) carries a dependence when two dependent instances
    share loop indices ``0..k-1`` but differ at ``k``.  A level that carries
    no dependence can run in parallel, which is the decision the Polly/Pluto
    baseline takes per loop nest.
    """
    stmts = [s for s in scop.statements if s.nest_index == nest_index]
    carried: set[int] = set()
    for src in stmts:
        for tgt in stmts:
            for kind in DepKind:
                rel = dependence_relation(scop, src, tgt, kind)
                if rel.is_empty():
                    continue
                common = min(src.depth, tgt.depth)
                a = rel.out_part[:, :common]  # src iterations
                b = rel.in_part[:, :common]  # tgt iterations
                decided = np.zeros(a.shape[0], dtype=bool)
                for level in range(common):
                    differs = ~decided & (a[:, level] != b[:, level])
                    if np.any(differs):
                        carried.add(level)
                    decided |= differs
    return carried


def parallel_levels(scop: Scop, nest_index: int) -> list[int]:
    """Loop levels of a nest that are dependence-free (parallelizable)."""
    stmts = [s for s in scop.statements if s.nest_index == nest_index]
    if not stmts:
        return []
    depth = min(s.depth for s in stmts)
    carried = carried_levels(scop, nest_index)
    return [k for k in range(depth) if k not in carried]
