"""Static control part (SCoP) representation.

A :class:`Scop` is the polyhedral abstraction of a kernel program: one
:class:`ScopStatement` per labelled assignment, each carrying its iteration
domain (symbolic and explicit), its read/write access relations, and enough
of the original AST to execute the statement.  This mirrors what Polly's
analysis passes hand to the paper's pipeline detection.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from ..lang.ast import Assign
from ..presburger import (
    BasicMap,
    BasicSet,
    PointRelation,
    PointSet,
    Space,
    to_point_set,
)
from .access import Access, AccessKind


@dataclass(frozen=True)
class ScopStatement:
    """One statement instance set plus its memory behaviour."""

    name: str
    nest_index: int
    position: int
    space: Space
    domain: BasicSet
    accesses: tuple[Access, ...]
    assign: Assign

    @property
    def depth(self) -> int:
        return self.space.ndim

    @property
    def writes(self) -> tuple[Access, ...]:
        return tuple(a for a in self.accesses if a.kind is AccessKind.WRITE)

    @property
    def reads(self) -> tuple[Access, ...]:
        return tuple(a for a in self.accesses if a.kind is AccessKind.READ)

    @functools.cached_property
    def points(self) -> PointSet:
        """The enumerated iteration domain (cached)."""
        return to_point_set(self.domain)

    def __str__(self) -> str:
        acc = ", ".join(str(a) for a in self.accesses)
        return f"{self.name}{list(self.space.dims)} in nest {self.nest_index}: {acc}"


@dataclass(frozen=True)
class Scop:
    """An analyzed static control part."""

    statements: tuple[ScopStatement, ...]
    arrays: dict[str, int] = field(default_factory=dict)  # name -> rank
    params: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [s.name for s in self.statements]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate statement labels: {names}")

    # ------------------------------------------------------------------
    @property
    def mem_rank(self) -> int:
        """Common padded rank of the encoded memory space."""
        return max(self.arrays.values(), default=0)

    @functools.cached_property
    def array_ids(self) -> dict[str, int]:
        return {name: k for k, name in enumerate(sorted(self.arrays))}

    def statement(self, name: str) -> ScopStatement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(f"no statement named {name!r}")

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    # ------------------------------------------------------------------
    # access relations
    # ------------------------------------------------------------------
    def write_relation(self, stmt: ScopStatement) -> PointRelation:
        """Explicit ``Wr`` relation (iterations → encoded cells), cached."""
        return self._cached_relation(stmt, AccessKind.WRITE)

    def read_relation(self, stmt: ScopStatement) -> PointRelation:
        """Explicit ``Rd`` relation (iterations → encoded cells), cached."""
        return self._cached_relation(stmt, AccessKind.READ)

    def _cached_relation(
        self, stmt: ScopStatement, kind: AccessKind
    ) -> PointRelation:
        # The dependence and pipeline passes request these repeatedly;
        # tabulating an access relation is the analysis' hottest kernel.
        cache: dict = self.__dict__.setdefault("_relation_cache", {})
        key = (stmt.name, kind)
        if key not in cache:
            cache[key] = self._access_relation(stmt, kind)
        return cache[key]

    def _access_relation(
        self, stmt: ScopStatement, kind: AccessKind
    ) -> PointRelation:
        rank = self.mem_rank
        rels = [
            acc.explicit_relation(
                stmt.points, stmt.space, self.array_ids[acc.array], rank
            )
            for acc in stmt.accesses
            if acc.kind is kind
        ]
        if not rels:
            return PointRelation.empty(stmt.depth, rank + 1)
        out = rels[0]
        for r in rels[1:]:
            out = out.union(r)
        return out

    def symbolic_write_relation(self, stmt: ScopStatement) -> list[BasicMap]:
        rank = self.mem_rank
        return [
            acc.symbolic_relation(stmt.domain, self.array_ids[acc.array], rank)
            for acc in stmt.accesses
            if acc.kind is AccessKind.WRITE
        ]

    def symbolic_read_relation(self, stmt: ScopStatement) -> list[BasicMap]:
        rank = self.mem_rank
        return [
            acc.symbolic_relation(stmt.domain, self.array_ids[acc.array], rank)
            for acc in stmt.accesses
            if acc.kind is AccessKind.READ
        ]

    # ------------------------------------------------------------------
    def array_extent(self, name: str) -> tuple[tuple[int, int], ...]:
        """Conservative per-dimension (min, max) touched by any access.

        Used by the interpreter and runtime to size backing NumPy arrays.
        """
        rank = self.arrays[name]
        lo = np.full(rank, np.iinfo(np.int64).max, dtype=np.int64)
        hi = np.full(rank, np.iinfo(np.int64).min, dtype=np.int64)
        seen = False
        for stmt in self.statements:
            for acc in stmt.accesses:
                if acc.array != name:
                    continue
                rel = acc.explicit_relation(
                    stmt.points, stmt.space, 0, self.arrays[name]
                )
                cells = rel.out_part[:, 1 : 1 + rank]
                if cells.shape[0] == 0:
                    continue
                seen = True
                np.minimum(lo, cells.min(axis=0), out=lo)
                np.maximum(hi, cells.max(axis=0), out=hi)
        if not seen:
            return tuple((0, 0) for _ in range(rank))
        return tuple((int(a), int(b)) for a, b in zip(lo, hi))

    def __str__(self) -> str:
        lines = [f"Scop with {len(self.statements)} statements:"]
        lines += [f"  {s}" for s in self.statements]
        return "\n".join(lines)
