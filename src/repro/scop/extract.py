"""SCoP extraction from kernel-language ASTs.

Turns a parsed :class:`~repro.lang.ast.Program` plus concrete structure
parameters (e.g. ``N=32``) into a :class:`~repro.scop.scop.Scop`:
iteration domains become basic sets, subscripts become affine access
functions, and each labelled assignment becomes one statement.

Parameters are instantiated here — the analysis downstream is exact for the
given sizes, matching the explicit-relation backend (see DESIGN.md §2 for
why this substitution is faithful).
"""

from __future__ import annotations

from ..lang.ast import (
    ArrayAccess,
    Assign,
    BinOp,
    Call,
    Expr,
    IntLit,
    Loop,
    Program,
    VarRef,
    expr_reads,
)
from ..lang.errors import SemanticError
from ..presburger import AffineExpr, BasicSet, Constraint, Space
from .access import Access, AccessKind
from .scop import Scop, ScopStatement


def to_affine(
    expr: Expr, loop_vars: set[str], params: dict[str, int]
) -> AffineExpr:
    """Lower an AST expression to an affine form over the loop variables.

    Structure parameters are substituted by their integer values; ``/`` and
    ``%`` are only allowed between constant-folded operands (so ``N/2`` is
    fine, ``i/2`` is rejected — exactly Polly's affine-subscript rule).
    """
    if isinstance(expr, IntLit):
        return AffineExpr.constant(expr.value)
    if isinstance(expr, VarRef):
        if expr.name in loop_vars:
            return AffineExpr.var(expr.name)
        if expr.name in params:
            return AffineExpr.constant(params[expr.name])
        raise SemanticError(
            f"unknown variable {expr.name!r} (not a loop variable; "
            f"known parameters: {sorted(params)})",
            expr.location,
        )
    if isinstance(expr, BinOp):
        lhs = to_affine(expr.lhs, loop_vars, params)
        rhs = to_affine(expr.rhs, loop_vars, params)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            if lhs.is_constant:
                return rhs * lhs.const
            if rhs.is_constant:
                return lhs * rhs.const
            raise SemanticError(
                "non-affine product of two variables", expr.location
            )
        if expr.op in ("/", "%"):
            if not (lhs.is_constant and rhs.is_constant):
                raise SemanticError(
                    f"non-constant {expr.op!r} is not affine", expr.location
                )
            if rhs.const == 0:
                raise SemanticError("division by zero", expr.location)
            value = (
                lhs.const // rhs.const
                if expr.op == "/"
                else lhs.const % rhs.const
            )
            return AffineExpr.constant(value)
        raise SemanticError(f"unsupported operator {expr.op!r}", expr.location)
    if isinstance(expr, (ArrayAccess, Call)):
        raise SemanticError(
            "array accesses and calls cannot appear in bounds or subscripts",
            expr.location,
        )
    raise SemanticError(f"cannot lower {expr!r} to an affine expression")


def extract_scop(program: Program, params: dict[str, int] | None = None) -> Scop:
    """Extract the polyhedral representation of a kernel program."""
    from ..obs.spans import span

    with span("scop.extract") as sp:
        params = dict(params or {})
        statements: list[ScopStatement] = []
        arrays: dict[str, int] = {}
        position = 0

        for nest_index, nest in enumerate(program.nests):
            position = _walk_loop(
                nest, nest_index, [], [], statements, arrays, params, position
            )
        sp.set(statements=len(statements), arrays=len(arrays))
        return Scop(tuple(statements), arrays, params)


def _walk_loop(
    loop: Loop,
    nest_index: int,
    loop_vars: list[str],
    bound_exprs: list[AffineExpr],
    statements: list[ScopStatement],
    arrays: dict[str, int],
    params: dict[str, int],
    position: int,
) -> int:
    if loop.var in loop_vars:
        raise SemanticError(
            f"loop variable {loop.var!r} shadows an outer loop", loop.location
        )
    if loop.var in params:
        raise SemanticError(
            f"loop variable {loop.var!r} collides with a parameter",
            loop.location,
        )
    vars_here = loop_vars + [loop.var]
    var_set = set(vars_here)
    lb = to_affine(loop.lower, var_set - {loop.var}, params)
    ub = to_affine(loop.upper, var_set - {loop.var}, params)
    iv = AffineExpr.var(loop.var)
    lower_c = iv - lb  # iv - lb >= 0
    upper_c = (ub - iv - 1) if loop.upper_strict else (ub - iv)
    bounds_here = bound_exprs + [lower_c, upper_c]

    for item in loop.body:
        if isinstance(item, Loop):
            position = _walk_loop(
                item,
                nest_index,
                vars_here,
                bounds_here,
                statements,
                arrays,
                params,
                position,
            )
        else:
            _add_statement(
                item,
                nest_index,
                vars_here,
                bounds_here,
                statements,
                arrays,
                params,
                position,
            )
            position += 1
    return position


def _add_statement(
    stmt: Assign,
    nest_index: int,
    loop_vars: list[str],
    bound_exprs: list[AffineExpr],
    statements: list[ScopStatement],
    arrays: dict[str, int],
    params: dict[str, int],
    position: int,
) -> None:
    space = Space(tuple(loop_vars), stmt.label)
    constraints = []
    for expr in bound_exprs:
        vec, const = expr.vector(space)
        constraints.append(Constraint.ge(vec, const))
    domain = BasicSet(space, tuple(constraints))

    var_set = set(loop_vars)
    accesses: list[Access] = []

    def lower_access(acc: ArrayAccess, kind: AccessKind) -> Access:
        indices = tuple(to_affine(ix, var_set, params) for ix in acc.indices)
        rank = len(indices)
        known = arrays.setdefault(acc.array, rank)
        if known != rank:
            raise SemanticError(
                f"array {acc.array!r} used with rank {rank} here "
                f"but rank {known} elsewhere",
                acc.location,
            )
        return Access(acc.array, indices, kind)

    accesses.append(lower_access(stmt.target, AccessKind.WRITE))
    if stmt.op != "=":  # every compound assignment reads its target
        accesses.append(lower_access(stmt.target, AccessKind.READ))
    for acc in expr_reads(stmt.value):
        accesses.append(lower_access(acc, AccessKind.READ))

    statements.append(
        ScopStatement(
            name=stmt.label,
            nest_index=nest_index,
            position=position,
            space=space,
            domain=domain,
            accesses=tuple(accesses),
            assign=stmt,
        )
    )
