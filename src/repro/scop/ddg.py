"""Statement-level dependence graphs.

Summarizes the instance-level dependence relations into a small graph over
statements — the view a compiler engineer wants first: which statements
feed which, through which dependence classes, and with how many instance
pairs.  Exports to Graphviz DOT for visual inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from .deps import DepKind, dependence_relation
from .scop import Scop


@dataclass(frozen=True)
class DepEdge:
    source: str
    target: str
    kind: DepKind
    pairs: int
    self_dep: bool

    def __str__(self) -> str:
        arrow = "⟲" if self.self_dep else "→"
        return f"{self.source} {arrow} {self.target} [{self.kind.value}, {self.pairs} pairs]"


@dataclass(frozen=True)
class DependenceGraph:
    """All statement-level dependence edges of a SCoP."""

    scop: Scop
    edges: tuple[DepEdge, ...]

    def edges_between(self, source: str, target: str) -> list[DepEdge]:
        return [
            e for e in self.edges if e.source == source and e.target == target
        ]

    def predecessors(self, target: str) -> set[str]:
        return {
            e.source
            for e in self.edges
            if e.target == target and not e.self_dep
        }

    def summary(self) -> str:
        lines = [f"Dependence graph: {len(self.edges)} edges"]
        lines += [f"  {e}" for e in self.edges]
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering: solid flow, dashed anti, dotted output."""
        styles = {
            DepKind.FLOW: "solid",
            DepKind.ANTI: "dashed",
            DepKind.OUTPUT: "dotted",
        }
        lines = ["digraph deps {", '  node [shape=ellipse, fontname="monospace"];']
        for stmt in self.scop.statements:
            lines.append(f'  {stmt.name} [label="{stmt.name} (nest {stmt.nest_index})"];')
        for e in self.edges:
            lines.append(
                f"  {e.source} -> {e.target} "
                f'[style={styles[e.kind]}, label="{e.kind.value} ({e.pairs})"];'
            )
        lines.append("}")
        return "\n".join(lines)


def build_dependence_graph(
    scop: Scop, kinds: tuple[DepKind, ...] = tuple(DepKind)
) -> DependenceGraph:
    """Compute all non-empty statement-level dependence edges."""
    edges: list[DepEdge] = []
    for source in scop.statements:
        for target in scop.statements:
            if target.position < source.position:
                continue
            for kind in kinds:
                rel = dependence_relation(scop, source, target, kind)
                if rel.is_empty():
                    continue
                edges.append(
                    DepEdge(
                        source.name,
                        target.name,
                        kind,
                        len(rel),
                        source.name == target.name,
                    )
                )
    return DependenceGraph(scop, tuple(edges))
