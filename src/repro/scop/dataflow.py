"""Value-based (dataflow) dependence analysis.

Memory-based flow dependences (:mod:`repro.scop.deps`) relate a read to
*every* earlier write of the same cell; Feautrier's array dataflow analysis
relates it only to the **last** such write — the one that produced the
value actually read.  For the paper's kernels (injective writes, one writer
statement per array) the two coincide, but with multiple writers the
value-based relation is strictly sharper, giving fewer — and more honest —
pipeline constraints.

The implementation is fully explicit and vectorized: every write and read
instance is tagged with its execution-time key, instances are rank-joined
per cell, and a single ``searchsorted`` finds each read's last preceding
write.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..presburger import PointRelation, joint_ranks
from .scop import Scop, ScopStatement


@dataclass(frozen=True)
class DataflowResult:
    """Last-writer sources for every read instance of a SCoP."""

    scop: Scop
    #: (source name, target name) -> value-based flow relation
    #: (target iteration -> the source iteration that wrote the value)
    flows: dict[tuple[str, str], PointRelation]
    #: per target statement: number of read instances with no writer
    #: (values coming from the initial array contents)
    reads_from_input: dict[str, int]

    def flow(self, source: str, target: str) -> PointRelation:
        key = (source, target)
        if key in self.flows:
            return self.flows[key]
        s = self.scop.statement(source)
        t = self.scop.statement(target)
        return PointRelation.empty(t.depth, s.depth)


def _time_keys(scop: Scop, stmt: ScopStatement, iters: np.ndarray) -> np.ndarray:
    """Execution-time key rows ``[nest, iters (padded), position]``.

    Lexicographic order of these keys matches sequential execution order
    for statements of a SCoP (nests run in order; within a nest, shared
    loop indices order instances and the textual position breaks ties).
    """
    max_depth = max(s.depth for s in scop.statements)
    n = iters.shape[0]
    keys = np.zeros((n, max_depth + 2), dtype=np.int64)
    keys[:, 0] = stmt.nest_index
    keys[:, 1 : 1 + stmt.depth] = iters
    keys[:, -1] = stmt.position
    return keys


def analyze_dataflow(scop: Scop) -> DataflowResult:
    """Compute the last-writer flow relations of the whole SCoP."""
    # Gather all write instances: cells, time keys, owning statement, rows.
    w_cells, w_keys, w_stmt, w_rows = [], [], [], []
    for sid, stmt in enumerate(scop.statements):
        wr = scop.write_relation(stmt)
        if wr.is_empty():
            continue
        w_cells.append(wr.out_part)
        w_keys.append(_time_keys(scop, stmt, wr.in_part))
        w_stmt.append(np.full(len(wr), sid, dtype=np.int64))
        w_rows.append(wr.in_part)
    if not w_cells:
        return DataflowResult(scop, {}, {s.name: 0 for s in scop.statements})

    max_depth = max(s.depth for s in scop.statements)
    cells = np.concatenate(w_cells)
    keys = np.concatenate(w_keys)
    stmt_ids = np.concatenate(w_stmt)
    rows_padded = np.zeros((cells.shape[0], max_depth), dtype=np.int64)
    offset = 0
    for chunk in w_rows:
        rows_padded[offset : offset + chunk.shape[0], : chunk.shape[1]] = chunk
        offset += chunk.shape[0]

    # Sort writes by (cell, time).
    cellkey = np.concatenate([cells, keys], axis=1)
    order = np.lexsort(cellkey.T[::-1])
    cells_s = cells[order]
    cellkey_s = cellkey[order]
    stmt_s = stmt_ids[order]
    rows_s = rows_padded[order]

    flows: dict[tuple[str, str], list[np.ndarray]] = {}
    reads_from_input: dict[str, int] = {}

    for tgt in scop.statements:
        rd = scop.read_relation(tgt)
        reads_from_input[tgt.name] = 0
        if rd.is_empty():
            continue
        r_cells = rd.out_part
        r_keys = _time_keys(scop, tgt, rd.in_part)
        r_cellkey = np.concatenate([r_cells, r_keys], axis=1)

        wk, rk = joint_ranks(cellkey_s, r_cellkey)
        # Reads never collide with writes (keys include position and the
        # read statement differs or reads at the same instance count as
        # before the write? No: a read and write of the *same* instance
        # share the key).  searchsorted 'left' puts the read before any
        # equal-key write, so a same-instance write is not its own source.
        pos = np.searchsorted(wk, rk, side="left") - 1

        valid = pos >= 0
        if np.any(valid):
            same_cell = np.all(
                cells_s[pos[valid]] == r_cells[valid], axis=1
            )
            ok = np.zeros_like(valid)
            ok[valid] = same_cell
        else:
            ok = np.zeros_like(valid)
        reads_from_input[tgt.name] = int((~ok).sum())
        if not np.any(ok):
            continue

        src_ids = stmt_s[pos[ok]]
        src_rows = rows_s[pos[ok]]
        tgt_rows = rd.in_part[ok]
        for sid in np.unique(src_ids):
            src_stmt = scop.statements[int(sid)]
            mask = src_ids == sid
            pairs = np.concatenate(
                [tgt_rows[mask], src_rows[mask][:, : src_stmt.depth]], axis=1
            )
            flows.setdefault((src_stmt.name, tgt.name), []).append(pairs)

    out: dict[tuple[str, str], PointRelation] = {}
    for (src_name, tgt_name), chunks in flows.items():
        tgt_depth = scop.statement(tgt_name).depth
        rel = PointRelation(np.concatenate(chunks), tgt_depth)
        # Drop pairs where the "source" is the reading instance itself
        # (possible only for same-statement same-instance read+write keys).
        if src_name == tgt_name:
            same = np.all(rel.in_part == rel.out_part, axis=1)
            rel = PointRelation(rel.pairs[~same], rel.n_in)
        if len(rel):
            out[(src_name, tgt_name)] = rel
    return DataflowResult(scop, out, reads_from_input)
