"""SCoP extraction and dependence analysis (Polly-analysis substitute)."""

from .access import Access, AccessKind
from .dataflow import DataflowResult, analyze_dataflow
from .ddg import DepEdge, DependenceGraph, build_dependence_graph
from .deps import (
    DependenceInfo,
    DepKind,
    analyze_dependences,
    carried_levels,
    dependence_relation,
    depends_on,
    parallel_levels,
)
from .extract import extract_scop, to_affine
from .scop import Scop, ScopStatement
from .validate import InvalidScopError, ValidationReport, validate_scop

__all__ = [
    "Access",
    "AccessKind",
    "DataflowResult",
    "DepEdge",
    "DepKind",
    "DependenceGraph",
    "DependenceInfo",
    "InvalidScopError",
    "Scop",
    "ScopStatement",
    "ValidationReport",
    "analyze_dataflow",
    "analyze_dependences",
    "build_dependence_graph",
    "carried_levels",
    "dependence_relation",
    "depends_on",
    "extract_scop",
    "parallel_levels",
    "to_affine",
    "validate_scop",
]
