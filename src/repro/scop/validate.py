"""Validation of the paper's structural assumptions.

Section 4 of the paper assumes: the program is a sequence of for-loop
nests; an iteration may depend only on earlier iterations of its own nest
or on nests before it (guaranteed by construction for sequential programs);
and each statement's write relation is injective (no over-writes within one
statement's iteration domain).  :func:`validate_scop` checks what can be
violated and reports precise diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .scop import Scop, ScopStatement


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of SCoP validation: hard errors and advisory warnings."""

    errors: tuple[str, ...] = ()
    warnings: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            raise InvalidScopError("; ".join(self.errors))


class InvalidScopError(ValueError):
    """The SCoP violates an assumption the pipeline algorithm relies on."""


def validate_scop(scop: Scop, require_injective_writes: bool = True) -> ValidationReport:
    """Check the paper's preconditions on an extracted SCoP."""
    errors: list[str] = []
    warnings: list[str] = []

    if not scop.statements:
        errors.append("SCoP has no statements")

    for stmt in scop.statements:
        if stmt.depth == 0:
            errors.append(f"statement {stmt.name} has no enclosing loop")
            continue
        if len(stmt.writes) != 1:
            errors.append(
                f"statement {stmt.name} must have exactly one write "
                f"(found {len(stmt.writes)})"
            )
        if len(stmt.points) == 0:
            warnings.append(f"statement {stmt.name} has an empty domain")
        if require_injective_writes and not _injective_write(scop, stmt):
            errors.append(
                f"write relation of statement {stmt.name} is not injective "
                "(the paper's transformation assumes no over-writes)"
            )

    nests: dict[int, list[ScopStatement]] = {}
    for stmt in scop.statements:
        nests.setdefault(stmt.nest_index, []).append(stmt)
    for nest_index, stmts in nests.items():
        if len(stmts) > 1:
            warnings.append(
                f"nest {nest_index} holds {len(stmts)} statements; the "
                "prototype pipelines one statement per nest (Section 5.4)"
            )

    return ValidationReport(tuple(errors), tuple(warnings))


def _injective_write(scop: Scop, stmt: ScopStatement) -> bool:
    wr = scop.write_relation(stmt)
    if wr.is_empty():
        return True
    return wr.is_injective()
