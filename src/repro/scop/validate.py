"""Validation of the paper's structural assumptions.

Section 4 of the paper assumes: the program is a sequence of for-loop
nests; an iteration may depend only on earlier iterations of its own nest
or on nests before it (guaranteed by construction for sequential programs);
and each statement's write relation is injective (no over-writes within one
statement's iteration domain).  :func:`validate_scop` checks what can be
violated and reports precise diagnostics.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` objects with
stable ``RPA01x`` rule codes and source spans threaded from the frontend
tokens, so :meth:`ValidationReport.raise_if_invalid` and the CLI show
*where* an assumption broke.  ``errors``/``warnings`` remain tuples of
rendered strings for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import diagnostics as D
from ..analysis.diagnostics import Collector, Diagnostic, DiagnosticReport
from .scop import Scop, ScopStatement


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of SCoP validation: hard errors and advisory warnings."""

    diagnostics: DiagnosticReport = DiagnosticReport()

    @property
    def ok(self) -> bool:
        return self.diagnostics.ok

    @property
    def errors(self) -> tuple[str, ...]:
        return tuple(d.render() for d in self.diagnostics.errors)

    @property
    def warnings(self) -> tuple[str, ...]:
        return tuple(d.render() for d in self.diagnostics.warnings)

    def error_diagnostics(self) -> tuple[Diagnostic, ...]:
        return self.diagnostics.errors

    def warning_diagnostics(self) -> tuple[Diagnostic, ...]:
        return self.diagnostics.warnings

    def raise_if_invalid(self) -> None:
        if not self.ok:
            raise InvalidScopError("; ".join(self.errors))


class InvalidScopError(ValueError):
    """The SCoP violates an assumption the pipeline algorithm relies on."""


def validate_scop(
    scop: Scop,
    require_injective_writes: bool = True,
    file: str | None = None,
    reduction_waivers: frozenset[str] = frozenset(),
) -> ValidationReport:
    """Check the paper's preconditions on an extracted SCoP.

    ``reduction_waivers`` names statements proven (at the AST level) to
    be associative accumulations.  A non-injective write of a waived
    statement downgrades from the ``RPA013`` error to the ``RPA055``
    warning: privatizing the accumulator restores injectivity, so the
    over-write is benign for analysis, though the pipeline
    transformation itself still refuses such statements.
    """
    out = Collector(file)

    if not scop.statements:
        out.add(D.EMPTY_SCOP, "SCoP has no statements")

    for stmt in scop.statements:
        loc = stmt.assign.location
        if stmt.depth == 0:
            out.add(
                D.STATEMENT_OUTSIDE_LOOP,
                f"statement {stmt.name} has no enclosing loop",
                loc,
                hints=("wrap the statement in a for-loop nest",),
            )
            continue
        if len(stmt.writes) != 1:
            out.add(
                D.MULTIPLE_WRITES,
                f"statement {stmt.name} must have exactly one write "
                f"(found {len(stmt.writes)})",
                loc,
            )
        if len(stmt.points) == 0:
            out.add(
                D.EMPTY_DOMAIN,
                f"statement {stmt.name} has an empty domain",
                loc,
                hints=("check the loop bounds and --param values",),
            )
        if require_injective_writes and not _injective_write(scop, stmt):
            if stmt.name in reduction_waivers:
                out.add(
                    D.REDUCTION_ACCUMULATOR_WRITE,
                    f"write relation of statement {stmt.name} is not "
                    "injective, but the statement is a proven associative "
                    "accumulation — privatization restores injectivity",
                    stmt.assign.target.location or loc,
                    hints=(
                        "run `repro analyze --portfolio` for the "
                        "privatization proof",
                    ),
                )
            else:
                out.add(
                    D.NON_INJECTIVE_WRITE,
                    f"write relation of statement {stmt.name} is not "
                    "injective (the paper's transformation assumes no "
                    "over-writes)",
                    stmt.assign.target.location or loc,
                    hints=(
                        "use every enclosing loop variable in the write "
                        "subscripts",
                    ),
                )

    nests: dict[int, list[ScopStatement]] = {}
    for stmt in scop.statements:
        nests.setdefault(stmt.nest_index, []).append(stmt)
    for nest_index, stmts in nests.items():
        if len(stmts) > 1:
            out.add(
                D.MULTI_STATEMENT_NEST,
                f"nest {nest_index} holds {len(stmts)} statements; the "
                "prototype pipelines one statement per nest (Section 5.4)",
                stmts[0].assign.location,
            )

    return ValidationReport(out.report())


def _injective_write(scop: Scop, stmt: ScopStatement) -> bool:
    wr = scop.write_relation(stmt)
    if wr.is_empty():
        return True
    return wr.is_injective()
