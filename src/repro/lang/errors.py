"""Diagnostics for the kernel language frontend."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceLocation:
    """1-based line/column position in the kernel source.

    ``end_column`` (exclusive, same line) is filled by the lexer for
    single-line tokens so diagnostics can underline the full lexeme; it
    does not participate in equality.
    """

    line: int
    column: int
    end_column: int | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class FrontendError(Exception):
    """Base class for lexer/parser/semantic errors with a location."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        prefix = f"{location}: " if location else ""
        super().__init__(prefix + message)


class LexerError(FrontendError):
    pass


class ParseError(FrontendError):
    pass


class SemanticError(FrontendError):
    """Raised when a syntactically valid program violates SCoP rules."""
