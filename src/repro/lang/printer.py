"""Pretty-printing of kernel-language ASTs back to source form."""

from __future__ import annotations

from .ast import Assign, Loop, Program


def print_program(program: Program, indent: str = "  ") -> str:
    lines: list[str] = []
    for nest in program.nests:
        _print_loop(nest, lines, 0, indent)
    return "\n".join(lines) + "\n"


def _print_loop(loop: Loop, lines: list[str], depth: int, indent: str) -> None:
    pad = indent * depth
    rel = "<" if loop.upper_strict else "<="
    lines.append(
        f"{pad}for ({loop.var} = {loop.lower}; "
        f"{loop.var} {rel} {loop.upper}; {loop.var}++)"
    )
    multi = len(loop.body) > 1
    if multi:
        lines.append(f"{pad}{{")
    for item in loop.body:
        if isinstance(item, Loop):
            _print_loop(item, lines, depth + 1, indent)
        else:
            _print_stmt(item, lines, depth + 1, indent)
    if multi:
        lines.append(f"{pad}}}")


def _print_stmt(stmt: Assign, lines: list[str], depth: int, indent: str) -> None:
    pad = indent * depth
    lines.append(f"{pad}{stmt.label}: {stmt.target} {stmt.op} {stmt.value};")
