"""Token definitions for the kernel language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .errors import SourceLocation


class TokenKind(Enum):
    IDENT = "identifier"
    NUMBER = "number"
    KW_FOR = "for"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    PLUS_PLUS = "++"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EOF = "<eof>"


KEYWORDS = {"for": TokenKind.KW_FOR}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation

    @property
    def value(self) -> int:
        if self.kind is not TokenKind.NUMBER:
            raise ValueError("value of a non-number token")
        return int(self.text)

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"
