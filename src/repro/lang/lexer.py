"""Hand-written lexer for the kernel language.

The language is the C-like subset used in the paper's listings: ``for``
loops, labelled assignment statements, array accesses, integer arithmetic,
and function calls.  ``//`` line comments and ``/* */`` block comments are
skipped.
"""

from __future__ import annotations

from .errors import LexerError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
    "*=": TokenKind.STAR_ASSIGN,
    "++": TokenKind.PLUS_PLUS,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


class Lexer:
    """Converts kernel source text into a token stream."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            tok = self.next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------
    def next_token(self) -> Token:
        self._skip_trivia()
        loc = SourceLocation(self.line, self.column)
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", loc)
        ch = self.source[self.pos]

        if ch.isalpha() or ch == "_":
            text = self._take_while(lambda c: c.isalnum() or c == "_")
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            return Token(kind, text, self._spanned(loc))

        if ch.isdigit():
            text = self._take_while(str.isdigit)
            return Token(TokenKind.NUMBER, text, self._spanned(loc))

        two = self.source[self.pos : self.pos + 2]
        if two in _TWO_CHAR:
            self._advance(2)
            return Token(_TWO_CHAR[two], two, self._spanned(loc))

        if ch in _ONE_CHAR:
            self._advance(1)
            return Token(_ONE_CHAR[ch], ch, self._spanned(loc))

        raise LexerError(f"unexpected character {ch!r}", loc)

    # ------------------------------------------------------------------
    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance(1)
            elif self.source.startswith("//", self.pos):
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance(1)
            elif self.source.startswith("/*", self.pos):
                start = SourceLocation(self.line, self.column)
                self._advance(2)
                while not self.source.startswith("*/", self.pos):
                    if self.pos >= len(self.source):
                        raise LexerError("unterminated block comment", start)
                    self._advance(1)
                self._advance(2)
            else:
                return

    def _spanned(self, loc: SourceLocation) -> SourceLocation:
        """Attach the token's end column (single-line tokens only)."""
        if self.line != loc.line:
            return loc
        return SourceLocation(loc.line, loc.column, self.column)

    def _take_while(self, predicate) -> str:
        start = self.pos
        while self.pos < len(self.source) and predicate(self.source[self.pos]):
            self._advance(1)
        return self.source[start : self.pos]

    def _advance(self, n: int) -> None:
        for _ in range(n):
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1


def tokenize(source: str) -> list[Token]:
    """Tokenize kernel source text, ending with an EOF token."""
    return Lexer(source).tokenize()
