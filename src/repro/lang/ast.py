"""Abstract syntax tree of the kernel language.

The AST mirrors the paper's listings: a program is a sequence of perfectly
or imperfectly nested ``for`` loops whose leaves are labelled array
assignments (``S: A[i][j] = f(...);``).  Loop bounds and subscripts are
integer expressions; right-hand sides may additionally contain opaque
function calls, which model the compute-intensive kernels of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from .errors import SourceLocation

Expr = Union["IntLit", "VarRef", "BinOp", "ArrayAccess", "Call"]


@dataclass(frozen=True)
class IntLit:
    value: int
    location: SourceLocation | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef:
    name: str
    location: SourceLocation | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp:
    op: str  # one of + - * / %
    lhs: Expr
    rhs: Expr
    location: SourceLocation | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class ArrayAccess:
    array: str
    indices: tuple[Expr, ...]
    location: SourceLocation | None = field(default=None, compare=False)

    def __str__(self) -> str:
        subs = "".join(f"[{i}]" for i in self.indices)
        return f"{self.array}{subs}"


@dataclass(frozen=True)
class Call:
    func: str
    args: tuple[Expr, ...]
    location: SourceLocation | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Assign:
    """A labelled assignment statement, the unit of polyhedral analysis."""

    label: str
    target: ArrayAccess
    op: str  # '=', '+=', '-=' or '*='
    value: Expr
    location: SourceLocation | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.label}: {self.target} {self.op} {self.value};"


@dataclass(frozen=True)
class Loop:
    """A ``for`` loop with affine bounds and unit step.

    ``upper_strict`` records whether the source said ``<`` (True) or ``<=``.
    """

    var: str
    lower: Expr
    upper: Expr
    upper_strict: bool
    body: tuple[Union["Loop", Assign], ...]
    location: SourceLocation | None = field(default=None, compare=False)

    def statements(self) -> Iterator[Assign]:
        for item in self.body:
            if isinstance(item, Loop):
                yield from item.statements()
            else:
                yield item

    def depth(self) -> int:
        inner = [item.depth() for item in self.body if isinstance(item, Loop)]
        return 1 + (max(inner) if inner else 0)


@dataclass(frozen=True)
class Program:
    """A sequence of top-level loop nests."""

    nests: tuple[Loop, ...]
    source: str | None = field(default=None, compare=False)

    def statements(self) -> Iterator[Assign]:
        for nest in self.nests:
            yield from nest.statements()

    def labels(self) -> list[str]:
        return [s.label for s in self.statements()]


# ----------------------------------------------------------------------
# traversal helpers
# ----------------------------------------------------------------------
def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, ArrayAccess):
        for idx in expr.indices:
            yield from walk_expr(idx)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)


def expr_reads(expr: Expr) -> list[ArrayAccess]:
    """All array accesses appearing in an expression (in source order)."""
    return [e for e in walk_expr(expr) if isinstance(e, ArrayAccess)]


def expr_vars(expr: Expr) -> set[str]:
    """Names of scalar variables referenced by an expression."""
    return {e.name for e in walk_expr(expr) if isinstance(e, VarRef)}
