"""C-like kernel language frontend (Clang/LLVM-IR substitute).

Parses the loop-nest kernels of the paper's listings into an AST that
:mod:`repro.scop` turns into a polyhedral SCoP.
"""

from .ast import (
    ArrayAccess,
    Assign,
    BinOp,
    Call,
    Expr,
    IntLit,
    Loop,
    Program,
    VarRef,
    expr_reads,
    expr_vars,
    walk_expr,
)
from .errors import (
    FrontendError,
    LexerError,
    ParseError,
    SemanticError,
    SourceLocation,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .printer import print_program

__all__ = [
    "ArrayAccess",
    "Assign",
    "BinOp",
    "Call",
    "Expr",
    "FrontendError",
    "IntLit",
    "Lexer",
    "LexerError",
    "Loop",
    "ParseError",
    "Parser",
    "Program",
    "SemanticError",
    "SourceLocation",
    "VarRef",
    "expr_reads",
    "expr_vars",
    "parse",
    "print_program",
    "tokenize",
    "walk_expr",
]
