"""Recursive-descent parser for the kernel language.

Grammar (statements must carry labels so they can be named in analyses,
matching the paper's ``S:`` / ``R:`` convention; unlabelled statements get
synthetic labels ``S0, S1, ...``)::

    program    := loop+
    loop       := 'for' '(' IDENT '=' expr ';' IDENT ('<'|'<=') expr ';' incr ')' body
    incr       := IDENT '++' | IDENT '+=' NUMBER
    body       := loop | '{' item* '}' | stmt
    item       := loop | stmt
    stmt       := [IDENT ':'] access ('='|'+='|'-='|'*=') expr ';'
    access     := IDENT ('[' expr ']')+
    expr       := term (('+'|'-') term)*
    term       := unary (('*'|'/'|'%') unary)*
    unary      := '-' unary | atom
    atom       := NUMBER | call | access | IDENT | '(' expr ')'
    call       := IDENT '(' [expr (',' expr)*] ')'
"""

from __future__ import annotations

from .ast import (
    ArrayAccess,
    Assign,
    BinOp,
    Call,
    Expr,
    IntLit,
    Loop,
    Program,
    VarRef,
)
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.source = source
        self._auto_label = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind) -> Token:
        tok = self.current
        if tok.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.text!r}", tok.location
            )
        return self.advance()

    def accept(self, kind: TokenKind) -> Token | None:
        if self.current.kind is kind:
            return self.advance()
        return None

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        nests: list[Loop] = []
        while self.current.kind is not TokenKind.EOF:
            if self.current.kind is not TokenKind.KW_FOR:
                raise ParseError(
                    f"expected a top-level 'for' loop, found {self.current.text!r}",
                    self.current.location,
                )
            nests.append(self.parse_loop())
        if not nests:
            raise ParseError("empty program")
        return Program(tuple(nests), self.source)

    def parse_loop(self) -> Loop:
        loc = self.expect(TokenKind.KW_FOR).location
        self.expect(TokenKind.LPAREN)
        var_tok = self.expect(TokenKind.IDENT)
        self.expect(TokenKind.ASSIGN)
        lower = self.parse_expr()
        self.expect(TokenKind.SEMI)

        cond_var = self.expect(TokenKind.IDENT)
        if cond_var.text != var_tok.text:
            raise ParseError(
                f"loop condition tests {cond_var.text!r}, "
                f"but the loop variable is {var_tok.text!r}",
                cond_var.location,
            )
        if self.accept(TokenKind.LT):
            strict = True
        elif self.accept(TokenKind.LE):
            strict = False
        else:
            raise ParseError(
                f"expected '<' or '<=' in loop condition, found {self.current.text!r}",
                self.current.location,
            )
        upper = self.parse_expr()
        self.expect(TokenKind.SEMI)

        incr_var = self.expect(TokenKind.IDENT)
        if incr_var.text != var_tok.text:
            raise ParseError(
                f"loop increment updates {incr_var.text!r}, "
                f"but the loop variable is {var_tok.text!r}",
                incr_var.location,
            )
        if self.accept(TokenKind.PLUS_PLUS):
            pass
        elif self.accept(TokenKind.PLUS_ASSIGN):
            step_tok = self.expect(TokenKind.NUMBER)
            if step_tok.value != 1:
                raise ParseError(
                    "only unit-step loops are supported "
                    f"(got step {step_tok.value})",
                    step_tok.location,
                )
        else:
            raise ParseError(
                f"expected '++' or '+= 1', found {self.current.text!r}",
                self.current.location,
            )
        self.expect(TokenKind.RPAREN)

        body = self.parse_body()
        return Loop(var_tok.text, lower, upper, strict, tuple(body), loc)

    def parse_body(self) -> list[Loop | Assign]:
        if self.accept(TokenKind.LBRACE):
            items: list[Loop | Assign] = []
            while not self.accept(TokenKind.RBRACE):
                if self.current.kind is TokenKind.EOF:
                    raise ParseError("unterminated '{' block", self.current.location)
                items.append(self.parse_item())
            return items
        return [self.parse_item()]

    def parse_item(self) -> Loop | Assign:
        if self.current.kind is TokenKind.KW_FOR:
            return self.parse_loop()
        return self.parse_statement()

    def parse_statement(self) -> Assign:
        loc = self.current.location
        label: str | None = None
        if (
            self.current.kind is TokenKind.IDENT
            and self.peek().kind is TokenKind.COLON
        ):
            label = self.advance().text
            self.expect(TokenKind.COLON)
        if label is None:
            label = f"S{self._auto_label}"
            self._auto_label += 1

        target = self.parse_access()
        if self.accept(TokenKind.ASSIGN):
            op = "="
        elif self.accept(TokenKind.PLUS_ASSIGN):
            op = "+="
        elif self.accept(TokenKind.MINUS_ASSIGN):
            op = "-="
        elif self.accept(TokenKind.STAR_ASSIGN):
            op = "*="
        else:
            raise ParseError(
                f"expected '=', '+=', '-=' or '*=', "
                f"found {self.current.text!r}",
                self.current.location,
            )
        value = self.parse_expr()
        self.expect(TokenKind.SEMI)
        return Assign(label, target, op, value, loc)

    def parse_access(self) -> ArrayAccess:
        name = self.expect(TokenKind.IDENT)
        if self.current.kind is not TokenKind.LBRACKET:
            raise ParseError(
                f"expected a subscripted array access after {name.text!r}",
                self.current.location,
            )
        indices: list[Expr] = []
        while self.accept(TokenKind.LBRACKET):
            indices.append(self.parse_expr())
            self.expect(TokenKind.RBRACKET)
        return ArrayAccess(name.text, tuple(indices), name.location)

    # -- expressions -----------------------------------------------------
    def parse_expr(self) -> Expr:
        lhs = self.parse_term()
        while self.current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance()
            rhs = self.parse_term()
            lhs = BinOp(op.text, lhs, rhs, op.location)
        return lhs

    def parse_term(self) -> Expr:
        lhs = self.parse_unary()
        while self.current.kind in (
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
        ):
            op = self.advance()
            rhs = self.parse_unary()
            lhs = BinOp(op.text, lhs, rhs, op.location)
        return lhs

    def parse_unary(self) -> Expr:
        if self.current.kind is TokenKind.MINUS:
            op = self.advance()
            inner = self.parse_unary()
            return BinOp("-", IntLit(0, op.location), inner, op.location)
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        tok = self.current
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            return IntLit(tok.value, tok.location)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return inner
        if tok.kind is TokenKind.IDENT:
            nxt = self.peek()
            if nxt.kind is TokenKind.LPAREN:
                return self.parse_call()
            if nxt.kind is TokenKind.LBRACKET:
                return self.parse_access()
            self.advance()
            return VarRef(tok.text, tok.location)
        raise ParseError(f"unexpected token {tok.text!r}", tok.location)

    def parse_call(self) -> Call:
        name = self.expect(TokenKind.IDENT)
        self.expect(TokenKind.LPAREN)
        args: list[Expr] = []
        if self.current.kind is not TokenKind.RPAREN:
            args.append(self.parse_expr())
            while self.accept(TokenKind.COMMA):
                args.append(self.parse_expr())
        self.expect(TokenKind.RPAREN)
        return Call(name.text, tuple(args), name.location)


def parse(source: str) -> Program:
    """Parse kernel source text into a :class:`~repro.lang.ast.Program`."""
    return Parser(source).parse_program()
