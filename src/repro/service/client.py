"""A minimal synchronous client for ``repro serve``.

One JSON request per call over a short-lived TCP connection — simple to
reason about, safe to use from many threads at once (each call owns its
socket), and exactly what the dedupe tests need to fire N identical
requests concurrently.

Every request carries a client-generated ``rid`` (request id) that the
server adopts as the root of the request's telemetry span tree and
echoes back in the response — ``client.last_rid`` after any call, or
``response["rid"]``, is the handle for finding the request in the
server's request log and per-request trace files.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
from typing import Any


class ServeClient:
    """Talk to a running ``repro serve`` instance."""

    _counter = itertools.count(1)

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        #: rid of the most recent request (set before sending, so it is
        #: usable even when the call raises)
        self.last_rid: str | None = None

    def _make_rid(self) -> str:
        return "c%x-%x-%s" % (
            os.getpid(), next(self._counter), os.urandom(3).hex()
        )

    def request(self, payload: dict) -> dict[str, Any]:
        if "rid" not in payload:
            payload = dict(payload, rid=self._make_rid())
        self.last_rid = payload["rid"]
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            chunks: list[bytes] = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        data = b"".join(chunks)
        if not data:
            raise ConnectionError("empty response from repro serve")
        return json.loads(data)

    # convenience wrappers ---------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def metrics(self) -> dict[str, Any]:
        """Live metrics: ``{"metrics": {...}, "prometheus": "..."}``."""
        return self.request({"op": "metrics"})

    def health(self) -> dict[str, Any]:
        return self.request({"op": "health"})

    def requests(self, n: int | None = None) -> dict[str, Any]:
        """The server's recent-request ring (last ``n``, oldest first)."""
        payload: dict[str, Any] = {"op": "requests"}
        if n is not None:
            payload["n"] = int(n)
        return self.request(payload)

    def compile(
        self,
        source: str,
        params: dict | None = None,
        options: dict | None = None,
    ) -> dict[str, Any]:
        return self.request(
            {
                "op": "compile",
                "source": source,
                "params": params or {},
                "options": options or {},
            }
        )

    def run(
        self,
        source: str,
        params: dict | None = None,
        options: dict | None = None,
        backend: str = "serial",
        workers: int = 4,
    ) -> dict[str, Any]:
        return self.request(
            {
                "op": "run",
                "source": source,
                "params": params or {},
                "options": options or {},
                "backend": backend,
                "workers": workers,
            }
        )

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})
