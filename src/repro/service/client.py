"""A minimal synchronous client for ``repro serve``.

One JSON request per call over a short-lived TCP connection — simple to
reason about, safe to use from many threads at once (each call owns its
socket), and exactly what the dedupe tests need to fire N identical
requests concurrently.
"""

from __future__ import annotations

import json
import socket
from typing import Any


class ServeClient:
    """Talk to a running ``repro serve`` instance."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    def request(self, payload: dict) -> dict[str, Any]:
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            chunks: list[bytes] = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        data = b"".join(chunks)
        if not data:
            raise ConnectionError("empty response from repro serve")
        return json.loads(data)

    # convenience wrappers ---------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def compile(
        self,
        source: str,
        params: dict | None = None,
        options: dict | None = None,
    ) -> dict[str, Any]:
        return self.request(
            {
                "op": "compile",
                "source": source,
                "params": params or {},
                "options": options or {},
            }
        )

    def run(
        self,
        source: str,
        params: dict | None = None,
        options: dict | None = None,
        backend: str = "serial",
        workers: int = 4,
    ) -> dict[str, Any]:
        return self.request(
            {
                "op": "run",
                "source": source,
                "params": params or {},
                "options": options or {},
                "backend": backend,
                "workers": workers,
            }
        )

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})
