"""Compile-as-a-service: the cache-aware compile tier and ``repro serve``.

Two layers:

* :mod:`repro.service.compile` — ``cached_analysis`` answers one
  compile from the content-addressed artifact store (warm) or runs
  Algorithm 1/2 and persists the outputs (cold).  This is what
  ``transform(..., cache_dir=...)`` and every server worker call.
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  long-lived asyncio front end over a local socket: concurrent
  compile(+run) requests, repeats answered from the store, identical
  in-flight compiles deduplicated through per-key futures.
"""

from .compile import (
    build_artifact,
    cached_analysis,
    load_analysis,
    options_from_dict,
    options_to_dict,
)

__all__ = [
    "build_artifact",
    "cached_analysis",
    "load_analysis",
    "options_from_dict",
    "options_to_dict",
]
