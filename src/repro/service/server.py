"""``repro serve`` — an asyncio compile(+run) front end over a socket.

Newline-delimited JSON over a local TCP socket.  Requests::

    {"op": "ping"}
    {"op": "compile", "source": "...", "params": {"N": 32},
     "options": { ... TransformOptions fields ... }}
    {"op": "run", "source": "...", "params": {...}, "options": {...},
     "backend": "serial", "workers": 4}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "health"}
    {"op": "requests", "n": 32}
    {"op": "shutdown"}

Every response is one JSON object with ``"ok"`` and, on failure,
``"error"``.  ``compile`` answers carry ``"status"``:

* ``"cold"``    — this request ran Algorithm 1/2 (and stored the result);
* ``"warm"``    — answered from the artifact store;
* ``"inflight"`` — an identical compile was already running; this
  request awaited its future (N simultaneous identical requests pay
  exactly one compile);
* ``"direct"``  — caching disabled (``--no-cache``), compiled in place.

Compiles run on a thread pool so the event loop keeps accepting
requests; the in-flight dedupe map is only touched on the loop, so it
needs no lock.  ``run`` executes the compiled kernel and returns a
SHA-256 checksum per output array — the bit-identity handshake the
store-equivalence tests build on.

Telemetry (on by default, ``telemetry=False`` to disable): every
request gets an id (client-proposed via ``"rid"`` or server-assigned)
whose root span parents the whole service span tree — ``service.compile``
→ ``store.get``/``put`` → driver compile phases, and for ``run``
requests the measured runtime task events — exported per request as a
Perfetto trace (``trace_dir``) and as one structured JSONL line
(``log_path``).  The ``metrics``/``health``/``requests`` verbs expose
the live registry (latency p50/p95/p99 per verb and cache status,
in-flight gauge, error counters, store hit rate) over the same
protocol; an optional plain-HTTP listener (``http_port``) additionally
answers ``GET /metrics`` in Prometheus text format for scrapers, plus
``/health`` and ``/requests`` as JSON.  On shutdown a final metrics
snapshot is persisted next to the cache dir (``metrics-last.json``) and
surfaced by ``repro store stats``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..obs import spans as obs_spans
from ..obs.metrics import absorb_artifact_store
from ..obs.service import RequestTelemetry
from ..store import ArtifactStore
from ..store.disk import save_metrics_snapshot
from .compile import cached_analysis, options_from_dict


def _checksums(store) -> dict[str, str]:
    """SHA-256 per array of one execution's output store."""
    return {
        name: hashlib.sha256(
            view.data.tobytes(order="C")
        ).hexdigest()
        for name, view in sorted(store.arrays.items())
    }


class ReproServer:
    """One serving process: a store, a thread pool, an in-flight map."""

    def __init__(
        self,
        store: ArtifactStore | None,
        workers: int = 4,
        telemetry: RequestTelemetry | None = None,
    ):
        self.store = store
        self.executor = ThreadPoolExecutor(max_workers=max(1, workers))
        #: key -> future of (interp, analysis, status); loop-only state
        self.inflight: dict[str, asyncio.Future] = {}
        self.counters: dict[str, int] = {
            "requests": 0,
            "compiles": 0,
            "store_hits": 0,
            "inflight_hits": 0,
            "errors": 0,
        }
        self.telemetry = telemetry
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    def _compile_sync(
        self, source: str, params: dict, options, root_id: int,
        t_submit: float,
    ):
        """Blocking compile (executor thread): store-aware when enabled.

        ``root_id`` is the requesting client's root span id — adopting
        it here is what nests ``service.compile``/``store.*``/driver
        phase spans under the request.  ``t_submit`` (perf_counter at
        executor submission) yields the queue wait.
        """
        from ..driver import analyze
        from ..interp import Interpreter

        t_start = time.perf_counter()
        with obs_spans.parented(root_id):
            interp = Interpreter.from_source(
                source, params,
                vectorize=options.vectorize, fuse=options.fuse,
            )
            if self.store is not None:
                analysis, status = cached_analysis(
                    interp, source, params, options, self.store
                )
            else:
                with obs_spans.span("service.compile", status="direct"):
                    analysis = analyze(interp, options)
                status = "direct"
        timings = {
            "queue_wait_ms": round((t_start - t_submit) * 1e3, 3),
            "compile_ms": round((time.perf_counter() - t_start) * 1e3, 3),
        }
        return interp, analysis, status, timings

    async def _compiled(self, req: dict, rtel=None):
        """(interp, analysis, status) with store + in-flight dedupe."""
        from ..store import artifact_key

        source = req["source"]
        params = {k: int(v) for k, v in (req.get("params") or {}).items()}
        options = options_from_dict(req.get("options") or {})
        key = artifact_key(source, params, options)

        existing = self.inflight.get(key)
        if existing is not None:
            self.counters["inflight_hits"] += 1
            interp, analysis, _, _ = await asyncio.shield(existing)
            if rtel is not None:
                rtel.set(key=key, status="inflight")
            return key, interp, analysis, "inflight"

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.inflight[key] = future
        try:
            result = await loop.run_in_executor(
                self.executor,
                self._compile_sync,
                source,
                params,
                options,
                rtel.root_id if rtel is not None else 0,
                time.perf_counter(),
            )
            future.set_result(result)
        except BaseException as exc:
            future.set_exception(exc)
            # Don't let "exception never retrieved" warnings fire when
            # nobody else awaited this future.
            future.exception()
            raise
        finally:
            self.inflight.pop(key, None)
        interp, analysis, status, timings = result
        if status in ("cold", "direct"):
            self.counters["compiles"] += 1
        elif status == "warm":
            self.counters["store_hits"] += 1
        if rtel is not None:
            rtel.set(key=key, status=status, **timings)
        return key, interp, analysis, status

    # ------------------------------------------------------------------
    async def _handle_request(self, req: dict, rtel=None) -> dict[str, Any]:
        op = req.get("op")
        self.counters["requests"] += 1
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "stats":
            out: dict[str, Any] = {
                "ok": True,
                "counters": dict(self.counters),
                "inflight": len(self.inflight),
            }
            if self.store is not None:
                out["store"] = self.store.stats().as_dict()
            if self.telemetry is not None:
                out["telemetry"] = self.telemetry.health()
            return out
        if op == "metrics":
            if self.telemetry is None:
                return {"ok": False, "error": "telemetry disabled"}
            reg = self._registry_snapshot()
            return {
                "ok": True,
                "metrics": reg.as_dict(),
                "prometheus": reg.export_prometheus(),
            }
        if op == "health":
            out = (
                self.telemetry.health()
                if self.telemetry is not None
                else {"ok": True}
            )
            out["counters"] = dict(self.counters)
            out["inflight_compiles"] = len(self.inflight)
            return out
        if op == "requests":
            if self.telemetry is None:
                return {"ok": False, "error": "telemetry disabled"}
            n = req.get("n")
            return {
                "ok": True,
                "requests": self.telemetry.requests(
                    int(n) if n is not None else None
                ),
            }
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "stopping": True}
        if op == "compile":
            key, _, analysis, status = await self._compiled(req, rtel)
            return {
                "ok": True,
                "key": key,
                "status": status,
                "cache_status": analysis.cache_status,
                "tasks": len(analysis.graph),
                "privatized": analysis.privatized,
                "summary": analysis.info.summary(),
            }
        if op == "run":
            key, interp, analysis, status = await self._compiled(req, rtel)
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self.executor, self._run_sync, interp, analysis, req, rtel
            )
            result.update({"ok": True, "key": key, "status": status})
            return result
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _registry_snapshot(self):
        """The telemetry registry with live store/server gauges folded in."""
        reg = self.telemetry.registry
        if self.store is not None:
            st = self.store.stats()
            reg.gauge("store.entries", st.entries)
            reg.gauge("store.bytes", st.bytes)
            looked = st.counters.get("hits", 0) + st.counters.get(
                "misses", 0
            )
            for name, value in st.counters.items():
                reg.gauge(f"store.{name}", value)
            if looked:
                reg.gauge(
                    "store.hit_rate",
                    round(st.counters.get("hits", 0) / looked, 4),
                )
        for name, value in self.counters.items():
            reg.gauge(f"serve.counter.{name}", value)
        reg.gauge("serve.queue_depth", len(self.inflight))
        return reg

    def _run_sync(self, interp, analysis, req: dict, rtel=None) -> dict[str, Any]:
        """Execute a compiled analysis; returns checksums + match."""
        backend = req.get("backend", "serial")
        workers = int(req.get("workers", 4))
        root_id = rtel.root_id if rtel is not None else 0
        collect = bool(root_id) and obs_spans.enabled()
        t0 = time.perf_counter()
        with obs_spans.parented(root_id):
            with obs_spans.span(
                "serve.run", backend=backend, workers=workers
            ):
                if analysis.privatized:
                    from ..interp import (
                        execute_privatized,
                        privatized_matches,
                    )

                    seq = interp.run_sequential(interp.new_store())
                    out, stats = execute_privatized(
                        interp, analysis.info, analysis.plan,
                        backend=backend, workers=workers,
                        collect_events=collect,
                    )
                    match, _detail = privatized_matches(
                        analysis.plan, seq, out
                    )
                else:
                    from ..interp import execute_measured

                    seq = interp.run_sequential(interp.new_store())
                    out, stats = execute_measured(
                        interp, analysis.info, backend=backend,
                        workers=workers, collect_events=collect,
                    )
                    match = seq.equal(out)
        run_ms = (time.perf_counter() - t0) * 1e3
        if rtel is not None:
            rtel.set(
                run_ms=round(run_ms, 3),
                backend=backend,
                match=bool(match),
            )
            events = getattr(stats, "events", None)
            if collect and events is not None:
                rtel.attach_runtime(events)
        return {
            "match": bool(match),
            "wall_s": run_ms / 1e3,
            "checksums": _checksums(out),
        }

    # ------------------------------------------------------------------
    async def handle_connection(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                rtel = None
                try:
                    req = json.loads(line)
                    if self.telemetry is not None and isinstance(req, dict):
                        rtel = self.telemetry.begin(
                            str(req.get("op", "?")), rid=req.get("rid")
                        )
                        rtel.set(bytes_in=len(line))
                    resp = await self._handle_request(req, rtel)
                except Exception as exc:
                    self.counters["errors"] += 1
                    resp = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                if rtel is not None and "rid" in req:
                    resp.setdefault("rid", rtel.rid)
                payload = json.dumps(resp).encode() + b"\n"
                if rtel is not None:
                    rtel.set(bytes_out=len(payload))
                    rtel.finish(
                        ok=bool(resp.get("ok")), error=resp.get("error")
                    )
                writer.write(payload)
                await writer.drain()
                if self._shutdown.is_set():
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # ------------------------------------------------------------------
    async def handle_http(self, reader, writer):
        """Minimal HTTP/1.0 endpoint: GET /metrics | /health | /requests.

        ``/metrics`` answers in Prometheus text exposition format —
        enough for a scraper; everything else is JSON.  One response per
        connection, then close (no keep-alive).
        """
        try:
            request_line = await reader.readline()
            # drain headers until the blank line (ignore content)
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            try:
                _method, path, *_ = request_line.decode().split()
            except ValueError:
                path = "/"
            path = path.split("?", 1)[0]
            status, ctype, body = self._http_answer(path)
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
        except Exception:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    def _http_answer(self, path: str) -> tuple[str, str, bytes]:
        if self.telemetry is None:
            return (
                "503 Service Unavailable",
                "text/plain; charset=utf-8",
                b"telemetry disabled\n",
            )
        if path == "/metrics":
            text = self._registry_snapshot().export_prometheus()
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                text.encode(),
            )
        if path == "/health":
            doc = self.telemetry.health()
            doc["counters"] = dict(self.counters)
            return (
                "200 OK",
                "application/json",
                json.dumps(doc).encode() + b"\n",
            )
        if path == "/requests":
            doc = {"requests": self.telemetry.requests()}
            return (
                "200 OK",
                "application/json",
                json.dumps(doc).encode() + b"\n",
            )
        return (
            "404 Not Found",
            "text/plain; charset=utf-8",
            b"try /metrics, /health or /requests\n",
        )

    # ------------------------------------------------------------------
    def final_snapshot(self) -> dict[str, Any]:
        """The metrics document persisted as ``metrics-last.json``."""
        doc: dict[str, Any] = {
            "saved_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime()
            ),
            "counters": dict(self.counters),
        }
        if self.telemetry is not None:
            reg = self._registry_snapshot()
            absorb_artifact_store(reg)
            doc["uptime_s"] = round(self.telemetry.uptime_s(), 3)
            doc["metrics"] = reg.as_dict()
        if self.store is not None:
            doc["store"] = self.store.stats().as_dict()
        return doc


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: str | None = None,
    workers: int = 4,
    ready: "asyncio.Future | None" = None,
    announce=print,
    telemetry: bool = True,
    log_path: str | None = None,
    trace_dir: str | None = None,
    http_port: int | None = None,
) -> None:
    """Run the server until a ``shutdown`` request arrives.

    ``port=0`` binds an ephemeral port; the bound address is announced
    on stdout (and through ``ready`` when the caller passes a future —
    the in-process test harness does).  With ``telemetry`` (default),
    span recording is enabled for the process, every request is traced
    and logged (``log_path``/``trace_dir``), and the final metrics
    snapshot lands in ``<cache_dir>/metrics-last.json``.  ``http_port``
    opens the plain-HTTP ``/metrics`` listener next to the JSON socket.
    """
    store = ArtifactStore(cache_dir) if cache_dir is not None else None
    rtel = None
    spans_were_enabled = obs_spans.enabled()
    if telemetry:
        rtel = RequestTelemetry(log_path=log_path, trace_dir=trace_dir)
        obs_spans.enable()
    server = ReproServer(store, workers=workers, telemetry=rtel)
    tcp = await asyncio.start_server(
        server.handle_connection, host=host, port=port
    )
    bound = tcp.sockets[0].getsockname()
    http = None
    server._http_bound = None
    if http_port is not None and rtel is not None:
        http = await asyncio.start_server(
            server.handle_http, host=host, port=http_port
        )
        hbound = http.sockets[0].getsockname()
        server._http_bound = (hbound[0], hbound[1])
        announce(
            f"repro serve metrics on http://{hbound[0]}:{hbound[1]}/metrics"
        )
    announce(f"repro serve listening on {bound[0]}:{bound[1]}")
    if ready is not None and not ready.done():
        ready.set_result((bound[0], bound[1], server))
    try:
        async with tcp:
            await server._shutdown.wait()
    finally:
        if http is not None:
            http.close()
        server.executor.shutdown(wait=True)
        if store is not None and rtel is not None:
            save_metrics_snapshot(store.root, server.final_snapshot())
        if rtel is not None:
            rtel.close()
            if not spans_were_enabled:
                obs_spans.disable()
