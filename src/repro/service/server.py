"""``repro serve`` — an asyncio compile(+run) front end over a socket.

Newline-delimited JSON over a local TCP socket.  Requests::

    {"op": "ping"}
    {"op": "compile", "source": "...", "params": {"N": 32},
     "options": { ... TransformOptions fields ... }}
    {"op": "run", "source": "...", "params": {...}, "options": {...},
     "backend": "serial", "workers": 4}
    {"op": "stats"}
    {"op": "shutdown"}

Every response is one JSON object with ``"ok"`` and, on failure,
``"error"``.  ``compile`` answers carry ``"status"``:

* ``"cold"``    — this request ran Algorithm 1/2 (and stored the result);
* ``"warm"``    — answered from the artifact store;
* ``"inflight"`` — an identical compile was already running; this
  request awaited its future (N simultaneous identical requests pay
  exactly one compile);
* ``"direct"``  — caching disabled (``--no-cache``), compiled in place.

Compiles run on a thread pool so the event loop keeps accepting
requests; the in-flight dedupe map is only touched on the loop, so it
needs no lock.  ``run`` executes the compiled kernel and returns a
SHA-256 checksum per output array — the bit-identity handshake the
store-equivalence tests build on.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..store import ArtifactStore
from .compile import cached_analysis, options_from_dict


def _checksums(store) -> dict[str, str]:
    """SHA-256 per array of one execution's output store."""
    return {
        name: hashlib.sha256(
            view.data.tobytes(order="C")
        ).hexdigest()
        for name, view in sorted(store.arrays.items())
    }


class ReproServer:
    """One serving process: a store, a thread pool, an in-flight map."""

    def __init__(
        self,
        store: ArtifactStore | None,
        workers: int = 4,
    ):
        self.store = store
        self.executor = ThreadPoolExecutor(max_workers=max(1, workers))
        #: key -> future of (interp, analysis, status); loop-only state
        self.inflight: dict[str, asyncio.Future] = {}
        self.counters: dict[str, int] = {
            "requests": 0,
            "compiles": 0,
            "store_hits": 0,
            "inflight_hits": 0,
            "errors": 0,
        }
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    def _compile_sync(self, source: str, params: dict, options):
        """Blocking compile (executor thread): store-aware when enabled."""
        from ..driver import analyze
        from ..interp import Interpreter

        interp = Interpreter.from_source(
            source, params,
            vectorize=options.vectorize, fuse=options.fuse,
        )
        if self.store is not None:
            analysis, status = cached_analysis(
                interp, source, params, options, self.store
            )
        else:
            analysis, status = analyze(interp, options), "direct"
        return interp, analysis, status

    async def _compiled(self, req: dict):
        """(interp, analysis, status) with store + in-flight dedupe."""
        from ..store import artifact_key

        source = req["source"]
        params = {k: int(v) for k, v in (req.get("params") or {}).items()}
        options = options_from_dict(req.get("options") or {})
        key = artifact_key(source, params, options)

        existing = self.inflight.get(key)
        if existing is not None:
            self.counters["inflight_hits"] += 1
            interp, analysis, _ = await asyncio.shield(existing)
            return key, interp, analysis, "inflight"

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.inflight[key] = future
        try:
            result = await loop.run_in_executor(
                self.executor, self._compile_sync, source, params, options
            )
            future.set_result(result)
        except BaseException as exc:
            future.set_exception(exc)
            # Don't let "exception never retrieved" warnings fire when
            # nobody else awaited this future.
            future.exception()
            raise
        finally:
            self.inflight.pop(key, None)
        interp, analysis, status = result
        if status in ("cold", "direct"):
            self.counters["compiles"] += 1
        elif status == "warm":
            self.counters["store_hits"] += 1
        return key, interp, analysis, status

    # ------------------------------------------------------------------
    async def _handle_request(self, req: dict) -> dict[str, Any]:
        op = req.get("op")
        self.counters["requests"] += 1
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "stats":
            out: dict[str, Any] = {
                "ok": True,
                "counters": dict(self.counters),
                "inflight": len(self.inflight),
            }
            if self.store is not None:
                out["store"] = self.store.stats().as_dict()
            return out
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "stopping": True}
        if op == "compile":
            key, _, analysis, status = await self._compiled(req)
            return {
                "ok": True,
                "key": key,
                "status": status,
                "cache_status": analysis.cache_status,
                "tasks": len(analysis.graph),
                "privatized": analysis.privatized,
                "summary": analysis.info.summary(),
            }
        if op == "run":
            key, interp, analysis, status = await self._compiled(req)
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self.executor, self._run_sync, interp, analysis, req
            )
            result.update({"ok": True, "key": key, "status": status})
            return result
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _run_sync(self, interp, analysis, req: dict) -> dict[str, Any]:
        """Execute a compiled analysis; returns checksums + match."""
        import time

        backend = req.get("backend", "serial")
        workers = int(req.get("workers", 4))
        t0 = time.perf_counter()
        if analysis.privatized:
            from ..interp import execute_privatized, privatized_matches

            seq = interp.run_sequential(interp.new_store())
            out, _ = execute_privatized(
                interp, analysis.info, analysis.plan,
                backend=backend, workers=workers,
            )
            match, _detail = privatized_matches(analysis.plan, seq, out)
        else:
            from ..interp import execute_measured

            seq = interp.run_sequential(interp.new_store())
            out, _ = execute_measured(
                interp, analysis.info, backend=backend, workers=workers
            )
            match = seq.equal(out)
        return {
            "match": bool(match),
            "wall_s": time.perf_counter() - t0,
            "checksums": _checksums(out),
        }

    # ------------------------------------------------------------------
    async def handle_connection(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = json.loads(line)
                    resp = await self._handle_request(req)
                except Exception as exc:
                    self.counters["errors"] += 1
                    resp = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                writer.write(json.dumps(resp).encode() + b"\n")
                await writer.drain()
                if self._shutdown.is_set():
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: str | None = None,
    workers: int = 4,
    ready: "asyncio.Future | None" = None,
    announce=print,
) -> None:
    """Run the server until a ``shutdown`` request arrives.

    ``port=0`` binds an ephemeral port; the bound address is announced
    on stdout (and through ``ready`` when the caller passes a future —
    the in-process test harness does).
    """
    store = ArtifactStore(cache_dir) if cache_dir is not None else None
    server = ReproServer(store, workers=workers)
    tcp = await asyncio.start_server(
        server.handle_connection, host=host, port=port
    )
    bound = tcp.sockets[0].getsockname()
    announce(f"repro serve listening on {bound[0]}:{bound[1]}")
    if ready is not None and not ready.done():
        ready.set_result((bound[0], bound[1], server))
    async with tcp:
        await server._shutdown.wait()
    server.executor.shutdown(wait=True)
