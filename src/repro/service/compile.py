"""The cache-aware compile tier.

``cached_analysis`` is the single entry point: given an interpreter, the
kernel source text and the options, it either

* **warm** — loads the stored :class:`~repro.store.CompileArtifact`,
  rebuilds the :class:`~repro.driver.Analysis` against a freshly
  extracted SCoP, and — mandatorily — re-verifies every privatization
  proof through :func:`repro.schedule.legality.verify_privatization`
  (via ``plan_from_proofs``); or
* **cold** — runs :func:`repro.driver.analyze` and persists its outputs
  as one checksummed artifact.

A warm replay that fails for *any* reason (schema drift, a tampered
proof, an info dict that no longer matches the SCoP) is demoted to a
miss and recompiled — the store accelerates, it never decides.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Mapping

from ..driver import Analysis, TransformOptions, analyze
from ..scop import DepKind
from ..store import ArtifactStore, CompileArtifact, artifact_key, kernel_sha
from ..store.disk import bump_session
from ..store.keys import options_fingerprint
from ..workloads import CostModel


# ----------------------------------------------------------------------
# options <-> plain data (the serve protocol speaks JSON)
# ----------------------------------------------------------------------
def options_to_dict(options: TransformOptions) -> dict:
    """JSON-safe rendering of every ``TransformOptions`` field."""
    out: dict = {}
    for f in dataclasses.fields(options):
        value = getattr(options, f.name)
        if f.name == "kinds":
            value = [k.name for k in value]
        elif f.name == "cost_model":
            value = {
                "per_iteration": dict(value.per_iteration),
                "default": value.default,
            }
        out[f.name] = value
    return out


def options_from_dict(d: Mapping) -> TransformOptions:
    """Inverse of :func:`options_to_dict`; unknown keys are an error
    (a client speaking a newer option vocabulary must not be silently
    truncated into a wrong cache key)."""
    known = {f.name for f in dataclasses.fields(TransformOptions)}
    unknown = sorted(set(d) - known)
    if unknown:
        raise ValueError(f"unknown TransformOptions fields: {unknown}")
    kwargs = dict(d)
    if "kinds" in kwargs:
        kwargs["kinds"] = tuple(DepKind[k] for k in kwargs["kinds"])
    if "cost_model" in kwargs:
        cm = kwargs["cost_model"]
        kwargs["cost_model"] = CostModel(
            per_iteration=dict(cm.get("per_iteration", {})),
            default=float(cm.get("default", 1.0)),
        )
    for name in ("privatize_parts", "presburger_cache_size"):
        if kwargs.get(name) is not None:
            kwargs[name] = int(kwargs[name])
    return TransformOptions(**kwargs)


# ----------------------------------------------------------------------
# cold path: Analysis -> artifact
# ----------------------------------------------------------------------
def build_artifact(
    interp,
    source: str,
    params: Mapping[str, int],
    options: TransformOptions,
    analysis: Analysis,
    timings: Mapping[str, float] | None = None,
) -> CompileArtifact:
    """Serialize one compile's outputs into a store artifact."""
    from ..schedule.serialize import dumps_task_ast

    fused = None
    if options.fuse != "off":
        # Force the (lazy) fusion plan now: serving means a warm process
        # must never pay the per-statement Presburger legality analysis.
        fused = interp.fused_program.to_dict()

    proofs: list[dict] = []
    plan = analysis.plan
    if plan is not None and getattr(plan, "groups", ()):
        proofs = [g.proof.to_dict() for g in plan.groups]

    diagnostics: list[dict] = []
    if analysis.diagnostics is not None:
        diagnostics = [
            {
                "code": d.code,
                "severity": d.severity.value,
                "text": d.render(),
            }
            for d in analysis.diagnostics.diagnostics
        ]

    key = artifact_key(source, params, options)
    return CompileArtifact(
        key=key,
        kernel_sha=kernel_sha(source),
        params=dict(params),
        options_fingerprint=options_fingerprint(options),
        info=analysis.info.to_dict(),
        task_ast_blob=dumps_task_ast(analysis.task_ast),
        fused=fused,
        proofs=proofs,
        privatized=analysis.privatized,
        legality_ok=(
            None if analysis.legality is None else analysis.legality.ok
        ),
        diagnostics=diagnostics,
        timings=dict(timings or {}),
    )


# ----------------------------------------------------------------------
# warm path: artifact -> Analysis
# ----------------------------------------------------------------------
def load_analysis(
    interp,
    options: TransformOptions,
    artifact: CompileArtifact,
) -> Analysis:
    """Rebuild an :class:`Analysis` from a stored artifact.

    The SCoP is re-extracted by the caller's interpreter (never stored);
    the artifact supplies the *derived* objects.  Privatization proofs
    go back through ``plan_from_proofs`` → ``verify_privatization`` —
    a tampered proof raises here and the caller recompiles.
    """
    from ..interp.fused import FusedProgram
    from ..pipeline.detect import PipelineInfo
    from ..schedule import build_schedule
    from ..schedule.serialize import loads_task_ast
    from ..tasking import TaskGraph, hybrid_task_graph

    scop = interp.scop
    info = PipelineInfo.from_dict(scop, artifact.info)
    task_ast = loads_task_ast(artifact.task_ast_blob)
    schedule = build_schedule(info)

    if artifact.fused is not None and options.fuse != "off":
        interp.adopt_fused(FusedProgram.from_dict(artifact.fused))

    portfolio_report = None
    if options.portfolio:
        # The report is an analysis *of the SCoP*, cheap next to the
        # schedule work and consumed as live objects — re-derive it.
        from ..analysis.portfolio import run_portfolio

        portfolio_report = run_portfolio(scop)

    cost_of_block = options.cost_model.block_cost
    if artifact.privatized:
        from ..analysis.portfolio.privatize import PrivatizationProof
        from ..schedule import build_privatized_graph
        from ..schedule.privatize import plan_from_proofs

        proofs = [PrivatizationProof.from_dict(p) for p in artifact.proofs]
        plan = plan_from_proofs(scop, proofs)  # mandatory re-verification
        graph, joins = build_privatized_graph(
            task_ast, plan, cost_of_block=cost_of_block
        )
        return Analysis(
            info=info,
            schedule=schedule,
            task_ast=task_ast,
            graph=graph,
            portfolio=portfolio_report,
            plan=plan,
            joins=tuple(joins),
            privatized=True,
            cache_status="warm",
        )

    if options.hybrid:
        graph = hybrid_task_graph(
            scop, info, task_ast, cost_of_block=cost_of_block
        )
    else:
        graph = TaskGraph.from_task_ast(
            task_ast, cost_of_block=cost_of_block
        )
    return Analysis(
        info=info,
        schedule=schedule,
        task_ast=task_ast,
        graph=graph,
        portfolio=portfolio_report,
        privatized=False,
        cache_status="warm",
    )


# ----------------------------------------------------------------------
# the tier
# ----------------------------------------------------------------------
def cached_analysis(
    interp,
    source: str,
    params: Mapping[str, int],
    options: TransformOptions,
    store: ArtifactStore,
) -> tuple[Analysis, str]:
    """One compile through the store: ``(analysis, "warm" | "cold")``."""
    from ..obs.spans import span

    key = artifact_key(source, params, options)
    with span("service.compile", key=key[:12]) as sp:
        artifact = store.get(key)
        if artifact is not None:
            try:
                analysis = load_analysis(interp, options, artifact)
            except Exception as exc:
                # Schema drift, tampered proofs, stale info — anything a
                # replay can hit demotes to a recompile, never a crash.
                bump_session("replay_failures")
                sp.set(replay_failed=type(exc).__name__)
            else:
                sp.set(status="warm")
                return analysis, "warm"

        t0 = time.perf_counter()
        analysis = analyze(interp, options)
        elapsed = time.perf_counter() - t0
        store.put(
            key,
            build_artifact(
                interp, source, params, options, analysis,
                timings={"analyze_s": elapsed},
            ),
        )
        analysis.cache_status = "cold"
        sp.set(status="cold", analyze_s=round(elapsed, 6))
        return analysis, "cold"
