"""``repro top`` — a terminal live monitor for a running compile service.

Client-side and poll-based: each tick issues the ``health``, ``metrics``
and ``requests`` verbs over the ordinary serve protocol (no server-side
push machinery, no curses — a plain ANSI home-and-clear redraw), then
renders:

* rolling request rate (from counter deltas between polls) and error
  rate,
* latency p50/p95/p99 per verb and per cache status (estimated from the
  server's bounded-bucket histograms),
* cache effectiveness (warm/cold/inflight/direct request mix, store
  hit rate),
* the last N requests (id, verb, status, wall, outcome).

Everything below the polling loop is pure: :func:`render_top` maps two
snapshots to a string, which is what the tests (and ``--once``) drive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .metrics import parse_series_key

__all__ = ["TopSnapshot", "poll_snapshot", "render_top", "run_top"]

#: Statuses a compile/run answer can carry, in display order.
_STATUSES = ("cold", "warm", "inflight", "direct")


@dataclass
class TopSnapshot:
    """One poll of the service's telemetry verbs."""

    t: float  # perf_counter at poll time
    health: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    requests: list[dict] = field(default_factory=list)

    def counter(self, name: str) -> float:
        """Sum of a counter metric over all label combinations."""
        total = 0.0
        for key, value in self.metrics.get("counters", {}).items():
            if parse_series_key(key)[0] == name:
                total += value
        return total

    def status_counts(self) -> dict[str, float]:
        out = {s: 0.0 for s in _STATUSES}
        for key, value in self.metrics.get("counters", {}).items():
            name, labels = parse_series_key(key)
            if name == "serve.status_total" and labels.get("status") in out:
                out[labels["status"]] += value
        return out

    def latency_rows(self) -> list[tuple[str, str, dict]]:
        """(op, status, histogram-dict) rows, plain per-op rows first."""
        rows: list[tuple[str, str, dict]] = []
        for key, hist in self.metrics.get("histograms", {}).items():
            name, labels = parse_series_key(key)
            if name != "serve.latency_ms":
                continue
            rows.append((labels.get("op", "?"), labels.get("status", ""), hist))
        rows.sort(key=lambda r: (r[1] != "", r[0], r[1]))
        return rows


def poll_snapshot(client) -> TopSnapshot:
    """Poll one snapshot from a :class:`~repro.service.client.ServeClient`."""
    health = client.health()
    metrics = client.metrics()
    requests = client.requests()
    return TopSnapshot(
        t=time.perf_counter(),
        health=health if health.get("ok") else {},
        metrics=metrics.get("metrics", {}) if metrics.get("ok") else {},
        requests=(
            requests.get("requests", []) if requests.get("ok") else []
        ),
    )


def _rate(prev: TopSnapshot | None, cur: TopSnapshot, name: str) -> float:
    if prev is None:
        return 0.0
    dt = max(cur.t - prev.t, 1e-9)
    return max(cur.counter(name) - prev.counter(name), 0.0) / dt


def render_top(
    prev: TopSnapshot | None,
    cur: TopSnapshot,
    rows: int = 10,
    width: int = 78,
) -> str:
    """Render one monitor frame from the latest two snapshots."""
    health = cur.health
    lines: list[str] = []
    uptime = health.get("uptime_s", 0.0)
    lines.append(
        f"repro top — uptime {uptime:8.1f}s   "
        f"in-flight {health.get('inflight', 0):3}   "
        f"requests {int(health.get('requests_total', 0)):6}   "
        f"errors {int(health.get('errors_total', 0)):4}"
    )
    rps = _rate(prev, cur, "serve.requests_total")
    eps = _rate(prev, cur, "serve.errors_total")
    lines.append(f"rate     {rps:8.2f} req/s   errors {eps:6.2f}/s")

    counts = cur.status_counts()
    answered = sum(counts.values())
    warmish = counts["warm"] + counts["inflight"]
    hit_rate = warmish / answered if answered else 0.0
    lines.append(
        "cache    "
        + "  ".join(f"{s} {int(counts[s])}" for s in _STATUSES)
        + f"   hit-rate {100.0 * hit_rate:5.1f}%"
    )

    lat = cur.latency_rows()
    if lat:
        lines.append("")
        lines.append(
            f"{'verb':<10}{'status':<10}{'count':>7}{'p50 ms':>10}"
            f"{'p95 ms':>10}{'p99 ms':>10}{'max ms':>10}"
        )
        for op, status, hist in lat:
            lines.append(
                f"{op:<10}{status or '-':<10}{hist.get('count', 0):>7}"
                f"{hist.get('p50', 0.0):>10.2f}{hist.get('p95', 0.0):>10.2f}"
                f"{hist.get('p99', 0.0):>10.2f}{hist.get('max', 0.0):>10.2f}"
            )

    recent = cur.requests[-rows:]
    if recent:
        lines.append("")
        lines.append(
            f"{'request':<22}{'verb':<9}{'status':<9}{'wall ms':>9}  outcome"
        )
        for r in reversed(recent):
            outcome = "ok" if r.get("ok") else (
                r.get("error", "error")[: width - 50]
            )
            lines.append(
                f"{r.get('rid', '?'):<22}{r.get('op', '?'):<9}"
                f"{r.get('status', '-') or '-':<9}"
                f"{r.get('wall_ms', 0.0):>9.2f}  {outcome}"
            )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval: float = 1.0,
    iterations: int | None = None,
    rows: int = 10,
    once: bool = False,
    out: Callable[[str], None] = print,
    clear: bool = True,
) -> int:
    """Poll-and-redraw loop (``once=True``: single snapshot, no clear).

    Returns 0 on a clean exit (including Ctrl-C), 1 when the very first
    poll cannot reach the server.
    """
    from ..service.client import ServeClient

    client = ServeClient(host, port, timeout=max(5.0, interval * 4))
    prev: TopSnapshot | None = None
    ticks = 0
    while True:
        try:
            cur = poll_snapshot(client)
        except (ConnectionError, OSError) as exc:
            if prev is None:
                out(f"repro top: cannot reach {host}:{port} ({exc})")
                return 1
            out(f"repro top: lost connection to {host}:{port} ({exc})")
            return 0
        frame = render_top(prev, cur, rows=rows)
        if once:
            out(frame)
            return 0
        if clear:
            out("\x1b[2J\x1b[H" + frame)
        else:
            out(frame)
        prev = cur
        ticks += 1
        if iterations is not None and ticks >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
