"""Request-scoped telemetry for the compile service.

PR 5's spans and metrics were built for one-shot batch runs: everything
lives and dies inside a single CLI invocation.  ``repro serve`` is a
long-lived process answering concurrent requests, which needs three
things the batch layer lacks:

* **request identity** — every request gets an id (client-proposed or
  server-assigned) that a per-request *root span* carries, so the
  existing span tree (``service.compile`` → ``store.get``/``put`` →
  compile phases → runtime task events) nests under one request and can
  be exported as a standalone Perfetto trace;
* **steady-state metrics** — per-verb and per-cache-status latency
  histograms (bounded buckets, so memory is constant for any uptime),
  an in-flight gauge, hit-rate and error counters, all exportable as
  Prometheus text;
* **a request log** — one structured JSONL line per request (id, kernel
  key, status, queue wait, compile/run time, bytes, outcome) in a
  size-rotated file, plus an in-memory ring of recent requests that the
  ``requests`` verb and ``repro top`` read live.

The mechanism for cross-thread span nesting: the event loop *allocates*
a root span id per request (it cannot *open* the span — concurrent
requests interleave on the loop thread and would nest under each
other), worker threads adopt it with :func:`repro.obs.spans.parented`,
and the root record itself is emitted at request end, after which the
whole subtree is drained from the global buffer
(:func:`repro.obs.spans.take_tree`) — bounded memory again.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Iterable

from . import spans as obs_spans
from .metrics import MetricsRegistry
from .spans import SpanRecord, spans_to_trace_events

__all__ = [
    "RequestLog",
    "RequestTelemetry",
    "make_request_id",
    "request_trace_document",
    "runtime_events_to_spans",
]

#: Sweep interval (in finished requests) for orphan spans recorded
#: outside any request tree (store gc, background work).
_PRUNE_EVERY = 64

#: Orphan spans younger than this survive a sweep (they may belong to
#: work that is about to be adopted by a request).
_PRUNE_AGE_NS = 60 * 1_000_000_000

#: Cap of runtime task events replayed into a single request trace.
_MAX_EVENT_SPANS = 512


def make_request_id(counter: int) -> str:
    """``r<pid>-<counter>-<entropy>`` — unique across server restarts."""
    return "r%x-%x-%s" % (os.getpid(), counter, os.urandom(3).hex())


class RequestLog:
    """Size-rotated JSONL request log.

    ``append`` writes one compact JSON object per line and rotates the
    file to ``<path>.1`` when it would exceed ``max_bytes`` — a
    long-lived server keeps at most two generations on disk.  Writes
    are line-buffered and locked; entries are self-describing, so the
    log concatenates cleanly across rotations and restarts.
    """

    def __init__(self, path: str, max_bytes: int = 4 << 20):
        self.path = path
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")

    def append(self, entry: dict) -> None:
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            if self._fh.tell() + len(line) > self.max_bytes:
                self._rotate()
            self._fh.write(line)
            self._fh.flush()

    def _rotate(self) -> None:
        self._fh.close()
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:
            pass
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.close()
            except Exception:
                pass


def runtime_events_to_spans(
    trace, parent_id: int, origin_ns: int
) -> list[SpanRecord]:
    """Replay a :class:`~repro.obs.runtime.RuntimeTrace` as span records
    parented under ``parent_id``.

    Task-event timestamps are collector-epoch-relative; ``origin_ns``
    (the collector's epoch on the monotonic clock) rebases them onto the
    span clock so they nest correctly inside the request trace.  Capped
    at ``_MAX_EVENT_SPANS`` events to bound per-request trace size.
    """
    out: list[SpanRecord] = []
    for e in trace.events[:_MAX_EVENT_SPANS]:
        attrs: dict[str, Any] = {"task": e.tid}
        if e.stolen:
            attrs["stolen"] = True
        if e.pid is not None:
            attrs["os_pid"] = e.pid
        out.append(
            SpanRecord(
                span_id=obs_spans.allocate_span_id(),
                parent_id=parent_id,
                name=f"task.{e.statement}",
                start_ns=origin_ns + e.start_ns,
                end_ns=origin_ns + max(e.end_ns, e.start_ns),
                thread=f"{trace.backend}-worker-{e.worker}",
                attrs=attrs,
            )
        )
    return out


def request_trace_document(
    rid: str, records: Iterable[SpanRecord], entry: dict | None = None
) -> dict:
    """A standalone Chrome/Perfetto document for one request's spans."""
    records = list(records)
    doc: dict[str, Any] = {
        "traceEvents": spans_to_trace_events(records, pid=1),
        "displayTimeUnit": "ms",
        "otherData": {"request_id": rid},
    }
    if entry is not None:
        doc["otherData"]["request"] = dict(entry)
    return doc


class _Request:
    """Handle for one in-flight request; produced by
    :meth:`RequestTelemetry.begin`, closed by :meth:`finish`."""

    __slots__ = (
        "telemetry", "rid", "op", "root_id", "start_ns",
        "t0", "fields", "extra_spans",
    )

    def __init__(self, telemetry: "RequestTelemetry", rid: str, op: str):
        self.telemetry = telemetry
        self.rid = rid
        self.op = op
        self.root_id = (
            obs_spans.allocate_span_id() if obs_spans.enabled() else 0
        )
        self.start_ns = time.monotonic_ns()
        self.t0 = time.perf_counter()
        #: structured fields merged into the log entry (key, status,
        #: queue_wait_ms, compile_ms, run_ms, bytes_in/out, ...)
        self.fields: dict[str, Any] = {}
        #: replayed runtime-event spans attached before finish
        self.extra_spans: list[SpanRecord] = []

    def set(self, **fields) -> "_Request":
        self.fields.update(
            {k: v for k, v in fields.items() if v is not None}
        )
        return self

    def attach_runtime(self, trace, parent_id: int | None = None) -> None:
        """Replay a RuntimeTrace's task events into this request's tree."""
        if self.root_id and trace is not None and trace.events:
            self.extra_spans.extend(
                runtime_events_to_spans(
                    trace,
                    parent_id or self.root_id,
                    trace.epoch_ns,
                )
            )

    def finish(self, ok: bool, error: str | None = None) -> dict:
        return self.telemetry._finish(self, ok, error)


class RequestTelemetry:
    """Per-request telemetry shared by one serving process."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        log_path: str | None = None,
        trace_dir: str | None = None,
        recent: int = 64,
    ):
        self.registry = registry if registry is not None else (
            MetricsRegistry()
        )
        self.log = RequestLog(log_path) if log_path else None
        self.trace_dir = trace_dir
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
        self.recent: deque[dict] = deque(maxlen=max(1, recent))
        self.started_at = time.time()
        self.started_ns = time.monotonic_ns()
        self._lock = threading.Lock()
        self._seq = 0
        self._inflight: dict[int, str] = {}  # root span id -> rid
        self._finished = 0

    # ------------------------------------------------------------------
    def begin(self, op: str, rid: str | None = None) -> _Request:
        with self._lock:
            self._seq += 1
            seq = self._seq
        req = _Request(self, rid or make_request_id(seq), op)
        with self._lock:
            if req.root_id:
                self._inflight[req.root_id] = req.rid
        self.registry.gauge("serve.inflight", len(self._inflight))
        return req

    def _finish(self, req: _Request, ok: bool, error: str | None) -> dict:
        wall_ms = (time.perf_counter() - req.t0) * 1e3
        end_ns = time.monotonic_ns()
        reg = self.registry

        tree: list[SpanRecord] = []
        if req.root_id:
            obs_spans.emit(
                "serve.request",
                req.start_ns,
                end_ns,
                span_id=req.root_id,
                parent_id=0,
                rid=req.rid,
                op=req.op,
                status=req.fields.get("status"),
                ok=ok,
            )
            for rec in req.extra_spans:
                obs_spans.emit(
                    rec.name,
                    rec.start_ns,
                    rec.end_ns,
                    span_id=rec.span_id,
                    parent_id=rec.parent_id,
                    thread=rec.thread,
                    **rec.attrs,
                )
            tree = obs_spans.take_tree(req.root_id)
            with self._lock:
                self._inflight.pop(req.root_id, None)
                self._finished += 1
                sweep = self._finished % _PRUNE_EVERY == 0
                keep = set(self._inflight)
            if sweep:
                obs_spans.prune(keep, end_ns - _PRUNE_AGE_NS)
        else:
            with self._lock:
                self._finished += 1

        entry: dict[str, Any] = {
            "rid": req.rid,
            "op": req.op,
            "ts": round(time.time(), 3),
            "ok": bool(ok),
            "wall_ms": round(wall_ms, 3),
            "spans": len(tree),
        }
        if tree:
            entry["span_names"] = sorted({r.name for r in tree})
        if error:
            entry["error"] = error
        entry.update(req.fields)

        # -- metrics -----------------------------------------------------
        status = req.fields.get("status")
        reg.counter("serve.requests_total", 1, op=req.op)
        reg.histogram("serve.latency_ms", wall_ms, op=req.op)
        if status:
            reg.counter("serve.status_total", 1, status=status)
            reg.histogram(
                "serve.latency_ms", wall_ms, op=req.op, status=status
            )
        if not ok:
            reg.counter("serve.errors_total", 1, op=req.op)
        for field, metric in (
            ("queue_wait_ms", "serve.queue_wait_ms"),
            ("compile_ms", "serve.compile_ms"),
            ("run_ms", "serve.run_ms"),
        ):
            value = req.fields.get(field)
            if value is not None:
                labels = {"status": status} if status else {}
                reg.histogram(metric, float(value), **labels)
        for field in ("bytes_in", "bytes_out"):
            value = req.fields.get(field)
            if value is not None:
                reg.counter(f"serve.{field}_total", int(value))
        reg.gauge("serve.inflight", len(self._inflight))

        self.recent.append(entry)
        if self.log is not None:
            self.log.append(entry)
        if self.trace_dir and tree:
            self._write_trace(req.rid, tree, entry)
        return entry

    def _write_trace(
        self, rid: str, tree: list[SpanRecord], entry: dict
    ) -> None:
        path = os.path.join(self.trace_dir, f"request-{rid}.json")
        try:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(request_trace_document(rid, tree, entry), fh)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def uptime_s(self) -> float:
        return (time.monotonic_ns() - self.started_ns) / 1e9

    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def requests(self, n: int | None = None) -> list[dict]:
        """The last ``n`` finished requests, oldest first."""
        with self._lock:
            rows = list(self.recent)
        if n is not None:
            rows = rows[-max(0, int(n)):]
        return rows

    def health(self) -> dict[str, Any]:
        reg = self.registry
        total = 0.0
        errors = 0.0
        doc = reg.as_dict()
        for key, value in doc["counters"].items():
            if key.startswith("serve.requests_total"):
                total += value
            elif key.startswith("serve.errors_total"):
                errors += value
        return {
            "ok": True,
            "uptime_s": round(self.uptime_s(), 3),
            "started_at": self.started_at,
            "inflight": self.inflight(),
            "requests_total": total,
            "errors_total": errors,
        }

    def close(self) -> None:
        if self.log is not None:
            self.log.close()
