"""Live runtime event collection for the tasking backends.

The simulator predicts schedules; this module records what *actually*
happened when a task program ran on the thread or process backends:
per-task start/finish timestamps, the executing worker, steal markers
and queue-depth samples.  The resulting :class:`RuntimeTrace` renders as
its own lane group in the Chrome/Perfetto document next to the simulated
schedule (see :mod:`repro.bench.trace`), which is what makes
simulated-vs-measured comparison possible at all.

Collection is opt-in and near-zero cost when off: backends fetch the
active collector once per :meth:`run` (``current()`` returns ``None``
when disabled) and skip every timestamp when there is none.

Clock domains
-------------
All timestamps are :func:`time.monotonic_ns` **relative to the
collector's epoch** (taken on the parent at activation).  Threads share
the parent's clock, so thread events need no correction.  Worker
*processes* read their own ``monotonic_ns`` — on mainstream platforms
this is the same system-wide clock, but the Chrome-trace contract here
must not depend on that, and ``perf_counter`` (the previous timing
source of the execution layer) explicitly shares no epoch across
processes.  Each worker's offset is therefore *calibrated* from message
round-trips: for a batch submitted at parent time ``s``, received back
at parent time ``r``, whose worker clock read ``a`` on receipt and
``b`` on completion, the true offset ``o`` (worker clock minus parent
clock) satisfies ``a >= s + o`` and ``b <= r + o``, i.e.
``b - r <= o <= a - s``.  Intersecting these intervals over all batches
a worker handled and taking the midpoint gives a bounded-error offset
(exact up to half the fastest round-trip), applied before any worker
timestamp is surfaced.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "RuntimeCollector",
    "RuntimeTrace",
    "TaskEvent",
    "WorkerClock",
    "collecting",
    "current",
]


@dataclass(frozen=True)
class TaskEvent:
    """One executed task (block), on the parent's clock."""

    tid: int  # creation-order task id (aligns with TaskGraph tasks)
    statement: str
    worker: int  # worker lane index (thread index / per-pid index)
    start_ns: int  # relative to the collector epoch
    end_ns: int
    stolen: bool = False
    pid: int | None = None  # OS pid for process workers

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class WorkerClock:
    """Calibration state of one worker process's monotonic clock."""

    pid: int
    worker: int  # assigned lane index
    #: offset bounds (worker_ns - parent_ns): lo from completions,
    #: hi from receipts; the truth lies in [lo, hi].
    lo_ns: float = float("-inf")
    hi_ns: float = float("inf")
    samples: int = 0

    def observe(
        self, submit_ns: int, recv_ns: int, first_ns: int, last_ns: int
    ) -> None:
        """Tighten the offset interval with one round-trip observation."""
        self.samples += 1
        self.lo_ns = max(self.lo_ns, last_ns - recv_ns)
        self.hi_ns = min(self.hi_ns, first_ns - submit_ns)

    @property
    def offset_ns(self) -> int:
        """Best offset estimate (interval midpoint; 0 if unobserved)."""
        if self.samples == 0:
            return 0
        lo, hi = self.lo_ns, self.hi_ns
        if lo == float("-inf"):
            lo = hi
        if hi == float("inf"):
            hi = lo
        if lo > hi:  # inconsistent observations; trust completions
            return int(lo)
        return int((lo + hi) / 2)

    @property
    def uncertainty_ns(self) -> int:
        """Half-width of the offset interval (0 when degenerate)."""
        if (
            self.samples == 0
            or self.lo_ns == float("-inf")
            or self.hi_ns == float("inf")
            or self.lo_ns > self.hi_ns
        ):
            return 0
        return int((self.hi_ns - self.lo_ns) / 2)

    def as_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "worker": self.worker,
            "offset_ns": self.offset_ns,
            "uncertainty_ns": self.uncertainty_ns,
            "samples": self.samples,
        }


@dataclass
class RuntimeTrace:
    """Everything one collected run recorded."""

    backend: str
    workers: int
    epoch_ns: int
    events: list[TaskEvent] = field(default_factory=list)
    #: (t_ns, worker, depth) queue-depth samples (thread backend)
    queue_depth: list[tuple[int, int, int]] = field(default_factory=list)
    #: pid -> clock calibration (process backend)
    clocks: dict[int, WorkerClock] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def makespan_ns(self) -> int:
        """Last finish minus first start over all events (0 if empty)."""
        if not self.events:
            return 0
        return max(e.end_ns for e in self.events) - min(
            e.start_ns for e in self.events
        )

    def worker_utilization(self) -> float:
        """Busy time over (makespan × lanes actually used)."""
        if not self.events:
            return 0.0
        span = self.makespan_ns
        if span == 0:
            return 1.0
        lanes = len({e.worker for e in self.events})
        busy = sum(e.duration_ns for e in self.events)
        return busy / (span * lanes)

    def expand_members(
        self,
        members: tuple,
        weights=None,
        statements=None,
    ) -> "RuntimeTrace":
        """Expand merged-chain events back onto unfused-graph task ids.

        ``members[t]`` lists the unfused task ids that backend task
        ``t`` executed (:attr:`ExecutionStats.task_members`).  A merged
        event becomes one synthetic event per member, contiguous in
        time, its duration divided proportionally to ``weights[member]``
        (e.g. graph task costs; equal split when absent or degenerate);
        worker lane, steal flag and pid are preserved.  ``statements``
        (member id -> name) restores per-statement attribution that the
        merged ``"S+T"`` label obscures.  Events with ids outside
        ``members`` pass through unchanged.
        """
        if not members:
            return self
        out: list[TaskEvent] = []
        for e in self.events:
            if not (0 <= e.tid < len(members)):
                out.append(e)
                continue
            mem = members[e.tid]
            w = None
            if weights is not None:
                try:
                    w = [max(0.0, float(weights[m])) for m in mem]
                except (IndexError, KeyError):
                    w = None
                if w is not None and sum(w) <= 0.0:
                    w = None
            if w is None:
                w = [1.0] * len(mem)
            total = sum(w)
            start = e.start_ns
            acc = 0.0
            for i, m in enumerate(mem):
                acc += w[i]
                if i == len(mem) - 1:
                    end = e.end_ns
                else:
                    end = e.start_ns + int(
                        round(e.duration_ns * acc / total)
                    )
                name = e.statement
                if statements is not None:
                    try:
                        name = statements[m]
                    except (IndexError, KeyError):
                        pass
                out.append(
                    TaskEvent(
                        tid=m,
                        statement=name,
                        worker=e.worker,
                        start_ns=start,
                        end_ns=end,
                        stolen=e.stolen,
                        pid=e.pid,
                    )
                )
                start = end
        return RuntimeTrace(
            backend=self.backend,
            workers=self.workers,
            epoch_ns=self.epoch_ns,
            events=out,
            queue_depth=self.queue_depth,
            clocks=self.clocks,
            counters=dict(self.counters),
        )

    def summary_dict(self) -> dict[str, Any]:
        """Compact JSON form (aggregates, not per-event rows)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "events": len(self.events),
            "makespan_ns": self.makespan_ns,
            "utilization": round(self.worker_utilization(), 4),
            "queue_samples": len(self.queue_depth),
            "counters": dict(self.counters),
            "clocks": {
                str(pid): clock.as_dict()
                for pid, clock in sorted(self.clocks.items())
            },
        }

    def to_trace_events(self, pid: int = 2) -> list[dict[str, Any]]:
        """Chrome trace events for the measured lanes.

        One ``X`` event per task on its worker's lane (ts µs from the
        first event), ``C`` counter events for queue-depth samples.
        """
        if not self.events:
            return []
        origin = min(e.start_ns for e in self.events)
        lanes = sorted({e.worker for e in self.events})
        events: list[dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": w,
                "args": {"name": f"{self.backend} worker {w}"},
            }
            for w in lanes
        ]
        for e in self.events:
            args: dict[str, Any] = {"task": e.tid, "statement": e.statement}
            if e.stolen:
                args["stolen"] = True
            if e.pid is not None:
                args["os_pid"] = e.pid
            events.append(
                {
                    "name": e.statement,
                    "cat": "measured",
                    "ph": "X",
                    "ts": (e.start_ns - origin) / 1e3,
                    "dur": max(e.duration_ns, 0) / 1e3,
                    "pid": pid,
                    "tid": e.worker,
                    "args": args,
                }
            )
        for t_ns, worker, depth in self.queue_depth:
            events.append(
                {
                    "name": f"queue depth w{worker}",
                    "ph": "C",
                    "ts": max(t_ns - origin, 0) / 1e3,
                    "pid": pid,
                    "tid": worker,
                    "args": {"depth": depth},
                }
            )
        return events


class RuntimeCollector:
    """Thread-safe event sink handed to a backend for one run."""

    def __init__(self, backend: str, workers: int):
        self.backend = backend
        self.workers = workers
        self.epoch_ns = time.monotonic_ns()
        self._lock = threading.Lock()
        self._events: list[TaskEvent] = []
        self._queue: list[tuple[int, int, int]] = []
        self._clocks: dict[int, WorkerClock] = {}
        self._counters: dict[str, int] = {}

    # -- hot path -------------------------------------------------------
    def now_ns(self) -> int:
        """Parent-clock timestamp relative to the epoch."""
        return time.monotonic_ns() - self.epoch_ns

    def record(
        self,
        tid: int,
        statement: str,
        worker: int,
        start_ns: int,
        end_ns: int,
        stolen: bool = False,
        pid: int | None = None,
    ) -> None:
        event = TaskEvent(tid, statement, worker, start_ns, end_ns, stolen, pid)
        with self._lock:
            self._events.append(event)

    def queue_sample(self, worker: int, depth: int) -> None:
        with self._lock:
            self._queue.append((self.now_ns(), worker, depth))

    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    # -- process-worker calibration ------------------------------------
    def worker_clock(self, pid: int) -> WorkerClock:
        """The calibration record for an OS pid (lane assigned on first use)."""
        with self._lock:
            clock = self._clocks.get(pid)
            if clock is None:
                clock = WorkerClock(pid=pid, worker=len(self._clocks))
                self._clocks[pid] = clock
            return clock

    def record_process_batch(
        self,
        tids: list[int],
        pid: int,
        submit_ns: int,
        recv_ns: int,
        batch_first_ns: int,
        batch_last_ns: int,
        timings: list[tuple[str, int, int]],
    ) -> None:
        """Absorb one completed process batch (raw worker clock values).

        ``timings`` rows are ``(statement, start_ns, end_ns)`` on the
        *worker's* clock; ``batch_first_ns``/``batch_last_ns`` bracket
        the whole batch on that clock.  ``submit_ns``/``recv_ns`` are
        collector-relative parent timestamps of the round-trip.  The
        events are stored raw and rebased in :meth:`trace` once the
        worker's offset interval has absorbed every observation.
        """
        clock = self.worker_clock(pid)
        clock.observe(submit_ns, recv_ns, batch_first_ns, batch_last_ns)
        with self._lock:
            for tid, (statement, start_ns, end_ns) in zip(tids, timings):
                # raw worker clock for now; rebased in trace()
                self._events.append(
                    TaskEvent(
                        tid, statement, clock.worker, start_ns, end_ns,
                        pid=pid,
                    )
                )

    # -- results --------------------------------------------------------
    def trace(self) -> RuntimeTrace:
        """Finalize: rebase process events onto the parent clock."""
        with self._lock:
            events = []
            for e in self._events:
                if e.pid is not None and e.pid in self._clocks:
                    off = self._clocks[e.pid].offset_ns
                    events.append(
                        TaskEvent(
                            e.tid,
                            e.statement,
                            e.worker,
                            e.start_ns - off,
                            e.end_ns - off,
                            e.stolen,
                            e.pid,
                        )
                    )
                else:
                    events.append(e)
            events.sort(key=lambda e: (e.start_ns, e.tid))
            return RuntimeTrace(
                backend=self.backend,
                workers=self.workers,
                epoch_ns=self.epoch_ns,
                events=events,
                queue_depth=list(self._queue),
                clocks=dict(self._clocks),
                counters=dict(self._counters),
            )


_CURRENT: list[RuntimeCollector | None] = [None]


def current() -> RuntimeCollector | None:
    """The active collector, or ``None`` when collection is off."""
    return _CURRENT[0]


class _Collecting:
    def __init__(self, backend: str, workers: int):
        self._backend = backend
        self._workers = workers

    def __enter__(self) -> RuntimeCollector:
        self._prev = _CURRENT[0]
        collector = RuntimeCollector(self._backend, self._workers)
        _CURRENT[0] = collector
        return collector

    def __exit__(self, *exc) -> bool:
        _CURRENT[0] = self._prev
        return False


def collecting(backend: str, workers: int) -> _Collecting:
    """``with collecting("threads", 4) as col:`` — activate collection."""
    return _Collecting(backend, workers)
