"""Unified observability layer: spans, runtime events, metrics, profiling.

Four cooperating pieces (see ``docs/observability.md``):

* :mod:`~repro.obs.spans` — hierarchical compile-phase spans with
  Presburger-op attribution; near-zero cost while disabled.
* :mod:`~repro.obs.runtime` — live per-task event collection inside the
  tasking backends, including calibrated clock offsets for worker
  processes.
* :mod:`~repro.obs.metrics` — a counters/gauges/histograms registry that
  absorbs the four legacy stat records behind one stable JSON export.
* :mod:`~repro.obs.profile` — the critical-path profiler joining the
  task DAG, measured timings and the simulator's prediction
  (``repro profile``).
"""

from .metrics import (
    Histogram,
    MetricsRegistry,
    absorb_artifact_store,
    absorb_execution,
    absorb_presburger_cache,
    absorb_simulation,
    absorb_task_overhead,
    default_registry,
)
from .runtime import (
    RuntimeCollector,
    RuntimeTrace,
    TaskEvent,
    WorkerClock,
    collecting,
)
from .spans import (
    SpanRecord,
    phase_breakdown,
    recording,
    span,
    spans_to_trace_events,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "RuntimeCollector",
    "RuntimeTrace",
    "SpanRecord",
    "TaskEvent",
    "WorkerClock",
    "absorb_artifact_store",
    "absorb_execution",
    "absorb_presburger_cache",
    "absorb_simulation",
    "absorb_task_overhead",
    "collecting",
    "default_registry",
    "phase_breakdown",
    "recording",
    "span",
    "spans_to_trace_events",
]
