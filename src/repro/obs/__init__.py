"""Unified observability layer: spans, runtime events, metrics, profiling.

Six cooperating pieces (see ``docs/observability.md``):

* :mod:`~repro.obs.spans` — hierarchical compile-phase spans with
  Presburger-op attribution; near-zero cost while disabled.
* :mod:`~repro.obs.runtime` — live per-task event collection inside the
  tasking backends, including calibrated clock offsets for worker
  processes.
* :mod:`~repro.obs.metrics` — a counters/gauges/histograms registry
  (bounded-bucket latency histograms with p50/p95/p99 estimates and a
  Prometheus text export) that absorbs the legacy stat records behind
  one stable JSON export.
* :mod:`~repro.obs.profile` — the critical-path profiler joining the
  task DAG, measured timings and the simulator's prediction
  (``repro profile``).
* :mod:`~repro.obs.service` — request-scoped telemetry for the compile
  service: per-request root spans, a rotating JSONL request log, and
  per-verb/per-cache-status latency series.
* :mod:`~repro.obs.live` — ``repro top``, the poll-based terminal live
  monitor over the ``health``/``metrics``/``requests`` verbs.
"""

from .live import TopSnapshot, poll_snapshot, render_top, run_top
from .metrics import (
    Histogram,
    MetricsRegistry,
    absorb_artifact_store,
    absorb_execution,
    absorb_presburger_cache,
    absorb_simulation,
    absorb_task_overhead,
    default_registry,
    parse_series_key,
)
from .service import RequestLog, RequestTelemetry, request_trace_document
from .runtime import (
    RuntimeCollector,
    RuntimeTrace,
    TaskEvent,
    WorkerClock,
    collecting,
)
from .spans import (
    SpanRecord,
    phase_breakdown,
    recording,
    span,
    spans_to_trace_events,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "RequestLog",
    "RequestTelemetry",
    "RuntimeCollector",
    "RuntimeTrace",
    "SpanRecord",
    "TaskEvent",
    "TopSnapshot",
    "WorkerClock",
    "absorb_artifact_store",
    "absorb_execution",
    "absorb_presburger_cache",
    "absorb_simulation",
    "absorb_task_overhead",
    "collecting",
    "default_registry",
    "parse_series_key",
    "phase_breakdown",
    "poll_snapshot",
    "recording",
    "render_top",
    "request_trace_document",
    "run_top",
    "span",
    "spans_to_trace_events",
]
