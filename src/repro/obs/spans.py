"""Hierarchical compile-phase spans.

A *span* wraps one phase of the compilation pipeline — parse, SCoP
extraction, dependence analysis, pipeline-map construction, blocking,
transitive reduction, schedule-tree building, codegen — and records its
wall time, nesting and thread.  Instrumentation sites call::

    with span("pipeline.maps"):
        ...

unconditionally; when recording is *disabled* (the default) ``span()``
returns a shared no-op context manager and the cost is one module-level
flag test plus an attribute lookup — cheap enough to leave in every hot
call site (the performance guard in ``tests/test_performance_guard.py``
bounds it below 3% of a serial P5 run).

When recording is enabled (``enable()`` or the :func:`recording` context
manager), each span captures:

* ``start_ns`` / ``end_ns`` on :func:`time.monotonic_ns`,
* its parent span (a thread-local stack gives nesting for free),
* the recording thread (so spans from worker threads land in their own
  trace lane), and
* **Presburger-op attribution**: the delta of
  :func:`repro.presburger.cache.op_call_counts` across the span, i.e.
  how many ``intersect`` / ``lexmax`` / ``apply`` / … calls ran inside
  this phase.  This is what turns a phase-time breakdown into an
  explanation — the dependence phase is slow *because* of 12k
  ``intersect`` calls, not by fiat.

Spans are process-local; worker processes of the tasking layer report
runtime events through :mod:`repro.obs.runtime` instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "SpanRecord",
    "allocate_span_id",
    "clear",
    "current_span_id",
    "disable",
    "emit",
    "enable",
    "enabled",
    "parented",
    "prune",
    "records",
    "recording",
    "span",
    "spans_to_trace_events",
    "take_tree",
]

#: Module-level fast flag — the *only* cost of a disabled span() call
#: besides allocating nothing (the no-op manager is a singleton).
_ENABLED = False

_LOCK = threading.Lock()
_RECORDS: list["SpanRecord"] = []
_TLS = threading.local()
_NEXT_ID = [1]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span."""

    span_id: int
    parent_id: int  # 0 = top level
    name: str
    start_ns: int
    end_ns: int
    thread: str
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Presburger op name -> calls attributed to this span (delta of the
    #: cache counters across the span, children included).
    presburger_ops: dict[str, int] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "presburger_ops": dict(self.presburger_ops),
        }


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL = _NullSpan()


def _op_calls() -> dict[str, int] | None:
    """Current Presburger op-call counters (None if unavailable)."""
    try:
        from ..presburger.cache import op_call_counts
    except Exception:  # pragma: no cover — presburger always importable
        return None
    return op_call_counts()


class _Span:
    """A live (recording) span; created only when recording is enabled."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_start", "_ops0")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = getattr(_TLS, "stack", None)
        if stack is None:
            stack = _TLS.stack = []
        with _LOCK:
            self.span_id = _NEXT_ID[0]
            _NEXT_ID[0] += 1
        self.parent_id = stack[-1] if stack else 0
        stack.append(self.span_id)
        self._ops0 = _op_calls()
        self._start = time.monotonic_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.monotonic_ns()
        ops1 = _op_calls()
        delta: dict[str, int] = {}
        if self._ops0 is not None and ops1 is not None:
            for op, calls in ops1.items():
                d = calls - self._ops0.get(op, 0)
                if d:
                    delta[op] = d
        stack = _TLS.stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_ns=self._start,
            end_ns=end,
            thread=threading.current_thread().name,
            attrs=self.attrs,
            presburger_ops=delta,
        )
        with _LOCK:
            _RECORDS.append(record)
        return False


def span(name: str, **attrs):
    """Open a (possibly no-op) span named ``name``.

    Returns a context manager.  ``attrs`` become span attributes; more
    can be attached inside the block via ``.set(key=value)``.
    """
    if not _ENABLED:
        return _NULL
    return _Span(name, attrs)


def enabled() -> bool:
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def clear() -> None:
    """Drop all recorded spans (does not change the enabled flag)."""
    with _LOCK:
        _RECORDS.clear()


def records() -> list[SpanRecord]:
    """Snapshot of all closed spans, in completion order."""
    with _LOCK:
        return list(_RECORDS)


def current_span_id() -> int:
    """Id of the innermost open span on this thread (0 at top level)."""
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else 0


def allocate_span_id() -> int:
    """Reserve a span id without opening a span.

    The serve path uses this for per-request *root* spans: the id is
    handed to worker threads (via :func:`parented`) while the request is
    in flight, and the root record itself is emitted at request end with
    :func:`emit` — opening a context-managed span on the event loop
    thread would let concurrent requests nest under each other.
    """
    with _LOCK:
        span_id = _NEXT_ID[0]
        _NEXT_ID[0] += 1
    return span_id


def emit(
    name: str,
    start_ns: int,
    end_ns: int,
    span_id: int | None = None,
    parent_id: int = 0,
    thread: str | None = None,
    **attrs,
) -> int:
    """Append a manually-constructed span record (no-op when disabled).

    Returns the record's span id (0 when recording is disabled).  Used
    for spans whose lifetime does not follow stack discipline on one
    thread: per-request roots and replayed runtime task events.
    """
    if not _ENABLED:
        return 0
    if span_id is None:
        span_id = allocate_span_id()
    record = SpanRecord(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start_ns=start_ns,
        end_ns=end_ns,
        thread=thread or threading.current_thread().name,
        attrs=attrs,
    )
    with _LOCK:
        _RECORDS.append(record)
    return span_id


class _Parented:
    """Push an explicit parent id onto this thread's span stack."""

    __slots__ = ("_parent",)

    def __init__(self, parent_id: int):
        self._parent = parent_id

    def __enter__(self) -> "_Parented":
        stack = getattr(_TLS, "stack", None)
        if stack is None:
            stack = _TLS.stack = []
        stack.append(self._parent)
        return self

    def __exit__(self, *exc) -> bool:
        stack = _TLS.stack
        if stack and stack[-1] == self._parent:
            stack.pop()
        return False


def parented(parent_id: int) -> _Parented:
    """``with parented(root_id): ...`` — spans opened in the block (on
    this thread) become children of ``root_id``.  This is how the serve
    path threads a request's root span into the compile/run worker
    threads, whose thread-local stacks start empty."""
    return _Parented(parent_id)


def take_tree(root_id: int) -> list[SpanRecord]:
    """Remove and return every closed span in the subtree of ``root_id``
    (the root record included, when present).

    Children close before their ancestors, so by the time a request's
    root record has been emitted the whole subtree is in the buffer.
    Draining per request is what keeps the global record list bounded
    over a long-lived server.
    """
    with _LOCK:
        ids = {root_id}
        grew = True
        while grew:
            grew = False
            for r in _RECORDS:
                if r.parent_id in ids and r.span_id not in ids:
                    ids.add(r.span_id)
                    grew = True
        taken = [r for r in _RECORDS if r.span_id in ids]
        _RECORDS[:] = [r for r in _RECORDS if r.span_id not in ids]
    return taken


def prune(keep_roots: set[int], before_ns: int) -> int:
    """Drop closed spans that ended before ``before_ns`` and whose
    topmost known ancestor is not anchored in ``keep_roots``.

    A long-lived server drains each request's subtree with
    :func:`take_tree`; spans recorded outside any request (store gc
    sweeps, background work) would otherwise accumulate forever.  Spans
    belonging to an in-flight request are safe: their ancestor chain
    reaches the request's (not-yet-emitted) root id, which the caller
    passes in ``keep_roots``.  Returns how many records were dropped.
    """
    with _LOCK:
        byid = {r.span_id: r for r in _RECORDS}
        keep: list[SpanRecord] = []
        dropped = 0
        for r in _RECORDS:
            cur = r
            seen = {cur.span_id}
            while cur.parent_id in byid and cur.parent_id not in seen:
                cur = byid[cur.parent_id]
                seen.add(cur.span_id)
            anchored = (
                cur.span_id in keep_roots or cur.parent_id in keep_roots
            )
            if anchored or r.end_ns >= before_ns:
                keep.append(r)
            else:
                dropped += 1
        _RECORDS[:] = keep
    return dropped


class _Recording:
    """Context manager enabling span recording and yielding the records."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []

    def __enter__(self) -> "_Recording":
        self._prev = _ENABLED
        with _LOCK:
            self._mark = len(_RECORDS)
        enable()
        return self

    def __exit__(self, *exc) -> bool:
        global _ENABLED
        _ENABLED = self._prev
        with _LOCK:
            self.spans = _RECORDS[self._mark:]
        return False


def recording() -> _Recording:
    """``with recording() as rec:`` — enable spans for the block.

    ``rec.spans`` holds every span closed inside the block; the previous
    enabled/disabled state is restored on exit.
    """
    return _Recording()


def spans_to_trace_events(
    spans: list[SpanRecord],
    pid: int = 1,
    origin_ns: int | None = None,
) -> list[dict[str, Any]]:
    """Chrome trace events (``X`` complete events) for a span list.

    Spans obey stack discipline per thread, so complete events nest
    correctly in Perfetto.  Timestamps are µs relative to ``origin_ns``
    (default: the earliest span start).
    """
    if not spans:
        return []
    if origin_ns is None:
        origin_ns = min(s.start_ns for s in spans)
    threads = sorted({s.thread for s in spans})
    tids = {name: k for k, name in enumerate(threads)}
    events: list[dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tids[name],
            "args": {"name": name},
        }
        for name in threads
    ]
    for s in spans:
        args: dict[str, Any] = dict(s.attrs)
        if s.presburger_ops:
            args["presburger_ops"] = dict(s.presburger_ops)
            args["presburger_calls"] = sum(s.presburger_ops.values())
        events.append(
            {
                "name": s.name,
                "cat": "compile",
                "ph": "X",
                "ts": (s.start_ns - origin_ns) / 1e3,
                "dur": s.duration_ns / 1e3,
                "pid": pid,
                "tid": tids[s.thread],
                "args": args,
            }
        )
    return events


def phase_breakdown(spans: list[SpanRecord]) -> dict[str, dict[str, Any]]:
    """Aggregate spans by name: total/self time and Presburger calls.

    *Self* time excludes the time covered by direct children, so the sum
    of self times over a well-nested run equals the root wall time.
    """
    children_ns: dict[int, int] = {}
    for s in spans:
        children_ns[s.parent_id] = children_ns.get(s.parent_id, 0) + (
            s.duration_ns
        )
    out: dict[str, dict[str, Any]] = {}
    for s in spans:
        agg = out.setdefault(
            s.name,
            {"count": 0, "total_ns": 0, "self_ns": 0, "presburger_calls": 0},
        )
        agg["count"] += 1
        agg["total_ns"] += s.duration_ns
        agg["self_ns"] += s.duration_ns - children_ns.get(s.span_id, 0)
        agg["presburger_calls"] += sum(s.presburger_ops.values())
    return out
