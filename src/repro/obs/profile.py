"""Critical-path profiler over measured task executions.

Combines three records the observability layer now produces for one run
— the task DAG (creation-order ids shared with the backends), the
measured per-task timings of :mod:`repro.obs.runtime`, and the
simulator's prediction — into one report:

* the **measured critical path**: the longest duration-weighted chain
  through the DAG, i.e. the tasks that actually bounded the run;
* **per-statement self-time** (where the milliseconds went);
* **simulated-vs-measured divergence**: the simulator predicts a
  makespan in abstract cost units; scaling those units by the measured
  per-unit execution time (total busy time / total cost) yields a
  predicted wall makespan to hold against the measured one;
* **top slack blocks**: tasks whose longest path through them falls
  furthest short of the makespan — the safest candidates for coarsening
  or for soaking up stolen work.

``repro profile <kernel>`` is the CLI entry (see :mod:`repro.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ProfileReport", "profile_kernel", "profile_run"]


@dataclass(frozen=True)
class ProfileReport:
    """What one profiled run measured, and how the prediction compares."""

    backend: str
    workers: int
    tasks: int
    events: int
    measured_wall_s: float
    measured_makespan_s: float
    #: duration-weighted longest chain: (tid, statement, block, dur_ms)
    critical_path: list[tuple[int, str, int, float]]
    critical_path_s: float
    #: statement -> {"tasks": n, "self_s": s, "share": fraction,
    #: "mode": fused|vectorized|interp}
    statements: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: (tid, statement, block, slack_ms), most slack first
    top_slack: list[tuple[int, str, int, float]] = field(default_factory=list)
    sim_makespan_units: float = 0.0
    sim_policy: str = "fifo"
    predicted_makespan_s: float = 0.0
    clock_calibration: dict[str, Any] = field(default_factory=dict)

    @property
    def makespan_delta(self) -> float:
        """(measured - predicted) / predicted; 0 when unpredicable."""
        if self.predicted_makespan_s <= 0:
            return 0.0
        return (
            self.measured_makespan_s - self.predicted_makespan_s
        ) / self.predicted_makespan_s

    def as_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "tasks": self.tasks,
            "events": self.events,
            "measured_wall_s": round(self.measured_wall_s, 6),
            "measured_makespan_s": round(self.measured_makespan_s, 6),
            "critical_path_s": round(self.critical_path_s, 6),
            "critical_path": [
                {
                    "task": tid,
                    "statement": stmt,
                    "block": block,
                    "duration_ms": round(dur, 4),
                }
                for tid, stmt, block, dur in self.critical_path
            ],
            "statements": {
                name: {
                    "tasks": int(row["tasks"]),
                    "self_s": round(row["self_s"], 6),
                    "share": round(row["share"], 4),
                    "mode": row.get("mode", "interp"),
                }
                for name, row in self.statements.items()
            },
            "top_slack": [
                {
                    "task": tid,
                    "statement": stmt,
                    "block": block,
                    "slack_ms": round(slack, 4),
                }
                for tid, stmt, block, slack in self.top_slack
            ],
            "sim_makespan_units": self.sim_makespan_units,
            "sim_policy": self.sim_policy,
            "predicted_makespan_s": round(self.predicted_makespan_s, 6),
            "makespan_delta": round(self.makespan_delta, 4),
            "clock_calibration": self.clock_calibration,
        }

    def format(self, top: int = 5) -> str:
        lines = [
            f"profile: {self.backend} backend, {self.workers} workers, "
            f"{self.tasks} tasks ({self.events} measured events)",
            f"  measured wall time      {self.measured_wall_s * 1e3:9.2f} ms",
            f"  measured makespan       "
            f"{self.measured_makespan_s * 1e3:9.2f} ms",
            f"  predicted makespan      "
            f"{self.predicted_makespan_s * 1e3:9.2f} ms "
            f"(simulated {self.sim_makespan_units:g} units, "
            f"{self.sim_policy})",
            f"  simulated-vs-measured   {100.0 * self.makespan_delta:+9.1f} %",
        ]
        lines.append(
            f"  critical path           {self.critical_path_s * 1e3:9.2f} ms"
            f" over {len(self.critical_path)} tasks"
        )
        shown = self.critical_path
        if len(shown) > 2 * top:
            shown = shown[:top] + [None] + shown[-top:]
        for row in shown:
            if row is None:
                lines.append("    ...")
                continue
            tid, stmt, block, dur = row
            lines.append(
                f"    task {tid:>5}  {stmt}#{block:<5} {dur:8.3f} ms"
            )
        lines.append("  per-statement self time:")
        for name, row in sorted(
            self.statements.items(), key=lambda kv: -kv[1]["self_s"]
        ):
            lines.append(
                f"    {name:<12} {row['self_s'] * 1e3:9.2f} ms "
                f"({100.0 * row['share']:5.1f}%, "
                f"{int(row['tasks'])} tasks, "
                f"{row.get('mode', 'interp')})"
            )
        if self.top_slack:
            lines.append(f"  top slack blocks (coarsening candidates):")
            for tid, stmt, block, slack in self.top_slack[:top]:
                lines.append(
                    f"    task {tid:>5}  {stmt}#{block:<5} "
                    f"slack {slack:8.3f} ms"
                )
        if self.clock_calibration:
            lines.append(
                "  process clock offsets: "
                + ", ".join(
                    f"pid {pid}: {row['offset_ns']}ns "
                    f"(±{row['uncertainty_ns']}ns)"
                    for pid, row in sorted(self.clock_calibration.items())
                )
            )
        return "\n".join(lines)


def profile_run(graph, sim, stats, top: int = 10) -> ProfileReport:
    """Build a report from an already-measured run.

    ``graph`` is the task DAG whose creation order matches the backend's
    task ids, ``sim`` the simulator prediction for the same graph and
    worker count, ``stats`` an :class:`~repro.interp.executor.ExecutionStats`
    with a collected :attr:`events` trace.
    """
    trace = stats.events
    if trace is None:
        raise ValueError(
            "profile_run needs an ExecutionStats with collected events "
            "(execute_measured(..., collect_events=True))"
        )
    members = tuple(getattr(stats, "task_members", ()) or ())
    if members:
        # Merged-chain events carry backend ids and "S+T" labels; expand
        # them onto the unfused graph so attribution stays per-statement.
        trace = trace.expand_members(
            members,
            weights=[t.cost for t in graph.tasks],
            statements=[t.statement for t in graph.tasks],
        )
    n = len(graph)
    dur_ns = [0] * n
    for e in trace.events:
        if 0 <= e.tid < n:
            dur_ns[e.tid] = max(e.duration_ns, 0)

    order = graph.topological_order()
    # Longest duration-weighted path down to each task (inclusive)...
    down = [0] * n
    parent = [-1] * n
    for tid in order:
        down[tid] += dur_ns[tid]
        for s in graph.succs[tid]:
            if down[tid] > down[s]:
                down[s] = down[tid]
                parent[s] = tid
    # ...and up from each task to an exit (inclusive).
    up = [0] * n
    for tid in reversed(order):
        best = max((up[s] for s in graph.succs[tid]), default=0)
        up[tid] = dur_ns[tid] + best

    end = max(range(n), key=lambda t: down[t], default=0)
    cp_ns = down[end] if n else 0
    path = [end] if n else []
    while path and parent[path[-1]] != -1:
        path.append(parent[path[-1]])
    path.reverse()
    critical = [
        (
            tid,
            graph.tasks[tid].statement,
            graph.tasks[tid].block_id,
            dur_ns[tid] / 1e6,
        )
        for tid in path
    ]

    # Slack: how far the longest path *through* a task falls short of
    # the critical path.  Zero for critical tasks by construction.
    slack_rows = sorted(
        (
            (
                tid,
                graph.tasks[tid].statement,
                graph.tasks[tid].block_id,
                (cp_ns - (down[tid] + up[tid] - dur_ns[tid])) / 1e6,
            )
            for tid in range(n)
        ),
        key=lambda row: -row[3],
    )

    total_busy_ns = sum(dur_ns)
    # Attribute each statement's time to its dispatch path (fused vs
    # vectorized vs interp) so floor drops are measured, not asserted.
    modes = dict(getattr(stats, "dispatch_modes", {}) or {})
    statements: dict[str, dict[str, float]] = {}
    for tid in range(n):
        name = graph.tasks[tid].statement
        row = statements.setdefault(name, {"tasks": 0, "self_s": 0.0})
        row["tasks"] += 1
        row["self_s"] += dur_ns[tid] / 1e9
        row["mode"] = modes.get(name, "interp")
    for row in statements.values():
        row["share"] = (
            row["self_s"] * 1e9 / total_busy_ns if total_busy_ns else 0.0
        )

    total_cost = graph.total_cost()
    unit_s = total_busy_ns / 1e9 / total_cost if total_cost else 0.0
    return ProfileReport(
        backend=stats.backend,
        workers=stats.workers,
        tasks=n,
        events=len(trace.events),
        measured_wall_s=stats.wall_time,
        measured_makespan_s=trace.makespan_ns / 1e9,
        critical_path=critical,
        critical_path_s=cp_ns / 1e9,
        statements=statements,
        top_slack=slack_rows[:top],
        sim_makespan_units=sim.makespan,
        sim_policy=sim.policy,
        predicted_makespan_s=sim.makespan * unit_s,
        clock_calibration={
            str(pid): clock.as_dict()
            for pid, clock in sorted(trace.clocks.items())
        },
    )


def profile_kernel(
    interp,
    info,
    backend: str = "threads",
    workers: int = 4,
    policy: str = "fifo",
    top: int = 10,
) -> ProfileReport:
    """Measure one kernel with event collection and profile the run."""
    from ..interp import execute_measured
    from ..schedule import generate_task_ast
    from ..tasking import TaskGraph, simulate

    graph = TaskGraph.from_task_ast(generate_task_ast(info))
    sim = simulate(graph, workers=workers, policy=policy)
    _, stats = execute_measured(
        interp,
        info,
        backend=backend,
        workers=workers,
        collect_events=True,
    )
    return profile_run(graph, sim, stats, top=top)
