"""Metrics registry: counters, gauges and histograms with labeled series.

Before this module the repository's statistics lived in four unrelated
records, each with its own shape and lifecycle:

* :func:`repro.presburger.cache.stats` — op-cache hit/miss counters,
* :class:`repro.interp.executor.ExecutionStats` — measured runs,
* the task-overhead records (:class:`repro.pipeline.reduce.ReductionStats`,
  :class:`repro.tuning.tuner.TunedPlan`, ``task_graph_stats``), and
* :class:`repro.tasking.simulator.SimResult`.

The registry absorbs all four behind one interface (the ``absorb_*``
functions) without changing a single number: each legacy value becomes a
labeled series like ``presburger.cache.hits`` or
``execution.wall_time_s{backend=processes}``.  The JSON export is
*stable* — series sorted by name then labels, labels serialized
``name{k=v,k2=v2}`` — so artifacts diff cleanly across runs and CI can
upload them verbatim.

A registry is an ordinary object (create as many as you like); the
module also keeps one process-global default for instrumentation sites
that have nowhere to thread a registry through.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "absorb_artifact_store",
    "absorb_execution",
    "absorb_presburger_cache",
    "absorb_simulation",
    "absorb_task_overhead",
    "default_registry",
    "parse_series_key",
    "series_key",
]


def series_key(name: str, labels: Mapping[str, Any]) -> str:
    """Stable text key: ``name`` or ``name{k=v,k2=v2}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`series_key` (label values come back as text)."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


#: Fixed log-spaced bucket upper bounds: three per decade over
#: 1e-9 .. 1e9 (55 finite buckets + one overflow).  The ladder covers
#: nanoseconds-to-gigaseconds regardless of the observed unit, so a
#: histogram's memory is **constant for any uptime** — the property the
#: long-lived serve path depends on.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (k / 3.0) for k in range(-27, 28)
)


def _bucket_index(value: float) -> int:
    """Index of the first bound >= value (len(BUCKET_BOUNDS) = overflow)."""
    if value <= BUCKET_BOUNDS[0]:
        return 0
    # log-position, then correct for float rounding at the boundaries
    idx = int(math.ceil(3.0 * math.log10(value))) + 27
    if idx < 0:
        return 0
    if idx >= len(BUCKET_BOUNDS):
        return len(BUCKET_BOUNDS)
    while idx > 0 and value <= BUCKET_BOUNDS[idx - 1]:
        idx -= 1
    while idx < len(BUCKET_BOUNDS) and value > BUCKET_BOUNDS[idx]:
        idx += 1
    return idx


@dataclass
class Histogram:
    """Bounded summary of observed values: exact count/sum/min/max plus
    fixed log-spaced buckets for quantile estimates.

    No per-observation storage — observing the billionth value costs the
    same memory as the first, which is what a metrics registry inside a
    long-uptime server requires.  Quantiles are estimated by log-linear
    interpolation inside the covering bucket and clamped to the exact
    observed ``[min, max]``, so the relative error is bounded by the
    bucket ratio (one third of a decade, ~2.15x worst case, far less
    for clustered latencies).
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    buckets: list[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.buckets is None:
            self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.buckets[_bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the buckets."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if seen + n >= rank:
                hi = (
                    BUCKET_BOUNDS[i]
                    if i < len(BUCKET_BOUNDS)
                    else self.maximum
                )
                lo = BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
                frac = (rank - seen) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self.minimum), self.maximum)
            seen += n
        return self.maximum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows with trailing empty
        buckets elided (Prometheus ``le`` series; +Inf is implicit as
        :attr:`count`)."""
        rows: list[tuple[float, int]] = []
        seen = 0
        for i, n in enumerate(self.buckets[: len(BUCKET_BOUNDS)]):
            seen += n
            rows.append((BUCKET_BOUNDS[i], seen))
        while len(rows) > 1 and rows[-1][1] == rows[-2][1] == self.count:
            rows.pop()
        while len(rows) > 1 and rows[0][1] == 0 and rows[1][1] == 0:
            rows.pop(0)
        return rows

    def as_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Thread-safe labeled counters/gauges/histograms with JSON export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, Any] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (default 1) to a monotonic counter series."""
        key = series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value, **labels) -> None:
        """Set a gauge series to ``value`` (any JSON-serializable)."""
        key = series_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def histogram(self, name: str, value: float, **labels) -> None:
        """Observe ``value`` in a histogram series."""
        key = series_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    def value(self, name: str, **labels):
        """Current value of a counter or gauge series (None if absent)."""
        key = series_key(name, labels)
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key)

    def histogram_stats(self, name: str, **labels) -> Histogram | None:
        with self._lock:
            return self._histograms.get(series_key(name, labels))

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Stable JSON-ready export (series sorted by key)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    key: hist.as_dict()
                    for key, hist in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def format(self, prefix: str | None = None) -> str:
        """Human-readable dump; ``prefix`` filters series by name."""
        doc = self.as_dict()
        lines: list[str] = []
        for kind in ("counters", "gauges"):
            for key, value in doc[kind].items():
                if prefix and not key.startswith(prefix):
                    continue
                if isinstance(value, float):
                    value = f"{value:g}"
                lines.append(f"  {key} = {value}")
        for key, hist in doc["histograms"].items():
            if prefix and not key.startswith(prefix):
                continue
            lines.append(
                f"  {key} = count={hist['count']} mean={hist['mean']:g} "
                f"min={hist['min']:g} max={hist['max']:g}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def export_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition of every numeric series.

        Counters export as ``counter``, numeric/bool gauges as ``gauge``
        (non-numeric gauges are skipped — Prometheus has no text
        samples), histograms as cumulative ``_bucket{le=...}`` series
        plus ``_sum``/``_count`` *and* p50/p95/p99 ``quantile`` series
        estimated from the fixed buckets.  Names are sanitized to the
        Prometheus charset (``serve.latency_ms`` →
        ``repro_serve_latency_ms``); output is sorted and stable.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: Histogram(
                    count=h.count,
                    total=h.total,
                    minimum=h.minimum,
                    maximum=h.maximum,
                    buckets=list(h.buckets),
                )
                for key, h in self._histograms.items()
            }

        def metric_name(name: str) -> str:
            import re

            return prefix + re.sub(r"[^a-zA-Z0-9_:]", "_", name)

        def label_text(labels: Mapping[str, str], extra: str = "") -> str:
            parts = [
                f'{k}="{v}"' for k, v in sorted(labels.items())
            ]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        def fmt(value: float) -> str:
            if isinstance(value, bool):
                return "1" if value else "0"
            if value == int(value):
                return str(int(value))
            return repr(float(value))

        lines: list[str] = []
        typed: set[str] = set()

        def type_line(mname: str, kind: str) -> None:
            if mname not in typed:
                typed.add(mname)
                lines.append(f"# TYPE {mname} {kind}")

        for key in sorted(counters):
            name, labels = parse_series_key(key)
            mname = metric_name(name)
            type_line(mname, "counter")
            lines.append(f"{mname}{label_text(labels)} {fmt(counters[key])}")
        for key in sorted(gauges):
            value = gauges[key]
            if not isinstance(value, (int, float, bool)):
                continue
            name, labels = parse_series_key(key)
            mname = metric_name(name)
            type_line(mname, "gauge")
            lines.append(f"{mname}{label_text(labels)} {fmt(value)}")
        for key in sorted(histograms):
            hist = histograms[key]
            name, labels = parse_series_key(key)
            mname = metric_name(name)
            type_line(mname, "histogram")
            for bound, cum in hist.cumulative_buckets():
                le = 'le="%g"' % bound
                lines.append(f"{mname}_bucket{label_text(labels, le)} {cum}")
            inf = 'le="+Inf"'
            lines.append(
                f"{mname}_bucket{label_text(labels, inf)} {hist.count}"
            )
            lines.append(f"{mname}_sum{label_text(labels)} {fmt(hist.total)}")
            lines.append(f"{mname}_count{label_text(labels)} {hist.count}")
            for q in (0.5, 0.95, 0.99):
                quant = 'quantile="%g"' % q
                lines.append(
                    f"{mname}{label_text(labels, quant)} "
                    f"{fmt(hist.quantile(q))}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (instrumentation fallback)."""
    return _DEFAULT


# ----------------------------------------------------------------------
# absorbers for the four legacy stat families
# ----------------------------------------------------------------------
def absorb_presburger_cache(reg: MetricsRegistry, stats=None) -> None:
    """Absorb a :class:`repro.presburger.cache.CacheStats` snapshot.

    ``stats=None`` snapshots the process cache.  Numbers are copied
    verbatim: ``presburger.cache.hits`` equals ``stats.hits`` etc., and
    each per-op record becomes ``presburger.op.calls{op=...}`` series.
    """
    if stats is None:
        from ..presburger import cache

        stats = cache.stats()
    reg.gauge("presburger.cache.enabled", bool(stats.enabled))
    reg.gauge("presburger.cache.maxsize", stats.maxsize)
    reg.gauge("presburger.cache.entries", stats.entries)
    reg.gauge("presburger.cache.interned", stats.interned)
    reg.counter("presburger.cache.hits", stats.hits)
    reg.counter("presburger.cache.misses", stats.misses)
    reg.counter("presburger.cache.evictions", stats.evictions)
    reg.counter("presburger.cache.trivial", stats.trivial)
    reg.gauge("presburger.cache.hit_rate", round(stats.hit_rate, 4))
    for op, st in stats.ops.items():
        reg.counter("presburger.op.calls", st.calls, op=op)
        reg.counter("presburger.op.hits", st.hits, op=op)
        reg.counter("presburger.op.misses", st.misses, op=op)
        reg.counter("presburger.op.trivial", st.trivial, op=op)


def absorb_artifact_store(
    reg: MetricsRegistry, counters=None, store=None
) -> None:
    """Absorb the artifact-store cache counters.

    ``counters=None`` snapshots the process-wide session counters (every
    :class:`repro.store.ArtifactStore` in this process, aggregated);
    ``store`` additionally records that store's disk occupancy.
    """
    if counters is None:
        from ..store import session_counters

        counters = session_counters()
    for name in ("hits", "misses", "puts", "evictions", "corrupt"):
        reg.counter(f"store.{name}", counters.get(name, 0))
    reg.counter(
        "store.replay_failures", counters.get("replay_failures", 0)
    )
    looked = counters.get("hits", 0) + counters.get("misses", 0)
    if looked:
        reg.gauge(
            "store.hit_rate", round(counters.get("hits", 0) / looked, 4)
        )
    if store is not None:
        st = store.stats()
        reg.gauge("store.entries", st.entries)
        reg.gauge("store.bytes", st.bytes)


def absorb_execution(reg: MetricsRegistry, stats) -> None:
    """Absorb an :class:`repro.interp.executor.ExecutionStats` record."""
    labels = {"backend": stats.backend}
    reg.gauge("execution.workers", stats.workers, **labels)
    reg.gauge("execution.vectorize", stats.vectorize, **labels)
    reg.gauge("execution.wall_time_s", stats.wall_time, **labels)
    reg.gauge("execution.blocks_total", stats.blocks_total, **labels)
    reg.gauge(
        "execution.blocks_vectorized", stats.blocks_vectorized, **labels
    )
    reg.gauge(
        "execution.iterations_total", stats.iterations_total, **labels
    )
    reg.gauge(
        "execution.iterations_vectorized",
        stats.iterations_vectorized,
        **labels,
    )
    reg.gauge(
        "execution.block_coverage", round(stats.block_coverage, 4), **labels
    )
    reg.gauge(
        "execution.iteration_coverage",
        round(stats.iteration_coverage, 4),
        **labels,
    )
    for stmt, reason in sorted(stats.fallback_reasons.items()):
        reg.gauge(
            "execution.fallback_reason", reason, statement=stmt, **labels
        )
    if stats.scheduler:
        for key, value in sorted(stats.scheduler.items()):
            if isinstance(value, (int, float)):
                reg.gauge(f"execution.scheduler.{key}", value, **labels)
            else:
                reg.gauge(f"execution.scheduler.{key}", str(value), **labels)
    events = getattr(stats, "events", None)
    if events is not None:
        reg.gauge("execution.events", len(events.events), **labels)
        reg.gauge(
            "execution.measured_makespan_s",
            round(events.makespan_ns / 1e9, 6),
            **labels,
        )


def absorb_task_overhead(
    reg: MetricsRegistry,
    task_graph: Mapping[str, Any] | None = None,
    reduction=None,
    tuning=None,
) -> None:
    """Absorb the task-overhead family: graph shape, reduction, tuning.

    ``task_graph`` is the dict of
    :func:`repro.pipeline.reduce.task_graph_stats`; ``reduction`` a
    :class:`~repro.pipeline.reduce.ReductionStats`; ``tuning`` a
    :class:`~repro.tuning.tuner.TunedPlan`.  All optional.
    """
    if task_graph is not None:
        for key, value in task_graph.items():
            if isinstance(value, (int, float)):
                reg.gauge(f"task_graph.{key}", value)
    if reduction is not None:
        for key, value in reduction.as_dict().items():
            if isinstance(value, (int, float)):
                reg.gauge(f"reduction.{key}", value)
    if tuning is not None:
        plan = tuning.as_dict()
        reg.gauge("tuning.mode", plan["mode"])
        reg.gauge("tuning.tasks", plan["tasks"])
        for stmt, factor in sorted(plan["factors"].items()):
            reg.gauge("tuning.factor", factor, statement=stmt)
        for factor, score in plan["scores_s"].items():
            reg.gauge("tuning.score_s", score, factor=factor)


def absorb_simulation(reg: MetricsRegistry, sim, graph=None) -> None:
    """Absorb a :class:`repro.tasking.simulator.SimResult`."""
    labels = {"policy": sim.policy}
    reg.gauge("simulation.makespan", sim.makespan, **labels)
    reg.gauge("simulation.workers", sim.workers, **labels)
    reg.gauge(
        "simulation.utilization", round(sim.utilization(), 4), **labels
    )
    if graph is not None:
        reg.gauge("simulation.tasks", len(graph), **labels)
        total = graph.total_cost()
        reg.gauge("simulation.total_cost", total, **labels)
        if sim.makespan:
            reg.gauge(
                "simulation.speedup",
                round(total / sim.makespan, 4),
                **labels,
            )
