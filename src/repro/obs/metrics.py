"""Metrics registry: counters, gauges and histograms with labeled series.

Before this module the repository's statistics lived in four unrelated
records, each with its own shape and lifecycle:

* :func:`repro.presburger.cache.stats` — op-cache hit/miss counters,
* :class:`repro.interp.executor.ExecutionStats` — measured runs,
* the task-overhead records (:class:`repro.pipeline.reduce.ReductionStats`,
  :class:`repro.tuning.tuner.TunedPlan`, ``task_graph_stats``), and
* :class:`repro.tasking.simulator.SimResult`.

The registry absorbs all four behind one interface (the ``absorb_*``
functions) without changing a single number: each legacy value becomes a
labeled series like ``presburger.cache.hits`` or
``execution.wall_time_s{backend=processes}``.  The JSON export is
*stable* — series sorted by name then labels, labels serialized
``name{k=v,k2=v2}`` — so artifacts diff cleanly across runs and CI can
upload them verbatim.

A registry is an ordinary object (create as many as you like); the
module also keeps one process-global default for instrumentation sites
that have nowhere to thread a registry through.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "absorb_artifact_store",
    "absorb_execution",
    "absorb_presburger_cache",
    "absorb_simulation",
    "absorb_task_overhead",
    "default_registry",
    "series_key",
]


def series_key(name: str, labels: Mapping[str, Any]) -> str:
    """Stable text key: ``name`` or ``name{k=v,k2=v2}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Histogram:
    """Streaming summary of observed values (no sample storage)."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe labeled counters/gauges/histograms with JSON export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, Any] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (default 1) to a monotonic counter series."""
        key = series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value, **labels) -> None:
        """Set a gauge series to ``value`` (any JSON-serializable)."""
        key = series_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def histogram(self, name: str, value: float, **labels) -> None:
        """Observe ``value`` in a histogram series."""
        key = series_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    def value(self, name: str, **labels):
        """Current value of a counter or gauge series (None if absent)."""
        key = series_key(name, labels)
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key)

    def histogram_stats(self, name: str, **labels) -> Histogram | None:
        with self._lock:
            return self._histograms.get(series_key(name, labels))

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Stable JSON-ready export (series sorted by key)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    key: hist.as_dict()
                    for key, hist in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def format(self, prefix: str | None = None) -> str:
        """Human-readable dump; ``prefix`` filters series by name."""
        doc = self.as_dict()
        lines: list[str] = []
        for kind in ("counters", "gauges"):
            for key, value in doc[kind].items():
                if prefix and not key.startswith(prefix):
                    continue
                if isinstance(value, float):
                    value = f"{value:g}"
                lines.append(f"  {key} = {value}")
        for key, hist in doc["histograms"].items():
            if prefix and not key.startswith(prefix):
                continue
            lines.append(
                f"  {key} = count={hist['count']} mean={hist['mean']:g} "
                f"min={hist['min']:g} max={hist['max']:g}"
            )
        return "\n".join(lines)


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (instrumentation fallback)."""
    return _DEFAULT


# ----------------------------------------------------------------------
# absorbers for the four legacy stat families
# ----------------------------------------------------------------------
def absorb_presburger_cache(reg: MetricsRegistry, stats=None) -> None:
    """Absorb a :class:`repro.presburger.cache.CacheStats` snapshot.

    ``stats=None`` snapshots the process cache.  Numbers are copied
    verbatim: ``presburger.cache.hits`` equals ``stats.hits`` etc., and
    each per-op record becomes ``presburger.op.calls{op=...}`` series.
    """
    if stats is None:
        from ..presburger import cache

        stats = cache.stats()
    reg.gauge("presburger.cache.enabled", bool(stats.enabled))
    reg.gauge("presburger.cache.maxsize", stats.maxsize)
    reg.gauge("presburger.cache.entries", stats.entries)
    reg.gauge("presburger.cache.interned", stats.interned)
    reg.counter("presburger.cache.hits", stats.hits)
    reg.counter("presburger.cache.misses", stats.misses)
    reg.counter("presburger.cache.evictions", stats.evictions)
    reg.counter("presburger.cache.trivial", stats.trivial)
    reg.gauge("presburger.cache.hit_rate", round(stats.hit_rate, 4))
    for op, st in stats.ops.items():
        reg.counter("presburger.op.calls", st.calls, op=op)
        reg.counter("presburger.op.hits", st.hits, op=op)
        reg.counter("presburger.op.misses", st.misses, op=op)
        reg.counter("presburger.op.trivial", st.trivial, op=op)


def absorb_artifact_store(
    reg: MetricsRegistry, counters=None, store=None
) -> None:
    """Absorb the artifact-store cache counters.

    ``counters=None`` snapshots the process-wide session counters (every
    :class:`repro.store.ArtifactStore` in this process, aggregated);
    ``store`` additionally records that store's disk occupancy.
    """
    if counters is None:
        from ..store import session_counters

        counters = session_counters()
    for name in ("hits", "misses", "puts", "evictions", "corrupt"):
        reg.counter(f"store.{name}", counters.get(name, 0))
    reg.counter(
        "store.replay_failures", counters.get("replay_failures", 0)
    )
    looked = counters.get("hits", 0) + counters.get("misses", 0)
    if looked:
        reg.gauge(
            "store.hit_rate", round(counters.get("hits", 0) / looked, 4)
        )
    if store is not None:
        st = store.stats()
        reg.gauge("store.entries", st.entries)
        reg.gauge("store.bytes", st.bytes)


def absorb_execution(reg: MetricsRegistry, stats) -> None:
    """Absorb an :class:`repro.interp.executor.ExecutionStats` record."""
    labels = {"backend": stats.backend}
    reg.gauge("execution.workers", stats.workers, **labels)
    reg.gauge("execution.vectorize", stats.vectorize, **labels)
    reg.gauge("execution.wall_time_s", stats.wall_time, **labels)
    reg.gauge("execution.blocks_total", stats.blocks_total, **labels)
    reg.gauge(
        "execution.blocks_vectorized", stats.blocks_vectorized, **labels
    )
    reg.gauge(
        "execution.iterations_total", stats.iterations_total, **labels
    )
    reg.gauge(
        "execution.iterations_vectorized",
        stats.iterations_vectorized,
        **labels,
    )
    reg.gauge(
        "execution.block_coverage", round(stats.block_coverage, 4), **labels
    )
    reg.gauge(
        "execution.iteration_coverage",
        round(stats.iteration_coverage, 4),
        **labels,
    )
    for stmt, reason in sorted(stats.fallback_reasons.items()):
        reg.gauge(
            "execution.fallback_reason", reason, statement=stmt, **labels
        )
    if stats.scheduler:
        for key, value in sorted(stats.scheduler.items()):
            if isinstance(value, (int, float)):
                reg.gauge(f"execution.scheduler.{key}", value, **labels)
            else:
                reg.gauge(f"execution.scheduler.{key}", str(value), **labels)
    events = getattr(stats, "events", None)
    if events is not None:
        reg.gauge("execution.events", len(events.events), **labels)
        reg.gauge(
            "execution.measured_makespan_s",
            round(events.makespan_ns / 1e9, 6),
            **labels,
        )


def absorb_task_overhead(
    reg: MetricsRegistry,
    task_graph: Mapping[str, Any] | None = None,
    reduction=None,
    tuning=None,
) -> None:
    """Absorb the task-overhead family: graph shape, reduction, tuning.

    ``task_graph`` is the dict of
    :func:`repro.pipeline.reduce.task_graph_stats`; ``reduction`` a
    :class:`~repro.pipeline.reduce.ReductionStats`; ``tuning`` a
    :class:`~repro.tuning.tuner.TunedPlan`.  All optional.
    """
    if task_graph is not None:
        for key, value in task_graph.items():
            if isinstance(value, (int, float)):
                reg.gauge(f"task_graph.{key}", value)
    if reduction is not None:
        for key, value in reduction.as_dict().items():
            if isinstance(value, (int, float)):
                reg.gauge(f"reduction.{key}", value)
    if tuning is not None:
        plan = tuning.as_dict()
        reg.gauge("tuning.mode", plan["mode"])
        reg.gauge("tuning.tasks", plan["tasks"])
        for stmt, factor in sorted(plan["factors"].items()):
            reg.gauge("tuning.factor", factor, statement=stmt)
        for factor, score in plan["scores_s"].items():
            reg.gauge("tuning.score_s", score, factor=factor)


def absorb_simulation(reg: MetricsRegistry, sim, graph=None) -> None:
    """Absorb a :class:`repro.tasking.simulator.SimResult`."""
    labels = {"policy": sim.policy}
    reg.gauge("simulation.makespan", sim.makespan, **labels)
    reg.gauge("simulation.workers", sim.workers, **labels)
    reg.gauge(
        "simulation.utilization", round(sim.utilization(), 4), **labels
    )
    if graph is not None:
        reg.gauge("simulation.tasks", len(graph), **labels)
        total = graph.total_cost()
        reg.gauge("simulation.total_cost", total, **labels)
        if sim.makespan:
            reg.gauge(
                "simulation.speedup",
                round(total / sim.makespan, 4),
                **labels,
            )
