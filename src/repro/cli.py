"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze <kernel.c> --param N=32 [--format text|json|sarif] [--portfolio]``
    Run the full static analysis (diagnostics, nest-pair classification,
    task-graph checks), then Algorithm 1, the pipeline summary and the
    Figure-6 style task AST.  ``--portfolio`` adds the pattern portfolio:
    reduction / do-all / geometric-decomposition detection with
    machine-checked privatization proofs (rule codes RPA05x).
``lint <kernel.c> [--deep] [--format text|json|sarif]``
    Run the AST-level lint rules (``--deep`` adds SCoP validation and the
    pipelinability/task-graph checks); exit 1 on error diagnostics.
``run <kernel.c> --param N=32 [--workers 4] [--exec-backend serial|threads|processes] [--vectorize auto|on|off] [--fuse auto|on|off] [--tune model|search] [--reduce-deps] [--trace PATH] [--metrics PATH]``
    Execute the kernel sequentially and pipelined (threaded runtime) and
    report whether the results match, plus the simulated speed-up.
    ``--exec-backend`` additionally runs a *measured* wall-clock execution
    of the generated task program on the chosen backend;
    ``--vectorize`` controls the whole-block NumPy kernels;
    ``--fuse`` controls fused-closure dispatch (one NumPy call per task,
    with chain fusion of proven-legal statement sequences);
    ``--tune`` auto-picks task granularity from a calibrated cost model
    (or a measured search); ``--reduce-deps`` transitively reduces the
    depend-in slot lists; ``--privatize`` executes the pattern
    portfolio's verified privatization proofs (parallel reduction chunks
    over private accumulators, joined by a generated combine task;
    ``--privatize-parts`` picks the chunk count); ``--trace`` writes one
    Chrome/Perfetto document merging compile-phase spans, the simulated
    schedule and live runtime task events; ``--metrics`` writes the
    metrics-registry JSON export.
``profile <kernel.c> --param N=32 [--backend threads] [--workers 4]``
    Measure a run with event collection and print the critical-path
    profile: measured critical path, per-statement self time,
    simulated-vs-measured makespan divergence and top slack blocks.
``bench-exec [--out BENCH_execution.json]``
    Measured-execution benchmark: compiled-loop vs vectorized sequential
    vs thread/process backends, including a latency-bound workload.
``bench-overhead [--out BENCH_overhead.json]``
    Task-overhead optimizer benchmark: depend-in slot reduction per
    kernel plus tuned-vs-baseline wall times on the latency workload.
``codegen <kernel.c> --param N=32``
    Emit the generated task program source to stdout.
``deps <kernel.c> --param N=32``
    Print the statement-level dependence graph (flow/anti/output) and the
    value-based dataflow summary.
``serve [--host H] [--port P] [--cache-dir DIR] [--no-cache] [--workers K]``
    Long-lived asyncio compile(+run) server over a local TCP socket:
    repeated compiles answered from the content-addressed artifact
    store, identical in-flight compiles deduplicated through per-key
    futures (see ``docs/serving.md``).  Telemetry is on by default:
    ``--request-log PATH`` (rotating JSONL), ``--trace-dir DIR``
    (one Perfetto trace per request), ``--http-port P`` (Prometheus
    ``GET /metrics``), ``--no-telemetry`` to disable.
``top --port P [--host H] [--interval S] [--once]``
    Terminal live monitor for a running serve instance: request/error
    rates, latency p50/p95/p99 per verb and cache status, cache mix,
    the last N requests.
``store stats|gc|clear [--cache-dir DIR] [--max-bytes B] [--max-entries K]``
    Inspect or garbage-collect the artifact store.  ``run``, ``analyze``
    and ``profile`` accept ``--cache-dir DIR`` / ``--no-cache`` (and
    honour ``$REPRO_CACHE_DIR``) to answer their compile phase from the
    same store.
``bench-serve [--out BENCH_serve.json]``
    Cold vs warm (fresh process) vs concurrent-dedupe serving benchmark.
``table9`` / ``figure10`` / ``figure11``
    Regenerate the paper's evaluation artifacts.
``report --out DIR``
    Write every artifact (Table 9, Figures 2/10/11, overhead sensitivity)
    into a directory.
"""

from __future__ import annotations

import argparse
import sys


def _parse_params(items: list[str]) -> dict[str, int]:
    params: dict[str, int] = {}
    for item in items or []:
        name, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad --param {item!r}; expected NAME=INT")
        params[name] = int(value)
    return params


def _load(
    path: str,
    params: dict[str, int],
    vectorize: str = "auto",
    fuse: str | None = None,
):
    from .interp import Interpreter

    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return Interpreter.from_source(
        source, params, vectorize=vectorize, fuse=fuse
    )


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _cache_dir_of(args) -> str | None:
    """Resolve the artifact-store root: --cache-dir, then
    $REPRO_CACHE_DIR; --no-cache wins over both.  None = caching off."""
    import os

    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache_dir", None)
    if explicit:
        return explicit
    return os.environ.get("REPRO_CACHE_DIR") or None


def _cached_compile(interp, source: str, args, hybrid: bool = False):
    """The compile phase through the artifact store (or None: caching
    off).  Prints the cold/warm verdict so cache behaviour is visible in
    every command that takes ``--cache-dir``."""
    cache_dir = _cache_dir_of(args)
    if cache_dir is None:
        return None
    import dataclasses as _dc

    from .driver import TransformOptions
    from .pipeline import UncoveredDependenceError
    from .scop import DepKind
    from .service.compile import cached_analysis
    from .store import ArtifactStore

    opts = TransformOptions(
        coarsen=getattr(args, "coarsen", 1),
        hybrid=hybrid,
        check=False,
        verify=False,
        vectorize=getattr(args, "vectorize", "auto"),
        fuse=getattr(args, "fuse", None) or "auto",
        workers=getattr(args, "workers", 4),
    )
    store = ArtifactStore(cache_dir)
    params = _parse_params(args.param)
    try:
        analysis, status = cached_analysis(
            interp, source, params, opts, store
        )
    except UncoveredDependenceError:
        opts = _dc.replace(opts, kinds=tuple(DepKind))
        analysis, status = cached_analysis(
            interp, source, params, opts, store
        )
    print(f"compile cache: {status} ({cache_dir})")
    return analysis


def cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze_kernel, render_json, render_sarif, render_text

    if args.stats:
        from .presburger import cache as presburger_cache

        presburger_cache.reset_stats()

    source = _read_source(args.kernel)
    result = analyze_kernel(
        source,
        _parse_params(args.param),
        file=args.kernel,
        portfolio=args.portfolio,
    )

    if args.format == "json":
        print(
            render_json(
                result.report,
                result.classifications(),
                portfolio=(
                    result.portfolio.to_dict()
                    if result.portfolio is not None
                    else None
                ),
            )
        )
        return result.exit_code()
    if args.format == "sarif":
        print(render_sarif(result.report))
        return result.exit_code()

    print(render_text(result.report, source))
    if result.portfolio is not None:
        print()
        print(result.portfolio.format())
    if result.detect_error:
        print(f"note: {result.detect_error}")
    if result.info is None or not result.ok:
        return result.exit_code()

    from .pipeline import (
        NoPatternError,
        UncoveredDependenceError,
        describe_pipeline_map,
        detect_pipeline,
    )
    from .schedule import build_schedule, generate_task_ast

    info = result.info
    if args.coarsen != 1:
        from .scop import DepKind

        try:
            info = detect_pipeline(result.scop, coarsen=args.coarsen)
        except UncoveredDependenceError:
            info = detect_pipeline(
                result.scop, kinds=tuple(DepKind), coarsen=args.coarsen
            )
    print()
    print(info.summary())
    for pm in info.pipeline_maps.values():
        try:
            print(f"  {describe_pipeline_map(pm)}")
        except NoPatternError:
            print(f"  {pm} (no closed form)")
    print()
    print(build_schedule(info).pretty())
    print()
    print(generate_task_ast(info).pretty())
    if args.stats:
        from .interp import Interpreter, execute_measured
        from .obs.metrics import (
            MetricsRegistry,
            absorb_execution,
            absorb_presburger_cache,
            absorb_simulation,
            absorb_task_overhead,
        )
        from .pipeline import task_graph_stats
        from .presburger import cache as presburger_cache
        from .schedule import generate_task_ast as gen_ast
        from .tasking import TaskGraph, simulate

        tg = task_graph_stats(info)
        print()
        print(
            f"task graph: {tg['tasks']} tasks, {tg['edges']} edges, "
            f"{tg['depend_in_slots']} depend-in slots "
            f"({tg['depend_in_slots_reduced']} after reduction, "
            f"{100.0 * tg['reduction_ratio']:.0f}% cut), "
            f"critical path {tg['critical_path_tasks']} tasks"
        )
        print()
        print(presburger_cache.format_stats())

        # All four legacy stat families, through the metrics registry:
        # Presburger cache, task-overhead, simulation, measured execution.
        reg = MetricsRegistry()
        graph = TaskGraph.from_task_ast(gen_ast(info))
        sim = simulate(graph, workers=4)
        interp = Interpreter.from_source(
            source, _parse_params(args.param), fuse="auto"
        )
        _cached_compile(interp, source, args)
        _, ex_stats = execute_measured(interp, info, backend="serial")

        fprog = interp.fused_program
        total = len(interp.scop.statements)
        print()
        print(
            f"fusion coverage: {fprog.statements_fused}/{total} "
            f"statements compiled to fused closures"
        )
        if fprog.chains:
            for label in sorted(fprog.chains):
                print(f"  chain: {label}")
        fallbacks = fprog.fallbacks()
        if fallbacks:
            print("  fallbacks:")
            for name in sorted(fallbacks):
                fb = fallbacks[name]
                print(f"    {name}: [{fb['code']}] {fb['reason']}")
        absorb_presburger_cache(reg)
        absorb_task_overhead(reg, task_graph=tg)
        absorb_simulation(reg, sim, graph)
        absorb_execution(reg, ex_stats)

        from .obs.metrics import absorb_artifact_store
        from .store import session_counters

        absorb_artifact_store(reg)
        sc = session_counters()
        if sc:
            print()
            print(
                "artifact store: "
                f"{sc.get('hits', 0)} hit(s), "
                f"{sc.get('misses', 0)} miss(es), "
                f"{sc.get('puts', 0)} put(s), "
                f"{sc.get('corrupt', 0)} corrupt, "
                f"{sc.get('replay_failures', 0)} replay failure(s)"
            )
        print()
        print("metrics registry:")
        print(reg.format())
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import analyze_kernel, render_json, render_sarif, render_text

    source = _read_source(args.kernel)
    result = analyze_kernel(
        source,
        _parse_params(args.param),
        file=args.kernel,
        deep=args.deep,
    )
    if args.format == "json":
        print(render_json(result.report, result.classifications()))
    elif args.format == "sarif":
        print(render_sarif(result.report))
    else:
        print(render_text(result.report, source))
    return result.exit_code()


def _run_privatized(args, interp, priv_plan, observing: bool):
    """The ``run --privatize`` arm: execute a verified plan end to end."""
    from .driver import prepare_privatized
    from .interp import execute_privatized, privatized_matches
    from .schedule import check_legality, verify_privatized_graph
    from .tasking import simulate

    parts = args.privatize_parts or max(2, args.workers)
    info, _schedule, _ast, graph, joins = prepare_privatized(
        interp.scop, priv_plan, parts=parts, coarsen=args.coarsen
    )
    check_legality(
        interp.scop, info, graph, relaxed=priv_plan.relaxed()
    ).raise_if_illegal()
    verify_privatized_graph(interp.scop, priv_plan, graph).raise_if_invalid()

    seq_store = interp.run_sequential(interp.new_store())
    out_store, _ = execute_privatized(
        interp, info, priv_plan, backend="serial", workers=args.workers
    )
    match, detail = privatized_matches(priv_plan, seq_store, out_store)

    sim = simulate(graph, workers=args.workers)
    print(
        f"tasks: {len(graph)}, edges: {graph.num_edges} "
        f"(incl. {len(joins)} join task(s), {parts} part(s)/statement)"
    )
    print(f"privatized result matches sequential: {match} ({detail})")
    print(
        f"simulated speed-up on {args.workers} workers: "
        f"{graph.total_cost() / sim.makespan:.2f}x"
    )
    stats = None
    if args.exec_backend:
        ex_store, stats = execute_privatized(
            interp,
            info,
            priv_plan,
            backend=args.exec_backend,
            workers=args.workers,
            collect_events=observing,
        )
        ex_match, ex_detail = privatized_matches(
            priv_plan, seq_store, ex_store
        )
        print("measured execution: " + stats.summary())
        print(
            f"measured privatized result matches sequential: "
            f"{ex_match} ({ex_detail})"
        )
        match = match and ex_match
    return info, graph, sim, stats, match


def cmd_run(args: argparse.Namespace) -> int:
    from .bench import ascii_timeline
    from .obs import spans as obs_spans
    from .pipeline import detect_pipeline
    from .schedule import generate_task_ast
    from .tasking import (
        TaskGraph,
        bind_interpreter_actions,
        execute,
        hybrid_task_graph,
        simulate,
    )

    observing = bool(args.trace or args.metrics)
    rec = obs_spans.recording() if observing else None
    if rec is not None:
        rec.__enter__()

    reduction = None
    plan = None
    stats = None
    try:
        from .interp import Interpreter

        source = _read_source(args.kernel)
        interp = Interpreter.from_source(
            source, _parse_params(args.param),
            vectorize=args.vectorize, fuse=args.fuse,
        )

        priv_plan = None
        if args.privatize:
            if args.hybrid or args.tune:
                raise SystemExit(
                    "--privatize is incompatible with --hybrid/--tune"
                )
            from .schedule import plan_privatization

            priv_plan = plan_privatization(interp.scop)
            print(priv_plan.describe())
            if not priv_plan.groups:
                print(
                    "no verified privatization proofs; "
                    "running the standard pipeline"
                )
                priv_plan = None
        if priv_plan is not None:
            info, graph, sim, stats, match = _run_privatized(
                args, interp, priv_plan, observing
            )
        else:
            cached = None
            if not (args.tune or args.reduce_deps):
                # tune re-measures and reduce-deps rewrites the info —
                # both are answered by a direct compile, not the store
                cached = _cached_compile(
                    interp, source, args, hybrid=args.hybrid
                )
            if cached is not None:
                info, graph = cached.info, cached.graph
            else:
                info = detect_pipeline(interp.scop, coarsen=args.coarsen)
                if args.tune:
                    from .tuning import auto_tune

                    plan = auto_tune(
                        interp, info, workers=args.workers, mode=args.tune
                    )
                    info = plan.info
                    print(plan.summary())
                if args.reduce_deps:
                    if args.hybrid:
                        raise SystemExit(
                            "--reduce-deps is incompatible with --hybrid "
                            "(hybrid relaxes the self chains the reduction "
                            "relies on)"
                        )
                    from .pipeline import reduce_dependencies

                    info, reduction = reduce_dependencies(info)
                    print(reduction.summary())
                ast = generate_task_ast(info)
                if args.hybrid:
                    graph = hybrid_task_graph(interp.scop, info, ast)
                else:
                    graph = TaskGraph.from_task_ast(ast)

            seq_store = interp.run_sequential(interp.new_store())
            par_store = interp.new_store()
            bind_interpreter_actions(graph, interp, par_store)
            execute(graph, workers=args.workers)
            match = seq_store.equal(par_store)

            sim = simulate(graph, workers=args.workers)
            mode = "hybrid" if args.hybrid else "pipelined"
            print(f"tasks: {len(graph)}, edges: {graph.num_edges}")
            print(f"{mode} result matches sequential: {match}")
            print(
                f"simulated speed-up on {args.workers} workers: "
                f"{graph.total_cost() / sim.makespan:.2f}x"
            )
            if args.exec_backend:
                from .interp import execute_measured

                ex_store, stats = execute_measured(
                    interp,
                    info,
                    backend=args.exec_backend,
                    workers=args.workers,
                    collect_events=observing,
                )
                ex_match = seq_store.equal(ex_store)
                print("measured execution: " + stats.summary())
                print(f"measured result matches sequential: {ex_match}")
                match = match and ex_match
        if args.timeline:
            print()
            print(ascii_timeline(graph, sim))
    finally:
        if rec is not None:
            rec.__exit__(None, None, None)

    overhead = None
    if reduction is not None or plan is not None:
        overhead = {}
        if reduction is not None:
            overhead["reduction"] = reduction.as_dict()
        if plan is not None:
            overhead["tuning"] = plan.as_dict()
    if args.trace:
        from .bench import write_trace

        write_trace(
            args.trace,
            graph,
            sim,
            execution=stats,
            overhead=overhead,
            spans=rec.spans if rec is not None else None,
        )
        print(f"wrote {args.trace}")
    if args.metrics:
        from .obs.metrics import (
            MetricsRegistry,
            absorb_execution,
            absorb_presburger_cache,
            absorb_simulation,
            absorb_task_overhead,
        )
        from .pipeline import task_graph_stats

        reg = MetricsRegistry()
        absorb_presburger_cache(reg)
        absorb_simulation(reg, sim, graph)
        absorb_task_overhead(
            reg,
            task_graph=task_graph_stats(info),
            reduction=reduction,
            tuning=plan,
        )
        if stats is not None:
            absorb_execution(reg, stats)
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(reg.to_json() + "\n")
        print(f"wrote {args.metrics}")
    return 0 if match else 1


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .obs.profile import profile_kernel
    from .pipeline import detect_pipeline

    from .interp import Interpreter

    source = _read_source(args.kernel)
    interp = Interpreter.from_source(
        source, _parse_params(args.param),
        vectorize=args.vectorize, fuse=args.fuse,
    )
    cached = _cached_compile(interp, source, args)
    if cached is not None:
        info = cached.info
    else:
        info = detect_pipeline(interp.scop, coarsen=args.coarsen)
    report = profile_kernel(
        interp,
        info,
        backend=args.backend,
        workers=args.workers,
        policy=args.policy,
        top=args.top,
    )
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.format(top=args.top))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def cmd_bench_exec(args: argparse.Namespace) -> int:
    from .bench.execution import format_execution_bench, run_execution_bench

    report = run_execution_bench(
        workers=args.workers, quick=args.quick, out_path=args.out
    )
    print(format_execution_bench(report))
    if args.out:
        print(f"wrote {args.out}")
    return 0


def cmd_bench_overhead(args: argparse.Namespace) -> int:
    from .bench.overhead import format_overhead_bench, run_overhead_bench

    report = run_overhead_bench(
        workers=args.workers, quick=args.quick, out_path=args.out
    )
    print(format_overhead_bench(report))
    if args.out:
        print(f"wrote {args.out}")
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    from .codegen import emit_task_program
    from .pipeline import detect_pipeline

    interp = _load(args.kernel, _parse_params(args.param))
    info = detect_pipeline(interp.scop, coarsen=args.coarsen)
    print(emit_task_program(info))
    return 0


def cmd_deps(args: argparse.Namespace) -> int:
    from .scop import analyze_dataflow, build_dependence_graph

    interp = _load(args.kernel, _parse_params(args.param))
    graph = build_dependence_graph(interp.scop)
    print(graph.summary())
    df = analyze_dataflow(interp.scop)
    print()
    print("value-based (last-writer) flows:")
    for (src, tgt), rel in sorted(df.flows.items()):
        print(f"  {src} -> {tgt}: {len(rel)} pairs")
    for name, count in sorted(df.reads_from_input.items()):
        if count:
            print(f"  {name}: {count} reads of initial array contents")
    if args.dot:
        print()
        print(graph.to_dot())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate every evaluation artifact into a directory."""
    import os

    from .bench import (
        format_figure2,
        format_figure10,
        format_figure11,
        format_table9,
        run_figure2,
        run_figure10,
        run_figure11,
    )
    from .bench.calibration import format_sensitivity, overhead_sensitivity

    os.makedirs(args.out, exist_ok=True)
    artifacts = {
        "table9.txt": format_table9(),
        "figure2.txt": format_figure2(run_figure2(n=20)),
        "figure10.txt": format_figure10(run_figure10(ns=tuple(args.sizes))),
        "figure11.txt": format_figure11(run_figure11(size=args.matrix_size)),
        "sensitivity.txt": format_sensitivity(
            overhead_sensitivity(["P1", "P3", "P5", "P8"])
        ),
    }
    for name, text in artifacts.items():
        path = os.path.join(args.out, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {path}")
    return 0


def cmd_table9(args: argparse.Namespace) -> int:
    from .bench import format_table9

    print(format_table9())
    return 0


def cmd_figure10(args: argparse.Namespace) -> int:
    from .bench import format_figure10, run_figure10

    cells = run_figure10(
        ns=tuple(args.sizes), workers=args.workers, measured=args.measured
    )
    print(format_figure10(cells))
    return 0


def cmd_figure11(args: argparse.Namespace) -> int:
    from .bench import format_figure11, run_figure11

    rows = run_figure11(
        size=args.matrix_size, workers=args.workers, measured=args.measured
    )
    print(format_figure11(rows))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service.server import serve

    cache_dir = None
    if not args.no_cache:
        from .store import default_cache_dir

        cache_dir = args.cache_dir or default_cache_dir()
    try:
        asyncio.run(
            serve(
                host=args.host,
                port=args.port,
                cache_dir=cache_dir,
                workers=args.workers,
                telemetry=not args.no_telemetry,
                log_path=args.request_log,
                trace_dir=args.trace_dir,
                http_port=args.http_port,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from .obs.live import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        iterations=args.iterations,
        rows=args.rows,
        once=args.once,
    )


def cmd_store(args: argparse.Namespace) -> int:
    from .store import (
        ArtifactStore,
        default_cache_dir,
        load_metrics_snapshot,
    )

    store = ArtifactStore(args.cache_dir or default_cache_dir())
    if args.action == "stats":
        print(store.stats().format())
        snap = load_metrics_snapshot(store.root)
        if snap is not None:
            counters = snap.get("counters", {})
            print("last serve session (metrics-last.json):")
            print(f"  saved at    {snap.get('saved_at', '?')}")
            print(f"  uptime      {snap.get('uptime_s', 0.0):.1f}s")
            print(f"  requests    {counters.get('requests', 0)}")
            print(f"  compiles    {counters.get('compiles', 0)}")
            print(f"  store hits  {counters.get('store_hits', 0)}")
            print(f"  errors      {counters.get('errors', 0)}")
    elif args.action == "gc":
        evicted = store.gc(
            max_bytes=args.max_bytes, max_entries=args.max_entries
        )
        print(f"evicted {len(evicted)} artifact(s)")
        print(store.stats().format())
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifact(s) from {store.root}")
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from .bench.serve import format_serve_bench, run_serve_bench

    report = run_serve_bench(quick=args.quick, out_path=args.out)
    print(format_serve_bench(report))
    if args.out:
        print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-loop pipeline pattern detection (IMPACT 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def kernel_cmd(name: str, fn) -> argparse.ArgumentParser:
        p = sub.add_parser(name)
        p.add_argument("kernel", help="path to a kernel source file")
        p.add_argument(
            "--param", action="append", default=[], metavar="NAME=INT"
        )
        p.add_argument("--coarsen", type=int, default=1)
        p.set_defaults(fn=fn)
        return p

    def cache_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="answer identical compiles from a content-addressed "
            "artifact store rooted here (default: $REPRO_CACHE_DIR "
            "when set, otherwise off)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the artifact store even if $REPRO_CACHE_DIR "
            "is set",
        )

    p_analyze = kernel_cmd("analyze", cmd_analyze)
    p_analyze.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format (json/sarif suppress the trees)",
    )
    p_analyze.add_argument(
        "--stats",
        action="store_true",
        help="print Presburger op-cache hit/miss statistics after analysis",
    )
    p_analyze.add_argument(
        "--portfolio",
        action="store_true",
        help="run the pattern portfolio (reduction / do-all / geometric "
        "detection with machine-checked privatization proofs)",
    )
    cache_args(p_analyze)

    p_lint = sub.add_parser(
        "lint", help="run the static-analysis rules and print diagnostics"
    )
    p_lint.add_argument("kernel", help="path to a kernel source file")
    p_lint.add_argument(
        "--param", action="append", default=[], metavar="NAME=INT"
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    p_lint.add_argument(
        "--deep",
        action="store_true",
        help="also extract the SCoP and run pipelinability/task-graph checks",
    )
    p_lint.set_defaults(fn=cmd_lint)

    p_run = kernel_cmd("run", cmd_run)
    p_run.add_argument("--workers", type=int, default=4)
    p_run.add_argument(
        "--hybrid",
        action="store_true",
        help="combine cross-loop pipelining with intra-nest parallelism",
    )
    p_run.add_argument(
        "--timeline",
        action="store_true",
        help="print a per-statement ASCII timeline of the simulated schedule",
    )
    p_run.add_argument(
        "--exec-backend",
        choices=("serial", "thread", "threads", "process", "processes"),
        default=None,
        help="also run a measured wall-clock execution on this backend",
    )
    p_run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome/Perfetto trace document merging compile-phase "
        "spans, the simulated schedule and (with --exec-backend) live "
        "runtime task events",
    )
    p_run.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the metrics-registry JSON export (cache, simulation, "
        "task-overhead and measured-execution series)",
    )
    p_run.add_argument(
        "--vectorize",
        choices=("auto", "on", "off"),
        default="auto",
        help="whole-block NumPy kernels: auto (legal statements), "
        "on (fail on fallback), off (compiled loops)",
    )
    p_run.add_argument(
        "--fuse",
        choices=("auto", "on", "off"),
        default="auto",
        help="fused-closure dispatch: compile statements (and proven "
        "fusion-legal chains) to single NumPy closures executed as one "
        "call per task; auto falls back per statement to the "
        "vectorized/interpreter paths, on fails on fallback",
    )
    p_run.add_argument(
        "--tune",
        choices=("model", "search"),
        default=None,
        help="auto-tune task granularity: model (calibrated cost model + "
        "simulated scan) or search (measured scan over factors)",
    )
    p_run.add_argument(
        "--reduce-deps",
        action="store_true",
        help="transitively reduce the depend-in slot lists "
        "(same enforced partial order, fewer waits per task)",
    )
    p_run.add_argument(
        "--privatize",
        action="store_true",
        help="execute the pattern portfolio's verified privatization "
        "proofs: reduction statements run as parallel chunks over "
        "private accumulators joined by a generated combine task "
        "(kernels without proofs fall through unchanged)",
    )
    p_run.add_argument(
        "--privatize-parts",
        type=int,
        default=None,
        metavar="K",
        help="chunks per privatized statement (default: max(2, workers))",
    )
    cache_args(p_run)
    p_profile = kernel_cmd("profile", cmd_profile)
    p_profile.add_argument("--workers", type=int, default=4)
    p_profile.add_argument(
        "--backend",
        choices=("serial", "thread", "threads", "process", "processes"),
        default="threads",
        help="backend for the measured run",
    )
    p_profile.add_argument(
        "--policy",
        choices=("fifo", "lifo", "cp"),
        default="fifo",
        help="simulator scheduling policy for the prediction",
    )
    p_profile.add_argument(
        "--vectorize", choices=("auto", "on", "off"), default="auto"
    )
    p_profile.add_argument(
        "--fuse", choices=("auto", "on", "off"), default="auto"
    )
    p_profile.add_argument(
        "--top", type=int, default=5,
        help="rows of critical path / slack to print",
    )
    p_profile.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p_profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the full report as JSON",
    )
    cache_args(p_profile)
    kernel_cmd("codegen", cmd_codegen)
    p_deps = kernel_cmd("deps", cmd_deps)
    p_deps.add_argument(
        "--dot", action="store_true", help="also print Graphviz DOT"
    )

    p = sub.add_parser("table9")
    p.set_defaults(fn=cmd_table9)

    p = sub.add_parser("report")
    p.add_argument("--out", default="evaluation")
    p.add_argument("--sizes", type=int, nargs="+", default=[16, 24, 32])
    p.add_argument("--matrix-size", type=int, default=24)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("figure10")
    p.add_argument("--sizes", type=int, nargs="+", default=[16, 24, 32])
    p.add_argument("--workers", type=int, default=8)
    p.add_argument(
        "--measured",
        action="store_true",
        help="measure real wall-clock execution instead of simulating",
    )
    p.set_defaults(fn=cmd_figure10)

    p = sub.add_parser("figure11")
    p.add_argument("--matrix-size", type=int, default=32)
    p.add_argument("--workers", type=int, default=8)
    p.add_argument(
        "--measured",
        action="store_true",
        help="measure real wall-clock execution instead of simulating",
    )
    p.set_defaults(fn=cmd_figure11)

    p = sub.add_parser(
        "bench-exec",
        help="measured-execution benchmark (writes BENCH_execution.json)",
    )
    p.add_argument("--out", default=None, metavar="PATH")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--quick", action="store_true", help="small sizes, no repeats"
    )
    p.set_defaults(fn=cmd_bench_exec)

    p = sub.add_parser(
        "bench-overhead",
        help="task-overhead optimizer benchmark (writes BENCH_overhead.json)",
    )
    p.add_argument("--out", default=None, metavar="PATH")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--quick", action="store_true", help="small sizes, no repeats"
    )
    p.set_defaults(fn=cmd_bench_overhead)

    p = sub.add_parser(
        "serve",
        help="long-lived compile(+run) server over a local socket with "
        "an artifact store and in-flight dedupe of identical compiles",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 binds an ephemeral port, announced on stdout)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact store root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/artifacts)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="serve without a store (every request compiles; in-flight "
        "dedupe still applies)",
    )
    p.add_argument(
        "--workers", type=int, default=4,
        help="compile/run thread-pool size",
    )
    p.add_argument(
        "--no-telemetry", action="store_true",
        help="disable request tracing, metrics and the request log",
    )
    p.add_argument(
        "--request-log", default=None, metavar="PATH",
        help="rotating JSONL request log (one structured line per "
        "request)",
    )
    p.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write one Perfetto trace per request into DIR",
    )
    p.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="also answer GET /metrics (Prometheus text), /health and "
        "/requests over plain HTTP on this port (0 = ephemeral)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "top",
        help="terminal live monitor for a running serve instance "
        "(rates, latency quantiles, cache mix, recent requests)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between polls",
    )
    p.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N redraws (default: run until Ctrl-C)",
    )
    p.add_argument(
        "--rows", type=int, default=10,
        help="recent requests shown",
    )
    p.add_argument(
        "--once", action="store_true",
        help="print a single snapshot and exit (no screen clear)",
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "store",
        help="inspect or garbage-collect the artifact store",
    )
    p.add_argument("action", choices=("stats", "gc", "clear"))
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact store root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/artifacts)",
    )
    p.add_argument(
        "--max-bytes", type=int, default=None,
        help="gc: evict LRU artifacts beyond this byte ceiling",
    )
    p.add_argument(
        "--max-entries", type=int, default=None,
        help="gc: evict LRU artifacts beyond this entry ceiling",
    )
    p.set_defaults(fn=cmd_store)

    p = sub.add_parser(
        "bench-serve",
        help="cold vs warm vs concurrent-dedupe compile benchmark "
        "(writes BENCH_serve.json)",
    )
    p.add_argument("--out", default=None, metavar="PATH")
    p.add_argument(
        "--quick", action="store_true", help="small sizes, no repeats"
    )
    p.set_defaults(fn=cmd_bench_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
