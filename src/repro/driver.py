"""High-level driver: the whole pipeline in one call.

:func:`transform` runs frontend → SCoP → Algorithm 1 → Algorithm 2 →
task graph, optionally verifies the transformation (legality check and/or
a real threaded execution compared against the sequential interpreter),
and simulates performance — returning everything in one
:class:`TransformResult`.

    from repro import transform

    result = transform(KERNEL_SOURCE, {"N": 32})
    print(result.report())
    assert result.verified
    print(result.speedup)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # analysis imports lazily to keep startup light
    from .analysis.diagnostics import DiagnosticReport

from .interp import ArrayStore, ExecutionStats, Interpreter, execute_measured
from .lang.ast import Program
from .pipeline import (
    PipelineInfo,
    ReductionStats,
    detect_pipeline,
    reduce_dependencies,
)
from .schedule import (
    LegalityReport,
    ScheduleTree,
    TaskAst,
    build_schedule,
    check_legality,
    generate_task_ast,
)
from .scop import DepKind, Scop
from .tasking import (
    SimResult,
    TaskGraph,
    bind_interpreter_actions,
    execute,
    hybrid_task_graph,
    simulate,
)
from .workloads import CostModel


@dataclass(frozen=True)
class TransformOptions:
    """Knobs of the transformation and its evaluation."""

    #: dependence classes to pipeline (paper default: flow only)
    kinds: tuple[DepKind, ...] = (DepKind.FLOW,)
    #: merge every ``coarsen`` consecutive blocks into one task
    coarsen: int = 1
    #: relax per-statement chains using intra-statement dependences
    hybrid: bool = False
    #: run the instance-exact legality checker
    check: bool = True
    #: run the static-analysis subsystem (packing / token-coverage / race
    #: checks, rule codes RPA04x) and fail on error diagnostics
    static_checks: bool = False
    #: execute pipelined on threads and compare with sequential output
    verify: bool = True
    #: worker threads for verification and simulation
    workers: int = 4
    #: per-task overhead charged by the simulator
    overhead: float = 0.0
    #: cost model for the simulator (uniform unit cost by default)
    cost_model: CostModel = field(default_factory=CostModel.uniform)
    #: Presburger op cache for this call: True/False forces it on/off,
    #: None keeps the process setting (``REPRO_PRESBURGER_CACHE`` env var)
    presburger_cache: bool | None = None
    #: LRU capacity override for the Presburger op cache (None keeps it)
    presburger_cache_size: int | None = None
    #: vectorized block kernels: "auto" (vectorize what's legal), "on"
    #: (fail if any statement can't vectorize), "off" (compiled loops)
    vectorize: str = "auto"
    #: fused closure kernels: "auto" (default — fuse what's legal, per-
    #: statement fallback to the vectorized/interpreter ladder), "on"
    #: (fail if any statement can't fuse), "off" (no fused dispatch)
    fuse: str = "auto"
    #: run a real measured execution on this backend ("serial", "threads"
    #: or "processes"); None skips the measured run
    exec_backend: str | None = None
    #: transitively reduce the block dependency relations before
    #: scheduling (fewer depend-in slots, same enforced partial order);
    #: incompatible with ``hybrid``, which relaxes the self chains the
    #: reduction relies on
    reduce_deps: bool = False
    #: granularity auto-tuning: "model" (calibrated cost model + simulated
    #: scan), "search" (measured scan), None (keep ``coarsen`` as given)
    tune: str | None = None
    #: collect live runtime task events during the measured execution
    #: (requires ``exec_backend``); surfaced as ``execution.events``
    collect_events: bool = False
    #: run the pattern portfolio (reduction / do-all / geometric
    #: detection with machine-checked privatization proofs); surfaced as
    #: ``TransformResult.portfolio``, and downstream consumers may feed
    #: its verified ``relaxed_map()`` back into ``check_legality``
    portfolio: bool = False
    #: execute the portfolio's verified privatization proofs: re-block
    #: reduction statements into parallel chunks over per-block private
    #: accumulators joined by a generated combine task.  Implies the
    #: portfolio run; a kernel with no verified proofs falls through to
    #: the standard pipeline unchanged (a no-op, not an error)
    privatize: bool = False
    #: chunks per privatized statement (None: max(2, workers))
    privatize_parts: int | None = None


@dataclass(frozen=True)
class TransformResult:
    """Everything the driver produced."""

    scop: Scop
    info: PipelineInfo
    schedule: ScheduleTree
    task_ast: TaskAst
    graph: TaskGraph
    options: TransformOptions
    legality: LegalityReport | None
    verified: bool | None
    simulation: SimResult
    #: static-analysis findings (None unless options.static_checks)
    diagnostics: "DiagnosticReport | None" = None
    #: measured execution statistics (None unless options.exec_backend)
    execution: "ExecutionStats | None" = None
    #: dependency transitive-reduction stats (None unless reduce_deps)
    reduction: ReductionStats | None = None
    #: granularity tuning plan (None unless options.tune)
    tuning: object | None = None  # repro.tuning.TunedPlan
    #: pattern-portfolio report (None unless options.portfolio);
    #: a repro.analysis.portfolio.PortfolioReport
    portfolio: object | None = None
    #: privatization plan the transformation executed (None unless
    #: options.privatize); a repro.schedule.PrivatizationPlan — empty
    #: ``groups`` means the run fell through to the standard pipeline
    privatization: object | None = None

    @property
    def speedup(self) -> float:
        return self.graph.total_cost() / self.simulation.makespan

    @property
    def num_tasks(self) -> int:
        return len(self.graph)

    def report(self) -> str:
        lines = [self.info.summary()]
        if self.legality is not None:
            lines.append(str(self.legality))
        if self.diagnostics is not None:
            lines.append(
                "static checks: "
                + ("clean" if self.diagnostics.ok else "FAILED")
                + f" ({len(self.diagnostics)} finding(s))"
            )
        if self.verified is not None:
            lines.append(
                "threaded execution matches sequential: "
                f"{self.verified}"
            )
        if self.tuning is not None:
            lines.append(self.tuning.summary())
        if self.portfolio is not None:
            reclassified = len(self.portfolio.reclassified_pairs())
            lines.append(
                f"pattern portfolio: {len(self.portfolio.specs)} "
                f"reduction(s), {reclassified} pair(s) reclassified "
                "after privatization"
            )
        if self.privatization is not None:
            lines.append(self.privatization.describe())
        if self.reduction is not None:
            lines.append(self.reduction.summary())
        if self.execution is not None:
            lines.append("measured execution: " + self.execution.summary())
        lines.append(
            f"simulated speed-up on {self.options.workers} workers: "
            f"{self.speedup:.2f}x ({self.num_tasks} tasks)"
        )
        return "\n".join(lines)


class VerificationFailedError(RuntimeError):
    """The pipelined execution diverged from the sequential program."""


class IllegalTaskGraphError(RuntimeError):
    """The static task-graph checks found an error-severity diagnostic."""


@dataclass
class Analysis:
    """Everything the *compile* phase produced — no execution yet.

    This is the unit the artifact store serializes and ``repro serve``
    hands out: :func:`analyze` builds one from scratch, the warm path in
    :mod:`repro.service.compile` rebuilds an equivalent one from a
    stored artifact, and :func:`_finish` turns either into a
    :class:`TransformResult` by running verification / measured
    execution / simulation on top.
    """

    info: PipelineInfo
    schedule: ScheduleTree
    task_ast: TaskAst
    graph: TaskGraph
    legality: LegalityReport | None = None
    diagnostics: "DiagnosticReport | None" = None
    reduction: ReductionStats | None = None
    tuning: object | None = None  # repro.tuning.TunedPlan
    portfolio: object | None = None
    plan: object | None = None  # repro.schedule.PrivatizationPlan
    joins: tuple = ()
    privatized: bool = False
    #: None for a direct compile; "cold" / "warm" when a store was used
    cache_status: str | None = None


def transform(
    source_or_program: str | Program,
    params: Mapping[str, int] | None = None,
    options: TransformOptions | None = None,
    funcs: Mapping | None = None,
    cache_dir: str | None = None,
) -> TransformResult:
    """Detect, schedule, verify and simulate the cross-loop pipeline.

    ``cache_dir`` points at a content-addressed artifact store
    (:mod:`repro.store`): identical ``(source, params, options)``
    compiles are answered from disk.  Caching is deliberately *not* a
    :class:`TransformOptions` field — options are part of the cache key,
    the cache location is not.  Only string sources are cacheable (a
    ``Program`` object has no canonical byte form to hash).
    """
    options = options or TransformOptions()
    from .presburger import cache as presburger_cache

    with presburger_cache.overridden(
        enabled=options.presburger_cache,
        maxsize=options.presburger_cache_size,
    ):
        return _transform(
            source_or_program, params, options, funcs, cache_dir
        )


def _validate_options(options: TransformOptions) -> None:
    if options.reduce_deps and options.hybrid:
        raise ValueError(
            "reduce_deps is incompatible with hybrid: the hybrid graph "
            "relaxes the per-statement chains the reduction relies on"
        )
    if options.privatize and options.hybrid:
        raise ValueError(
            "privatize is incompatible with hybrid: privatized "
            "statements already drop their self chains under a proof"
        )
    if options.privatize and options.tune is not None:
        raise ValueError(
            "privatize is incompatible with tune: chunking of "
            "privatized statements is set by privatize_parts"
        )


def _transform(
    source_or_program: str | Program,
    params: Mapping[str, int] | None,
    options: TransformOptions,
    funcs: Mapping | None,
    cache_dir: str | None = None,
) -> TransformResult:
    _validate_options(options)

    interp = Interpreter.from_source(
        source_or_program, dict(params or {}), funcs,
        vectorize=options.vectorize, fuse=options.fuse,
    )

    if cache_dir is not None and isinstance(source_or_program, str):
        from .service.compile import cached_analysis
        from .store import ArtifactStore

        analysis, _ = cached_analysis(
            interp,
            source_or_program,
            dict(params or {}),
            options,
            ArtifactStore(cache_dir),
        )
    else:
        analysis = analyze(interp, options)
    return _finish(interp, options, analysis)


def analyze(interp: Interpreter, options: TransformOptions) -> Analysis:
    """The compile phase: SCoP analysis through checked task graph.

    Pure with respect to array contents — nothing here executes the
    kernel (granularity *tuning* may run calibration executions, but
    those are measurements, not outputs).  The returned
    :class:`Analysis` is exactly what the artifact store persists.
    """
    from .obs.spans import span

    scop = interp.scop

    portfolio_report = None
    if options.portfolio or options.privatize:
        from .analysis.portfolio import run_portfolio

        with span("driver.portfolio"):
            portfolio_report = run_portfolio(scop)

    plan = None
    if options.privatize:
        from .schedule import plan_privatization

        with span("driver.privatize"):
            plan = plan_privatization(scop, portfolio_report)
        if plan.groups:
            return _analyze_privatized(
                interp, options, plan, portfolio_report
            )
        # no verified proofs: fall through to the standard pipeline
        # unchanged (result.privatization records the empty plan)

    info = detect_pipeline(
        scop, kinds=options.kinds, coarsen=options.coarsen
    )

    tuning = None
    if options.tune is not None:
        from .tuning import auto_tune

        with span("driver.tune", mode=options.tune):
            tuning = auto_tune(
                interp, info, workers=options.workers, mode=options.tune
            )
        info = tuning.info

    reduction: ReductionStats | None = None
    if options.reduce_deps:
        info, reduction = reduce_dependencies(info)

    schedule = build_schedule(info)
    task_ast = generate_task_ast(info, schedule)
    with span("driver.task_graph", hybrid=options.hybrid):
        if options.hybrid:
            graph = hybrid_task_graph(
                scop, info, task_ast,
                cost_of_block=options.cost_model.block_cost,
            )
        else:
            graph = TaskGraph.from_task_ast(
                task_ast, cost_of_block=options.cost_model.block_cost
            )

    legality: LegalityReport | None = None
    if options.check:
        legality = check_legality(scop, info, graph)
        legality.raise_if_illegal()

    diagnostics = None
    if options.static_checks:
        from .analysis.taskcheck import check_task_graph

        with span("driver.static_checks"):
            diagnostics = check_task_graph(
                scop, info, ast=task_ast, graph=graph
            )
        if not diagnostics.ok:
            raise IllegalTaskGraphError(
                f"{len(diagnostics.errors)} static-check error(s); first: "
                f"{diagnostics.errors[0].render()}"
            )

    return Analysis(
        info=info,
        schedule=schedule,
        task_ast=task_ast,
        graph=graph,
        legality=legality,
        diagnostics=diagnostics,
        reduction=reduction,
        tuning=tuning,
        portfolio=portfolio_report,
        plan=plan,
        privatized=False,
    )


def _finish(
    interp: Interpreter,
    options: TransformOptions,
    a: Analysis,
) -> TransformResult:
    """Verification, measured execution and simulation over an analysis."""
    from .obs.spans import span

    if a.privatized:
        return _finish_privatized(interp, options, a)

    scop = interp.scop
    verified: bool | None = None
    seq: ArrayStore | None = None
    if options.verify:
        with span("driver.verify"):
            seq = interp.run_sequential(interp.new_store())
            par = interp.new_store()
            bind_interpreter_actions(a.graph, interp, par)
            execute(a.graph, workers=options.workers)
            verified = seq.equal(par)
        if not verified:
            raise VerificationFailedError(
                "pipelined arrays differ from the sequential execution "
                f"(max abs diff {seq.max_abs_diff(par):g})"
            )

    execution: ExecutionStats | None = None
    if options.exec_backend is not None:
        ex_store, execution = execute_measured(
            interp,
            a.info,
            backend=options.exec_backend,
            workers=options.workers,
            cost_of_block=options.cost_model.block_cost,
            collect_events=options.collect_events,
        )
        if seq is not None and not seq.equal(ex_store):
            raise VerificationFailedError(
                f"measured {options.exec_backend} execution diverged from "
                f"sequential (max abs diff {seq.max_abs_diff(ex_store):g})"
            )

    sim = simulate(
        a.graph, workers=options.workers, overhead=options.overhead
    )
    return TransformResult(
        scop=scop,
        info=a.info,
        schedule=a.schedule,
        task_ast=a.task_ast,
        graph=a.graph,
        options=options,
        legality=a.legality,
        verified=verified,
        simulation=sim,
        diagnostics=a.diagnostics,
        execution=execution,
        reduction=a.reduction,
        tuning=a.tuning,
        portfolio=a.portfolio,
        privatization=a.plan,
    )


def prepare_privatized(
    scop: Scop,
    plan,
    parts: int,
    coarsen: int = 1,
    cost_of_block=None,
):
    """Schedule + task graph of a verified privatization plan.

    Shared by the driver, the CLI and the bench: validates the SCoP with
    reduction waivers for the plan's statements (their accumulator
    writes are non-injective by design), detects pipelines over *all*
    dependence kinds (the relaxed legality check needs every class), and
    re-blocks/joins per :mod:`repro.schedule.privatize`.  Returns
    ``(info, schedule, task_ast, graph, joins)``.
    """
    from .schedule import build_privatized_graph, privatize_info
    from .scop.validate import validate_scop

    validate_scop(
        scop, reduction_waivers=plan.statements
    ).raise_if_invalid()
    base_info = detect_pipeline(
        scop, kinds=tuple(DepKind), validate=False, coarsen=coarsen
    )
    info = privatize_info(base_info, plan, parts=parts)
    schedule = build_schedule(info)
    task_ast = generate_task_ast(info, schedule)
    graph, joins = build_privatized_graph(
        task_ast, plan, cost_of_block=cost_of_block
    )
    return info, schedule, task_ast, graph, joins


def _analyze_privatized(
    interp: Interpreter,
    options: TransformOptions,
    plan,
    portfolio_report,
) -> Analysis:
    """The privatized arm of :func:`analyze` (plan has groups)."""
    from .obs.spans import span
    from .schedule import verify_privatized_graph

    scop = interp.scop
    parts = options.privatize_parts or max(2, options.workers)
    with span("driver.task_graph", privatize=True, parts=parts):
        info, schedule, task_ast, graph, joins = prepare_privatized(
            scop,
            plan,
            parts=parts,
            coarsen=options.coarsen,
            cost_of_block=options.cost_model.block_cost,
        )

    legality: LegalityReport | None = None
    if options.check:
        # instance-exact legality under the proof's relaxed set, plus
        # the structural join-coverage re-check (join tasks execute no
        # instances, so check_legality alone cannot see an omitted join)
        legality = check_legality(scop, info, graph, relaxed=plan.relaxed())
        legality.raise_if_illegal()
        verify_privatized_graph(scop, plan, graph).raise_if_invalid()

    return Analysis(
        info=info,
        schedule=schedule,
        task_ast=task_ast,
        graph=graph,
        legality=legality,
        portfolio=portfolio_report,
        plan=plan,
        joins=tuple(joins),
        privatized=True,
    )


def _finish_privatized(
    interp: Interpreter,
    options: TransformOptions,
    a: Analysis,
) -> TransformResult:
    from .interp import execute_privatized, privatized_matches
    from .obs.spans import span

    scop = interp.scop
    plan = a.plan
    verified: bool | None = None
    seq: ArrayStore | None = None
    if options.verify:
        with span("driver.verify", privatize=True):
            seq = interp.run_sequential(interp.new_store())
            out, _ = execute_privatized(
                interp, a.info, plan, backend="serial",
                workers=options.workers,
            )
            verified, detail = privatized_matches(plan, seq, out)
        if not verified:
            raise VerificationFailedError(
                "privatized execution diverged from sequential: " + detail
            )

    execution: ExecutionStats | None = None
    if options.exec_backend is not None:
        ex_store, execution = execute_privatized(
            interp,
            a.info,
            plan,
            backend=options.exec_backend,
            workers=options.workers,
            cost_of_block=options.cost_model.block_cost,
            collect_events=options.collect_events,
        )
        if seq is not None:
            ok, detail = privatized_matches(plan, seq, ex_store)
            if not ok:
                raise VerificationFailedError(
                    f"measured {options.exec_backend} privatized execution "
                    "diverged from sequential: " + detail
                )

    sim = simulate(
        a.graph, workers=options.workers, overhead=options.overhead
    )
    return TransformResult(
        scop=scop,
        info=a.info,
        schedule=a.schedule,
        task_ast=a.task_ast,
        graph=a.graph,
        options=options,
        legality=a.legality,
        verified=verified,
        simulation=sim,
        execution=execution,
        portfolio=a.portfolio,
        privatization=plan,
    )
