"""Entry point for ``python -m repro``."""

import sys

from .cli import main

sys.exit(main())
