"""Comparator implementations: sequential and Polly/Pluto-like baselines."""

from .polly import PollyDecision, polly_decisions, polly_speedup, polly_task_graph
from .sequential import (
    IterCost,
    nest_costs,
    sequential_task_graph,
    sequential_time,
    uniform_cost,
)

__all__ = [
    "IterCost",
    "PollyDecision",
    "nest_costs",
    "polly_decisions",
    "polly_speedup",
    "polly_task_graph",
    "sequential_task_graph",
    "sequential_time",
    "uniform_cost",
]
