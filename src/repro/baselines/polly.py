"""Polly/Pluto-like baseline: per-loop-nest parallelization.

Models what stock Polly (with Pluto's scheduler) does to the benchmark
kernels of Section 6: each loop nest is examined for dependence-free loop
dimensions; a nest with a parallel dimension is split into ``threads``
chunks executed concurrently, nests run one after another (the implicit
barrier of ``#pragma omp parallel for``).  Nests with no parallel dimension
stay sequential — exactly the situations in which the paper's kernels
defeat Polly.

Tiling/locality effects are not modelled (see DESIGN.md §2): Figure 11 only
needs the baseline's parallelization *decisions* and thread scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scop import Scop, parallel_levels
from ..tasking import TaskGraph
from .sequential import IterCost, uniform_cost


@dataclass(frozen=True)
class PollyDecision:
    """What the baseline decided for one loop nest."""

    nest_index: int
    parallel_level: int | None
    total_cost: float

    @property
    def parallelized(self) -> bool:
        return self.parallel_level is not None


def polly_decisions(
    scop: Scop, cost_of_iters: IterCost = uniform_cost
) -> list[PollyDecision]:
    """Per-nest parallelization decisions (outermost parallel level wins)."""
    nests = sorted({s.nest_index for s in scop.statements})
    decisions = []
    for nest in nests:
        levels = parallel_levels(scop, nest)
        cost = 0.0
        for stmt in scop.statements:
            if stmt.nest_index == nest:
                cost += float(cost_of_iters(stmt.name, stmt.points.points).sum())
        decisions.append(
            PollyDecision(nest, levels[0] if levels else None, cost)
        )
    return decisions


def polly_task_graph(
    scop: Scop,
    threads: int,
    cost_of_iters: IterCost = uniform_cost,
) -> TaskGraph:
    """Task graph of the Polly-parallelized program.

    Parallel nests become ``threads`` equal chunks (static scheduling of the
    parallel loop); consecutive nests are separated by a full barrier.
    """
    if threads < 1:
        raise ValueError("need at least one thread")
    graph = TaskGraph()
    prev_tasks: list[int] = []
    for dec in polly_decisions(scop, cost_of_iters):
        if dec.parallelized and threads > 1:
            per_chunk = dec.total_cost / threads
            current = [
                graph.add_task(
                    statement=f"nest{dec.nest_index}",
                    block_id=chunk,
                    cost=per_chunk,
                )
                for chunk in range(threads)
            ]
        else:
            current = [
                graph.add_task(
                    statement=f"nest{dec.nest_index}",
                    block_id=0,
                    cost=dec.total_cost,
                )
            ]
        for p in prev_tasks:
            for c in current:
                graph.add_edge(p, c)
        prev_tasks = current
    return graph


def polly_speedup(
    scop: Scop,
    threads: int,
    cost_of_iters: IterCost = uniform_cost,
    overhead: float = 0.0,
) -> float:
    """Simulated speed-up of the Polly baseline over sequential execution."""
    from ..tasking import simulate
    from .sequential import sequential_time

    graph = polly_task_graph(scop, threads, cost_of_iters)
    sim = simulate(graph, workers=threads, overhead=overhead)
    return sequential_time(scop, cost_of_iters) / sim.makespan
