"""Sequential baseline: the untransformed program as one task chain."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..scop import Scop
from ..tasking import TaskGraph

IterCost = Callable[[str, np.ndarray], np.ndarray]


def uniform_cost(statement: str, iters: np.ndarray) -> np.ndarray:
    """One abstract time unit per iteration."""
    del statement
    return np.ones(iters.shape[0])


def nest_costs(scop: Scop, cost_of_iters: IterCost = uniform_cost) -> dict[int, float]:
    """Total cost per loop nest under a per-iteration cost model."""
    totals: dict[int, float] = {}
    for stmt in scop.statements:
        c = float(cost_of_iters(stmt.name, stmt.points.points).sum())
        totals[stmt.nest_index] = totals.get(stmt.nest_index, 0.0) + c
    return totals


def sequential_task_graph(
    scop: Scop, cost_of_iters: IterCost = uniform_cost
) -> TaskGraph:
    """One task per nest, chained — models the original serial execution."""
    graph = TaskGraph()
    prev: int | None = None
    for nest, cost in sorted(nest_costs(scop, cost_of_iters).items()):
        tid = graph.add_task(statement=f"nest{nest}", block_id=0, cost=cost)
        if prev is not None:
            graph.add_edge(prev, tid)
        prev = tid
    return graph


def sequential_time(
    scop: Scop, cost_of_iters: IterCost = uniform_cost
) -> float:
    """Total serial running time of the program."""
    return float(sum(nest_costs(scop, cost_of_iters).values()))
