"""Measured execution of pipelined task programs.

Everything upstream of this module *analyzes* or *simulates*; here the
generated task program actually runs against real arrays, timed, on one
of three backends:

* ``serial`` — blocks execute immediately at creation order (the
  tasking-disabled baseline, but still vectorization-aware);
* ``threads`` — :class:`~repro.tasking.backends.FuturesBackend` thread
  pool (shared address space, GIL-limited for scalar bodies, overlaps
  NumPy kernels and blocking calls);
* ``processes`` — :class:`~repro.tasking.backends.ProcessBackend`
  worker processes over a :class:`~repro.interp.store.SharedArrayStore`
  (true multi-core execution).

:func:`execute_measured` returns the mutated store plus an
:class:`ExecutionStats` record carrying wall time and the vectorization
coverage of the plan — blocks whose statement has no vector kernel ran
on the compiled-loop path, and the per-statement fallback reasons say
why.  Bench traces embed this record (see ``repro.bench.trace``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..obs import runtime as obs_runtime
from ..obs.spans import span
from .interp import Interpreter
from .store import ArrayStore

if TYPE_CHECKING:
    from ..obs.runtime import RuntimeTrace

BACKENDS = ("serial", "threads", "processes")
#: Accepted spellings for each backend name.
BACKEND_ALIASES = {
    "serial": "serial",
    "thread": "threads",
    "threads": "threads",
    "threading": "threads",
    "process": "processes",
    "processes": "processes",
}


@dataclass(frozen=True)
class ExecutionStats:
    """What one measured execution did and how long it took."""

    backend: str
    workers: int
    vectorize: str
    wall_time: float
    blocks_total: int
    blocks_vectorized: int
    iterations_total: int
    iterations_vectorized: int
    fallback_reasons: dict[str, str] = field(default_factory=dict)
    scheduler: dict | None = None  # backend dispatch statistics
    #: live runtime events of the run (None unless collect_events);
    #: per-task timestamps are on the parent's monotonic clock — worker
    #: processes report ``monotonic_ns`` rebased through a calibrated
    #: per-worker offset, never raw ``perf_counter`` values
    events: "RuntimeTrace | None" = None
    #: privatized-reduction summary (arrays, parts, join labels) when
    #: the run came from :func:`repro.interp.privexec.execute_privatized`
    privatization: dict | None = None

    @property
    def block_coverage(self) -> float:
        """Fraction of blocks that ran on the vectorized path."""
        return self.blocks_vectorized / self.blocks_total if (
            self.blocks_total
        ) else 0.0

    @property
    def iteration_coverage(self) -> float:
        """Fraction of statement instances that ran vectorized."""
        return self.iterations_vectorized / self.iterations_total if (
            self.iterations_total
        ) else 0.0

    def as_dict(self) -> dict:
        """JSON-ready form for traces and bench reports."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "vectorize": self.vectorize,
            "wall_time_s": self.wall_time,
            "blocks_total": self.blocks_total,
            "blocks_vectorized": self.blocks_vectorized,
            "iterations_total": self.iterations_total,
            "iterations_vectorized": self.iterations_vectorized,
            "block_coverage": round(self.block_coverage, 4),
            "iteration_coverage": round(self.iteration_coverage, 4),
            "fallback_reasons": dict(self.fallback_reasons),
            "scheduler": self.scheduler,
            "runtime": (
                self.events.summary_dict() if self.events is not None else None
            ),
            "privatization": self.privatization,
        }

    def summary(self) -> str:
        cov = 100.0 * self.iteration_coverage
        return (
            f"{self.backend} ({self.workers} workers, vectorize="
            f"{self.vectorize}): {self.wall_time * 1e3:.1f} ms, "
            f"{self.blocks_total} blocks, {cov:.0f}% iterations vectorized"
        )


def execute_measured(
    interp: Interpreter,
    info,
    backend: str = "serial",
    workers: int = 4,
    store: ArrayStore | None = None,
    cost_of_block: Callable | None = None,
    collect_events: bool = False,
) -> tuple[ArrayStore, ExecutionStats]:
    """Emit the pipelined task program for ``info`` and actually run it.

    The store (a fresh deterministic one unless given) is mutated in
    place and returned with timing/coverage statistics.  Every backend
    executes the identical task program, so results are bit-comparable
    across backends and against :meth:`Interpreter.run_sequential`.

    Tasks are created straight from the task AST with the same packed
    ``dependArr`` addressing the emitted source programs use (see
    :mod:`repro.codegen.emit`) — but payloads keep their NumPy iteration
    arrays instead of round-tripping through Python literals, so the
    timing measures kernel execution, not source re-parsing.
    """
    from ..codegen.emit import statement_columns, statement_packers
    from ..schedule import generate_task_ast
    from ..tasking import FuturesBackend, ProcessBackend, SerialBackend

    backend = BACKEND_ALIASES.get(backend, backend)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; choose from {BACKENDS}"
        )
    ast = generate_task_ast(info)
    columns = statement_columns(ast)
    packers = statement_packers(ast)
    write_num = len(columns)
    cost = cost_of_block or (lambda b: float(b.size))
    if store is None:
        store = interp.new_store()

    plan = interp.vector_program if interp.vectorize != "off" else None
    blocks_total = blocks_vec = iters_total = iters_vec = 0
    for nest in ast.nests:
        stmt_vec = plan is not None and plan.get(nest.statement) is not None
        for block in nest.blocks:
            size = len(block.iterations)
            blocks_total += 1
            iters_total += size
            if stmt_vec:
                blocks_vec += 1
                iters_vec += size
    fallback = plan.fallback_reasons() if plan is not None else {}

    if backend == "serial":
        system = SerialBackend(write_num)
    elif backend == "threads":
        system = FuturesBackend(write_num, workers=workers)
    else:  # processes
        system = ProcessBackend(write_num, interp, store, workers=workers)

    def task_body(payload) -> None:
        interp.run_block(store, payload["statement"], payload["iters"])

    # One function object per statement: backends key their funcCount
    # self-chain (serializing same-statement blocks) on func identity.
    stmt_funcs = {
        nest.statement: (lambda payload, _f=task_body: _f(payload))
        for nest in ast.nests
    }

    def build_tasks() -> None:
        for nest in ast.nests:
            col = columns[nest.statement]
            packer = packers[nest.statement]
            for block in nest.blocks:
                in_dep = [packers[s].pack(end) for s, end in block.in_tokens]
                in_idx = [columns[s] for s, _ in block.in_tokens]
                system.create_task(
                    stmt_funcs[nest.statement],
                    {"statement": nest.statement, "iters": block.iterations},
                    out_depend=packer.pack(block.end),
                    out_idx=col,
                    in_depend=in_dep,
                    in_idx=in_idx,
                    cost=cost(block),
                    statement=nest.statement,
                )

    # The serial backend executes inside create_task, so the collector
    # must span task creation as well as the run.
    runtime_trace = None
    with span("exec.measured", backend=backend, workers=workers):
        if collect_events:
            with obs_runtime.collecting(backend, workers) as collector:
                start = time.perf_counter()
                build_tasks()
                result = system.run(workers=workers)
                wall = time.perf_counter() - start
            runtime_trace = collector.trace()
        else:
            start = time.perf_counter()
            build_tasks()
            result = system.run(workers=workers)
            wall = time.perf_counter() - start
    # Both parallel backends report dispatch statistics (work-stealing
    # steals / ready-batch counts); the serial backend returns None.
    scheduler = result if isinstance(result, dict) else None

    stats = ExecutionStats(
        backend=backend,
        workers=workers if backend != "serial" else 1,
        vectorize=interp.vectorize,
        wall_time=wall,
        blocks_total=blocks_total,
        blocks_vectorized=blocks_vec,
        iterations_total=iters_total,
        iterations_vectorized=iters_vec,
        fallback_reasons=fallback,
        scheduler=scheduler,
        events=runtime_trace,
    )
    return store, stats


def run_all_backends(
    interp_factory: Callable[[str], Interpreter],
    info_of: Callable[[Interpreter], object],
    workers: int = 4,
) -> dict[str, tuple[ArrayStore, ExecutionStats]]:
    """Run one kernel on every (backend, vectorize) combination.

    ``interp_factory(vectorize_mode)`` builds a fresh interpreter;
    ``info_of(interp)`` yields its pipeline info.  Used by the
    differential tests and the execution bench.
    """
    out: dict[str, tuple[ArrayStore, ExecutionStats]] = {}
    for label, backend, mode in (
        ("scalar-serial", "serial", "off"),
        ("vector-serial", "serial", "auto"),
        ("threads", "threads", "auto"),
        ("processes", "processes", "auto"),
    ):
        interp = interp_factory(mode)
        out[label] = execute_measured(
            interp, info_of(interp), backend=backend, workers=workers
        )
    return out
