"""Measured execution of pipelined task programs.

Everything upstream of this module *analyzes* or *simulates*; here the
generated task program actually runs against real arrays, timed, on one
of three backends:

* ``serial`` — blocks execute immediately at creation order (the
  tasking-disabled baseline, but still vectorization-aware);
* ``threads`` — :class:`~repro.tasking.backends.FuturesBackend` thread
  pool (shared address space, GIL-limited for scalar bodies, overlaps
  NumPy kernels and blocking calls);
* ``processes`` — :class:`~repro.tasking.backends.ProcessBackend`
  worker processes over a :class:`~repro.interp.store.SharedArrayStore`
  (true multi-core execution).

:func:`execute_measured` returns the mutated store plus an
:class:`ExecutionStats` record carrying wall time and the vectorization
coverage of the plan — blocks whose statement has no vector kernel ran
on the compiled-loop path, and the per-statement fallback reasons say
why.  Bench traces embed this record (see ``repro.bench.trace``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..obs import runtime as obs_runtime
from ..obs.spans import span
from .interp import Interpreter
from .store import ArrayStore

if TYPE_CHECKING:
    from ..obs.runtime import RuntimeTrace

BACKENDS = ("serial", "threads", "processes")
#: Accepted spellings for each backend name.
BACKEND_ALIASES = {
    "serial": "serial",
    "thread": "threads",
    "threads": "threads",
    "threading": "threads",
    "process": "processes",
    "processes": "processes",
}


@dataclass(frozen=True)
class ExecutionStats:
    """What one measured execution did and how long it took."""

    backend: str
    workers: int
    vectorize: str
    wall_time: float
    blocks_total: int
    blocks_vectorized: int
    iterations_total: int
    iterations_vectorized: int
    fallback_reasons: dict[str, str] = field(default_factory=dict)
    scheduler: dict | None = None  # backend dispatch statistics
    #: live runtime events of the run (None unless collect_events);
    #: per-task timestamps are on the parent's monotonic clock — worker
    #: processes report ``monotonic_ns`` rebased through a calibrated
    #: per-worker offset, never raw ``perf_counter`` values
    events: "RuntimeTrace | None" = None
    #: privatized-reduction summary (arrays, parts, join labels) when
    #: the run came from :func:`repro.interp.privexec.execute_privatized`
    privatization: dict | None = None
    #: resolved fuse mode of the interpreter that ran
    fuse: str = "off"
    #: blocks / statement instances dispatched as fused closures (chain
    #: members count individually so coverage stays comparable)
    blocks_fused: int = 0
    iterations_fused: int = 0
    #: per-statement dispatch path actually planned for this run:
    #: "fused" / "vectorized" / "interp"
    dispatch_modes: dict[str, str] = field(default_factory=dict)
    #: per-statement fusion refusals: {stmt: {"reason": ..., "code": RPA06x}}
    fused_fallback: dict[str, dict] = field(default_factory=dict)
    #: merged block-chains executed as single tasks, e.g. (("S", "T"),)
    fused_chains: tuple[tuple[str, ...], ...] = ()
    #: backend task id -> unfused-graph task ids it executed (empty when
    #: no chains were merged, i.e. ids already align); lets collected
    #: events be expanded back onto the unfused task graph
    task_members: tuple[tuple[int, ...], ...] = ()

    @property
    def block_coverage(self) -> float:
        """Fraction of blocks that ran on the vectorized path."""
        return self.blocks_vectorized / self.blocks_total if (
            self.blocks_total
        ) else 0.0

    @property
    def iteration_coverage(self) -> float:
        """Fraction of statement instances that ran vectorized."""
        return self.iterations_vectorized / self.iterations_total if (
            self.iterations_total
        ) else 0.0

    @property
    def fused_block_coverage(self) -> float:
        """Fraction of blocks that ran as fused closures."""
        return self.blocks_fused / self.blocks_total if (
            self.blocks_total
        ) else 0.0

    @property
    def fused_iteration_coverage(self) -> float:
        """Fraction of statement instances that ran as fused closures."""
        return self.iterations_fused / self.iterations_total if (
            self.iterations_total
        ) else 0.0

    def as_dict(self) -> dict:
        """JSON-ready form for traces and bench reports."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "vectorize": self.vectorize,
            "fuse": self.fuse,
            "wall_time_s": self.wall_time,
            "blocks_total": self.blocks_total,
            "blocks_vectorized": self.blocks_vectorized,
            "blocks_fused": self.blocks_fused,
            "iterations_total": self.iterations_total,
            "iterations_vectorized": self.iterations_vectorized,
            "iterations_fused": self.iterations_fused,
            "block_coverage": round(self.block_coverage, 4),
            "iteration_coverage": round(self.iteration_coverage, 4),
            "fused_block_coverage": round(self.fused_block_coverage, 4),
            "fused_iteration_coverage": round(
                self.fused_iteration_coverage, 4
            ),
            "dispatch_modes": dict(self.dispatch_modes),
            "fused_fallback": dict(self.fused_fallback),
            "fused_chains": [list(c) for c in self.fused_chains],
            "task_members": [list(m) for m in self.task_members],
            "fallback_reasons": dict(self.fallback_reasons),
            "scheduler": self.scheduler,
            "runtime": (
                self.events.summary_dict() if self.events is not None else None
            ),
            "privatization": self.privatization,
        }

    def summary(self) -> str:
        cov = 100.0 * self.iteration_coverage
        fused = 100.0 * self.fused_iteration_coverage
        return (
            f"{self.backend} ({self.workers} workers, vectorize="
            f"{self.vectorize}, fuse={self.fuse}): "
            f"{self.wall_time * 1e3:.1f} ms, "
            f"{self.blocks_total} blocks, {cov:.0f}% iterations vectorized, "
            f"{fused:.0f}% fused"
        )


def execute_measured(
    interp: Interpreter,
    info,
    backend: str = "serial",
    workers: int = 4,
    store: ArrayStore | None = None,
    cost_of_block: Callable | None = None,
    collect_events: bool = False,
) -> tuple[ArrayStore, ExecutionStats]:
    """Emit the pipelined task program for ``info`` and actually run it.

    The store (a fresh deterministic one unless given) is mutated in
    place and returned with timing/coverage statistics.  Every backend
    executes the identical task program, so results are bit-comparable
    across backends and against :meth:`Interpreter.run_sequential`.

    Tasks are created straight from the task AST with the same packed
    ``dependArr`` addressing the emitted source programs use (see
    :mod:`repro.codegen.emit`) — but payloads keep their NumPy iteration
    arrays instead of round-tripping through Python literals, so the
    timing measures kernel execution, not source re-parsing.
    """
    from ..codegen.emit import statement_columns, statement_packers
    from ..schedule import generate_task_ast
    from ..tasking import FuturesBackend, ProcessBackend, SerialBackend

    backend = BACKEND_ALIASES.get(backend, backend)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; choose from {BACKENDS}"
        )
    from .fused import plan_chain_groups
    from .vectorize import rectangles

    ast = generate_task_ast(info)
    columns = statement_columns(ast)
    packers = statement_packers(ast)
    write_num = len(columns)
    cost = cost_of_block or (lambda b: float(b.size))
    if store is None:
        store = interp.new_store()

    plan = interp.vector_program if interp.vectorize != "off" else None
    fprog = interp.fused_program if interp.fuse != "off" else None

    # Fused dispatch plan: one entry per task stream.  Singleton groups
    # keep the per-nest task structure; longer groups are fusion-legal
    # block-chains merged into a single task per block index.  Merged
    # task ids are mapped back to unfused-graph ids via ``task_members``
    # so event collection and the profiler keep working under merging.
    if fprog is not None:
        groups, _ = plan_chain_groups(interp.scop, ast, fprog)
    else:
        groups = [[nest] for nest in ast.nests]

    blocks_total = blocks_vec = blocks_fused = 0
    iters_total = iters_vec = iters_fused = 0
    dispatch_modes: dict[str, str] = {}
    for nest in ast.nests:
        stmt_vec = plan is not None and plan.get(nest.statement) is not None
        stmt_fused = (
            fprog is not None and fprog.get(nest.statement) is not None
        )
        dispatch_modes[nest.statement] = (
            "fused" if stmt_fused else "vectorized" if stmt_vec else "interp"
        )
        for block in nest.blocks:
            size = len(block.iterations)
            blocks_total += 1
            iters_total += size
            if stmt_vec:
                blocks_vec += 1
                iters_vec += size
            if stmt_fused:
                blocks_fused += 1
                iters_fused += size
    fallback = plan.fallback_reasons() if plan is not None else {}
    fused_fallback = fprog.fallbacks() if fprog is not None else {}
    fused_chains = tuple(
        tuple(n.statement for n in g) for g in groups if len(g) > 1
    )

    # Per-group task stream: label, fused kernel (None -> run_block
    # ladder), member nests.  Chain kernels were registered on the fused
    # program by plan_chain_groups, so they precede backend construction
    # and reach worker processes with the rest of the plan.
    group_rows = []
    for group in groups:
        if len(group) == 1:
            label = group[0].statement
        else:
            label = "+".join(n.statement for n in group)
        kernel = fprog.get(label) if fprog is not None else None
        group_rows.append((label, kernel, group))

    # Stable synthetic ids for merged chain tasks: backend task ids are
    # assigned in creation order (group_rows × blocks), the *unfused*
    # graph's ids in AST order (nests × blocks).  ``task_members[t]``
    # lists the unfused ids a backend task executed, so collected events
    # can be expanded back onto the graph the profiler joins against.
    merged = any(len(g) > 1 for g in groups)
    task_members: tuple[tuple[int, ...], ...] = ()
    if merged:
        offsets: dict[str, int] = {}
        acc = 0
        for nest in ast.nests:
            offsets[nest.statement] = acc
            acc += len(nest.blocks)
        rows: list[tuple[int, ...]] = []
        for _label, _kernel, group in group_rows:
            for b in range(len(group[-1].blocks)):
                rows.append(
                    tuple(offsets[n.statement] + b for n in group)
                )
        task_members = tuple(rows)

    if backend == "serial":
        system = SerialBackend(write_num)
    elif backend == "threads":
        system = FuturesBackend(write_num, workers=workers)
    else:  # processes
        system = ProcessBackend(write_num, interp, store, workers=workers)

    def task_body(payload) -> None:
        interp.run_block(store, payload["statement"], payload["iters"])

    # One function object per task stream: backends key their funcCount
    # self-chain (serializing same-stream blocks) on func identity.  A
    # fused stream's hot path is a single closure call over rectangles
    # precomputed at task-creation time — no per-task interpretation.
    stream_funcs = {}
    for label, kernel, _group in group_rows:
        if kernel is not None:
            stream_funcs[label] = (
                lambda payload, _k=kernel: _k.run_rects(
                    store, interp.funcs, payload["rects"]
                )
            )
        else:
            stream_funcs[label] = (
                lambda payload, _f=task_body: _f(payload)
            )

    def build_tasks() -> None:
        for label, kernel, group in group_rows:
            last = group[-1]
            col = columns[last.statement]
            packer = packers[last.statement]
            members = {n.statement for n in group}
            for b, block in enumerate(last.blocks):
                blocks = [n.blocks[b] for n in group]
                if len(group) == 1:
                    in_tok = list(block.in_tokens)
                else:
                    # union of member tokens minus in-chain ones (same- or
                    # earlier-index member work is ordered by the merged
                    # task itself / its self-chain)
                    seen = set()
                    in_tok = []
                    for blk in blocks:
                        for s, end in blk.in_tokens:
                            if s in members:
                                continue
                            key = (s, tuple(end))
                            if key not in seen:
                                seen.add(key)
                                in_tok.append((s, end))
                payload = {"statement": label, "iters": blocks[0].iterations}
                if kernel is not None:
                    payload["rects"] = rectangles(blocks[0].iterations)
                system.create_task(
                    stream_funcs[label],
                    payload,
                    out_depend=packer.pack(block.end),
                    out_idx=col,
                    in_depend=[packers[s].pack(end) for s, end in in_tok],
                    in_idx=[columns[s] for s, _ in in_tok],
                    cost=sum(cost(blk) for blk in blocks),
                    statement=label,
                )

    # The serial backend executes inside create_task, so the collector
    # must span task creation as well as the run.
    runtime_trace = None
    with span("exec.measured", backend=backend, workers=workers):
        if collect_events:
            with obs_runtime.collecting(backend, workers) as collector:
                start = time.perf_counter()
                build_tasks()
                result = system.run(workers=workers)
                wall = time.perf_counter() - start
            runtime_trace = collector.trace()
        else:
            start = time.perf_counter()
            build_tasks()
            result = system.run(workers=workers)
            wall = time.perf_counter() - start
    # Both parallel backends report dispatch statistics (work-stealing
    # steals / ready-batch counts); the serial backend returns None.
    scheduler = result if isinstance(result, dict) else None

    stats = ExecutionStats(
        backend=backend,
        workers=workers if backend != "serial" else 1,
        vectorize=interp.vectorize,
        wall_time=wall,
        blocks_total=blocks_total,
        blocks_vectorized=blocks_vec,
        iterations_total=iters_total,
        iterations_vectorized=iters_vec,
        fallback_reasons=fallback,
        scheduler=scheduler,
        events=runtime_trace,
        fuse=interp.fuse,
        blocks_fused=blocks_fused,
        iterations_fused=iters_fused,
        dispatch_modes=dispatch_modes,
        fused_fallback=fused_fallback,
        fused_chains=fused_chains,
        task_members=task_members,
    )
    return store, stats


def run_all_backends(
    interp_factory: Callable[[str], Interpreter],
    info_of: Callable[[Interpreter], object],
    workers: int = 4,
) -> dict[str, tuple[ArrayStore, ExecutionStats]]:
    """Run one kernel on every (backend, vectorize) combination.

    ``interp_factory(vectorize_mode)`` builds a fresh interpreter;
    ``info_of(interp)`` yields its pipeline info.  Used by the
    differential tests and the execution bench.
    """
    out: dict[str, tuple[ArrayStore, ExecutionStats]] = {}
    for label, backend, mode in (
        ("scalar-serial", "serial", "off"),
        ("vector-serial", "serial", "auto"),
        ("threads", "threads", "auto"),
        ("processes", "processes", "auto"),
    ):
        interp = interp_factory(mode)
        out[label] = execute_measured(
            interp, info_of(interp), backend=backend, workers=workers
        )
    return out
