"""Kernel execution: array store, statement compilation, reference interpreter."""

from .compile import CompiledStatement, StatementFn, compile_scop, compile_statement
from .interp import DEFAULT_FUNCS, Interpreter
from .store import ArrayStore, ArrayView

__all__ = [
    "ArrayStore",
    "ArrayView",
    "CompiledStatement",
    "DEFAULT_FUNCS",
    "Interpreter",
    "StatementFn",
    "compile_scop",
    "compile_statement",
]
