"""Kernel execution: array store, statement compilation, reference interpreter."""

from .compile import (
    COMPOUND_OPS,
    CompiledStatement,
    StatementFn,
    compile_scop,
    compile_statement,
    emit_closure_spec,
)
from .executor import BACKENDS, ExecutionStats, execute_measured
from .fused import (
    REDUCTION_IDENTITY,
    ClosureSpec,
    FusedKernel,
    FusedProgram,
    NotFusable,
    StatementSpec,
    build_closure,
    closure_source,
    fuse_scop,
    fusion_legal_pair,
)
from .interp import DEFAULT_FUNCS, Interpreter
from .privexec import (
    GROUP_UFUNCS,
    apply_combine,
    execute_privatized,
    privatized_matches,
)
from .store import ArrayStore, ArrayView, SharedArrayStore
from .vectorize import (
    NotVectorizable,
    VectorEntry,
    VectorProgram,
    VectorizedStatement,
    elementwise,
    is_elementwise,
    rectangles,
    vectorize_scop,
    vectorize_statement,
)

__all__ = [
    "ArrayStore",
    "ArrayView",
    "BACKENDS",
    "COMPOUND_OPS",
    "CompiledStatement",
    "DEFAULT_FUNCS",
    "ExecutionStats",
    "execute_measured",
    "GROUP_UFUNCS",
    "apply_combine",
    "execute_privatized",
    "privatized_matches",
    "Interpreter",
    "NotFusable",
    "NotVectorizable",
    "REDUCTION_IDENTITY",
    "ClosureSpec",
    "FusedKernel",
    "FusedProgram",
    "StatementSpec",
    "build_closure",
    "closure_source",
    "emit_closure_spec",
    "fuse_scop",
    "fusion_legal_pair",
    "SharedArrayStore",
    "StatementFn",
    "VectorEntry",
    "VectorProgram",
    "VectorizedStatement",
    "compile_scop",
    "compile_statement",
    "elementwise",
    "is_elementwise",
    "rectangles",
    "vectorize_scop",
    "vectorize_statement",
]
