"""Kernel execution: array store, statement compilation, reference interpreter."""

from .compile import (
    COMPOUND_OPS,
    CompiledStatement,
    StatementFn,
    compile_scop,
    compile_statement,
)
from .executor import BACKENDS, ExecutionStats, execute_measured
from .interp import DEFAULT_FUNCS, Interpreter
from .privexec import (
    GROUP_UFUNCS,
    apply_combine,
    execute_privatized,
    privatized_matches,
)
from .store import ArrayStore, ArrayView, SharedArrayStore
from .vectorize import (
    NotVectorizable,
    VectorEntry,
    VectorProgram,
    VectorizedStatement,
    elementwise,
    is_elementwise,
    rectangles,
    vectorize_scop,
    vectorize_statement,
)

__all__ = [
    "ArrayStore",
    "ArrayView",
    "BACKENDS",
    "COMPOUND_OPS",
    "CompiledStatement",
    "DEFAULT_FUNCS",
    "ExecutionStats",
    "execute_measured",
    "GROUP_UFUNCS",
    "apply_combine",
    "execute_privatized",
    "privatized_matches",
    "Interpreter",
    "NotVectorizable",
    "SharedArrayStore",
    "StatementFn",
    "VectorEntry",
    "VectorProgram",
    "VectorizedStatement",
    "compile_scop",
    "compile_statement",
    "elementwise",
    "is_elementwise",
    "rectangles",
    "vectorize_scop",
    "vectorize_statement",
]
