"""Measured execution of privatized reduction schedules.

:func:`execute_privatized` is the runtime half of the privatization
transformation (:mod:`repro.schedule.privatize`): it runs the re-blocked
task program with one *private accumulator buffer per member block* and
one generated *join task per reduction group*:

* every private is allocated with the accumulator's shape and filled
  with the operator-group identity (``sum`` → 0, ``product`` → 1,
  ``min`` → +inf, ``max`` → −inf), so a block that updates its private
  computes exactly "its updates applied to the identity" — which makes
  the join the plain group operator even for ``-=`` updates (the private
  accumulates the negated sum, and adding it to the base is the original
  semantics);
* member blocks are created ``chain=False`` (their mutual order is
  exactly what the verified proof relaxed) and execute against a *proxy*
  store that aliases the accumulator name onto the block's private — the
  compiled loop bodies and vectorized kernels read
  ``store.arrays[name]`` and run unchanged;
* the join task folds the privates into the base accumulator in one
  fixed, ascending creation order inside a single task, so all
  privatized backends (serial / threads / processes) produce
  **bit-identical** accumulators for the same part count — only the
  comparison against *sequential* needs an associativity-aware tolerance
  for sum/product (min/max and exact-integer sums match bitwise there
  too).

Private buffers are injected into the caller's store for the run (the
process backend shares every store entry through one
:class:`~repro.interp.store.SharedArrayStore` segment) and removed again
before returning.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..obs import runtime as obs_runtime
from ..obs.spans import span
from .executor import BACKEND_ALIASES, BACKENDS, ExecutionStats
from .interp import Interpreter
from .store import ArrayStore, ArrayView

if TYPE_CHECKING:
    from ..pipeline import PipelineInfo
    from ..schedule.privatize import PrivatizationPlan

#: The join's combining ufunc per operator group.  ``sum`` uses ``+``
#: even for ``-=`` idioms — see the module docstring.
GROUP_UFUNCS = {
    "sum": np.add,
    "product": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}

#: Accumulator comparisons against *sequential* execution that are exact
#: in float64 regardless of combine order.
EXACT_GROUPS = frozenset({"min", "max"})


def private_name(array: str, index: int) -> str:
    """Deterministic name of the ``index``-th private buffer of a group."""
    return f"__priv_{array}_{index}"


def apply_combine(store, combine: dict) -> None:
    """Fold a group's private buffers into the base accumulator.

    ``combine`` is the join-task payload
    ``{"array": name, "group": key, "privates": [names...]}``; privates
    combine in the listed (ascending creation) order so every backend
    produces the same bit pattern.
    """
    ufunc = GROUP_UFUNCS[combine["group"]]
    base = store.arrays[combine["array"]].data
    for name in combine["privates"]:
        ufunc(base, store.arrays[name].data, out=base)


def execute_privatized(
    interp: Interpreter,
    info: "PipelineInfo",
    plan: "PrivatizationPlan",
    backend: str = "serial",
    workers: int = 4,
    store: ArrayStore | None = None,
    cost_of_block: Callable | None = None,
    collect_events: bool = False,
) -> tuple[ArrayStore, ExecutionStats]:
    """Run the privatized task program for ``info`` under ``plan``.

    ``info`` must already be the *privatized* pipeline info
    (:func:`repro.schedule.privatize.privatize_info`), i.e. member
    statements re-blocked into chunks.  The plan is re-validated here —
    a tampered group (wrong identity, unverified proof) stops execution.
    """
    from ..codegen.emit import statement_columns, statement_packers
    from ..schedule import generate_task_ast
    from ..schedule.privatize import join_label
    from ..tasking import FuturesBackend, ProcessBackend, SerialBackend

    backend = BACKEND_ALIASES.get(backend, backend)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; choose from {BACKENDS}"
        )
    plan.validate()  # tamper guard on the execution path
    if not plan.groups:
        from .executor import execute_measured

        return execute_measured(
            interp,
            info,
            backend=backend,
            workers=workers,
            store=store,
            cost_of_block=cost_of_block,
            collect_events=collect_events,
        )

    ast = generate_task_ast(info)
    columns = statement_columns(ast)
    packers = statement_packers(ast)
    # one extra out column per reduction group for the join tasks
    write_num = len(columns) + len(plan.groups)
    cost = cost_of_block or (lambda b: float(b.size))
    if store is None:
        store = interp.new_store()

    plan_vec = interp.vector_program if interp.vectorize != "off" else None
    fprog = interp.fused_program if interp.fuse != "off" else None
    blocks_total = blocks_vec = iters_total = iters_vec = 0
    blocks_fused = iters_fused = 0
    dispatch_modes: dict[str, str] = {}
    for nest in ast.nests:
        stmt_vec = plan_vec is not None and plan_vec.get(nest.statement) is not None
        stmt_fused = fprog is not None and fprog.get(nest.statement) is not None
        dispatch_modes[nest.statement] = (
            "fused" if stmt_fused else "vectorized" if stmt_vec else "interp"
        )
        for block in nest.blocks:
            size = len(block.iterations)
            blocks_total += 1
            iters_total += size
            if stmt_vec:
                blocks_vec += 1
                iters_vec += size
            if stmt_fused:
                blocks_fused += 1
                iters_fused += size
    fallback = plan_vec.fallback_reasons() if plan_vec is not None else {}
    fused_fallback = fprog.fallbacks() if fprog is not None else {}

    # ------------------------------------------------------------------
    # allocate + identity-initialize one private per member block
    # ------------------------------------------------------------------
    group_of_stmt = {
        s: g for g in plan.groups for s in g.statements
    }
    privates: dict[str, list[str]] = {g.array: [] for g in plan.groups}
    block_priv: dict[tuple[str, int], str] = {}
    for nest in ast.nests:
        group = group_of_stmt.get(nest.statement)
        if group is None:
            continue
        base = store.arrays[group.array]
        for block in nest.blocks:
            name = private_name(group.array, len(privates[group.array]))
            if name in store.arrays:
                raise ValueError(
                    f"private buffer name {name!r} collides with a "
                    "program array"
                )
            data = np.full_like(base.data, group.identity)
            store.arrays[name] = ArrayView(name, data, base.offsets)
            privates[group.array].append(name)
            block_priv[(nest.statement, block.block_id)] = name

    if backend == "serial":
        system = SerialBackend(write_num)
    elif backend == "threads":
        system = FuturesBackend(write_num, workers=workers)
    else:  # processes
        system = ProcessBackend(write_num, interp, store, workers=workers)

    def task_body(payload) -> None:
        st = store
        remap = payload.get("remap")
        if remap:
            st = ArrayStore(
                {**store.arrays, **{
                    acc: store.arrays[priv] for acc, priv in remap.items()
                }}
            )
        interp.run_block(st, payload["statement"], payload["iters"])

    def join_body(payload) -> None:
        apply_combine(store, payload["combine"])

    stmt_funcs = {
        nest.statement: (lambda payload, _f=task_body: _f(payload))
        for nest in ast.nests
    }
    join_funcs = {
        g.array: (lambda payload, _f=join_body: _f(payload))
        for g in plan.groups
    }

    def build_tasks() -> None:
        member_tokens: dict[str, list[tuple[int, int]]] = {
            g.array: [] for g in plan.groups
        }
        for nest in ast.nests:
            col = columns[nest.statement]
            packer = packers[nest.statement]
            group = group_of_stmt.get(nest.statement)
            for block in nest.blocks:
                in_dep = [packers[s].pack(end) for s, end in block.in_tokens]
                in_idx = [columns[s] for s, _ in block.in_tokens]
                payload = {
                    "statement": nest.statement,
                    "iters": block.iterations,
                }
                if group is not None:
                    payload["remap"] = {
                        group.array: block_priv[(nest.statement, block.block_id)]
                    }
                    member_tokens[group.array].append(
                        (packer.pack(block.end), col)
                    )
                system.create_task(
                    stmt_funcs[nest.statement],
                    payload,
                    out_depend=packer.pack(block.end),
                    out_idx=col,
                    in_depend=in_dep,
                    in_idx=in_idx,
                    cost=cost(block),
                    # privatized blocks commute — no funcCount self chain
                    chain=group is None,
                    statement=nest.statement,
                )
        # one join task per group, waiting on every member block's token
        for k, g in enumerate(plan.groups):
            tokens = member_tokens[g.array]
            system.create_task(
                join_funcs[g.array],
                {
                    "statement": join_label(g.array),
                    "iters": np.empty((0, 1), dtype=np.int64),
                    "combine": {
                        "array": g.array,
                        "group": g.group,
                        "privates": list(privates[g.array]),
                    },
                },
                out_depend=0,
                out_idx=len(columns) + k,
                in_depend=[d for d, _ in tokens],
                in_idx=[ix for _, ix in tokens],
                cost=1.0,
                statement=join_label(g.array),
            )

    runtime_trace = None
    try:
        with span(
            "exec.privatized",
            backend=backend,
            workers=workers,
            groups=len(plan.groups),
            privates=sum(len(v) for v in privates.values()),
        ):
            if collect_events:
                with obs_runtime.collecting(backend, workers) as collector:
                    start = time.perf_counter()
                    build_tasks()
                    result = system.run(workers=workers)
                    wall = time.perf_counter() - start
                runtime_trace = collector.trace()
            else:
                start = time.perf_counter()
                build_tasks()
                result = system.run(workers=workers)
                wall = time.perf_counter() - start
    finally:
        # the privates are scratch — callers only see program arrays
        for names in privates.values():
            for name in names:
                store.arrays.pop(name, None)
    scheduler = result if isinstance(result, dict) else None

    stats = ExecutionStats(
        backend=backend,
        workers=workers if backend != "serial" else 1,
        vectorize=interp.vectorize,
        wall_time=wall,
        blocks_total=blocks_total,
        blocks_vectorized=blocks_vec,
        iterations_total=iters_total,
        iterations_vectorized=iters_vec,
        fallback_reasons=fallback,
        scheduler=scheduler,
        events=runtime_trace,
        fuse=interp.fuse,
        blocks_fused=blocks_fused,
        iterations_fused=iters_fused,
        dispatch_modes=dispatch_modes,
        fused_fallback=fused_fallback,
        privatization={
            "arrays": list(privates),
            "groups": {g.array: g.group for g in plan.groups},
            "parts": {
                s: sum(
                    1 for key in block_priv if key[0] == s
                )
                for s in sorted(plan.statements)
            },
            "privates": sum(len(v) for v in privates.values()),
            "joins": [join_label(g.array) for g in plan.groups],
        },
    )
    return store, stats


def privatized_matches(
    plan: "PrivatizationPlan",
    sequential: ArrayStore,
    privatized: ArrayStore,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> tuple[bool, str]:
    """Group-aware comparison of a privatized run against sequential.

    Non-accumulator arrays and ``min``/``max`` accumulators must match
    **bit-exactly** (reordering min/max is exact in float64); ``sum`` and
    ``product`` accumulators are compared with an explicit
    associativity-aware tolerance, because the join applies the operator
    in a different (but fixed) order than the sequential loop.
    """
    approx = {
        g.array for g in plan.groups if g.group not in EXACT_GROUPS
    }
    worst = ""
    for name in sorted(sequential.arrays):
        a = sequential.arrays[name].data
        b = privatized.arrays[name].data
        if name in approx:
            if not np.allclose(a, b, rtol=rtol, atol=atol):
                err = float(np.max(np.abs(a - b)))
                return False, f"{name}: max abs error {err:g} beyond tolerance"
            if not np.array_equal(a, b):
                worst = f"{name}: within tolerance (reassociated sum/product)"
        elif not np.array_equal(a, b):
            return False, f"{name}: exact comparison failed"
    return True, worst or "bit-exact"
