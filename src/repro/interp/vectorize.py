"""Vectorized whole-block compilation of affine statement bodies.

The compiled-loop path of :mod:`repro.interp.compile` executes one Python
iteration per statement instance — correct, but the per-iteration
interpreter overhead dwarfs the arithmetic.  This module adds a second
code path: when a statement is *vectorizable*, its body is compiled once
into a NumPy kernel over an axis-aligned rectangle of iterations, so a
whole pipeline block executes as a handful of strided array operations.

Legality (checked per statement, conservatively):

* every subscript is affine with **at most one loop variable per array
  dimension** and a **positive stride** (``A[2*i+1][j]`` vectorizes,
  ``A[2*i+j][j]`` does not — a coupled subscript has no slice form);
* no loop variable appears in two dimensions of one access (``A[i][i]``
  diagonals have no slice form);
* the **write** uses every loop variable exactly once, so distinct
  iterations write distinct cells (injective ⇒ no scatter collisions);
* the statement carries **no flow self-dependence** — a recurrence such
  as ``A[i][j] = f(A[i][j-1])`` must execute iteration by iteration
  (the Polly-style scalar fallback; anti self-dependences are fine
  because the kernel gathers every read before it scatters the write);
* every opaque ``Call`` resolves to a function flagged *elementwise*
  (``fn.elementwise = True`` or a ``numpy.ufunc``); an arbitrary Python
  function cannot be assumed to map over arrays.

Statements that fail any check fall back to the compiled-loop path; the
reason is recorded in the :class:`VectorProgram` so execution traces can
report vectorization coverage and blame fallbacks.

A block's iteration set is usually *not* a rectangle (pipeline blocks
are lexicographic intervals), so :func:`rectangles` decomposes it into
axis-aligned rectangles executed in lexicographic order — each rectangle
is a contiguous range of the lex-sorted iterations, which preserves
anti-dependence ordering across rectangles, while gather-before-scatter
NumPy evaluation preserves it within one rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..lang.ast import ArrayAccess, BinOp, Call, Expr, IntLit, VarRef
from ..lang.errors import SemanticError
from ..scop import Scop, ScopStatement
from ..scop.deps import DepKind, dependence_relation
from .compile import COMPOUND_OPS
from .store import ArrayStore


def elementwise(fn: Callable) -> Callable:
    """Mark ``fn`` as safe to call with (broadcastable) array arguments."""
    fn.elementwise = True  # type: ignore[attr-defined]
    return fn


def is_elementwise(fn: object) -> bool:
    return isinstance(fn, np.ufunc) or bool(getattr(fn, "elementwise", False))


class NotVectorizable(Exception):
    """Internal: statement fails a vectorization legality check."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


def has_flow_self_dependence(scop: Scop, stmt: ScopStatement) -> bool:
    """Presburger check: does any iteration read a value a *different*
    iteration of the same statement wrote?  Such a recurrence forbids
    whole-batch execution (vectorized or fused) — the batch would observe
    pre-batch values under gather-before-scatter.  Shared by the
    vectorization gate here and the fusion gate in
    :func:`repro.interp.compile.emit_closure_spec`."""
    return not dependence_relation(scop, stmt, stmt, DepKind.FLOW).is_empty()


# ----------------------------------------------------------------------
# linear-form analysis of subscript expressions
# ----------------------------------------------------------------------
def linear_form(
    expr: Expr, loop_vars: tuple[str, ...], params: Mapping[str, int]
) -> tuple[dict[str, int], int]:
    """``expr`` as ``sum(coeffs[v] * v) + const`` or raise NotVectorizable."""
    if isinstance(expr, IntLit):
        return {}, expr.value
    if isinstance(expr, VarRef):
        if expr.name in loop_vars:
            return {expr.name: 1}, 0
        if expr.name in params:
            return {}, params[expr.name]
        raise NotVectorizable(f"unknown variable {expr.name!r} in subscript")
    if isinstance(expr, BinOp):
        lc, lk = linear_form(expr.lhs, loop_vars, params)
        rc, rk = linear_form(expr.rhs, loop_vars, params)
        if expr.op == "+":
            out = dict(lc)
            for v, c in rc.items():
                out[v] = out.get(v, 0) + c
            return {v: c for v, c in out.items() if c}, lk + rk
        if expr.op == "-":
            out = dict(lc)
            for v, c in rc.items():
                out[v] = out.get(v, 0) - c
            return {v: c for v, c in out.items() if c}, lk - rk
        if expr.op == "*":
            if not lc:
                return {v: lk * c for v, c in rc.items() if lk * c}, lk * rk
            if not rc:
                return {v: rk * c for v, c in lc.items() if rk * c}, lk * rk
            raise NotVectorizable("product of two loop variables in subscript")
        if expr.op in ("/", "%"):
            if lc or rc:
                raise NotVectorizable(
                    f"loop variable under {expr.op!r} in subscript"
                )
            if rk == 0:
                raise NotVectorizable("division by zero in subscript")
            return {}, lk // rk if expr.op == "/" else lk % rk
        raise NotVectorizable(f"operator {expr.op!r} in subscript")
    raise NotVectorizable(f"non-affine subscript {expr!r}")


@dataclass(frozen=True)
class DimPlan:
    """One array dimension of an access: ``coeff * var + const`` (shifted)."""

    var: str | None  # None → constant subscript
    coeff: int
    const: int  # already shifted by the array's dimension offset


@dataclass(frozen=True)
class AccessPlan:
    """Slice form of one array access."""

    array: str
    dims: tuple[DimPlan, ...]

    @property
    def axis_vars(self) -> tuple[str, ...]:
        return tuple(d.var for d in self.dims if d.var is not None)


def plan_access(
    acc: ArrayAccess,
    loop_vars: tuple[str, ...],
    params: Mapping[str, int],
    offsets: Mapping[str, tuple[int, ...]],
) -> AccessPlan:
    dims: list[DimPlan] = []
    seen: set[str] = set()
    for k, idx in enumerate(acc.indices):
        coeffs, const = linear_form(idx, loop_vars, params)
        if len(coeffs) > 1:
            raise NotVectorizable(
                f"coupled subscript {idx} of {acc.array!r} "
                "(two loop variables in one dimension)"
            )
        const -= offsets[acc.array][k]
        if not coeffs:
            dims.append(DimPlan(None, 0, const))
            continue
        (var, coeff), = coeffs.items()
        if coeff <= 0:
            raise NotVectorizable(
                f"non-positive stride {coeff} in subscript {idx} "
                f"of {acc.array!r}"
            )
        if var in seen:
            raise NotVectorizable(
                f"loop variable {var!r} repeated across dimensions "
                f"of {acc.array!r} (diagonal access)"
            )
        seen.add(var)
        dims.append(DimPlan(var, coeff, const))
    return AccessPlan(acc.array, tuple(dims))


# ----------------------------------------------------------------------
# code generation
# ----------------------------------------------------------------------
def _slice_text(plan: AccessPlan, loop_vars: tuple[str, ...]) -> str:
    """Indexing + axis-alignment code putting the access on the canonical
    ``loop_vars`` grid (absent vars broadcast via ``None`` axes)."""
    parts: list[str] = []
    for d in plan.dims:
        if d.var is None:
            parts.append(str(d.const))
            continue
        p = loop_vars.index(d.var)
        lo = f"{d.coeff}*__lo[{p}]{d.const:+d}" if d.const else (
            f"{d.coeff}*__lo[{p}]" if d.coeff != 1 else f"__lo[{p}]"
        )
        hi = f"{d.coeff}*__hi[{p}]{d.const + 1:+d}"
        step = f":{d.coeff}" if d.coeff != 1 else ""
        parts.append(f"{lo}:{hi}{step}")
    code = f"__arr_{plan.array}[{', '.join(parts)}]"

    axis_vars = plan.axis_vars
    present = tuple(v for v in loop_vars if v in axis_vars)
    perm = tuple(axis_vars.index(v) for v in present)
    if perm != tuple(range(len(perm))):
        code = f"{code}.transpose({perm})"
    if len(present) < len(loop_vars):
        sub = ", ".join(
            ":" if v in present else "None" for v in loop_vars
        )
        code = f"{code}[{sub}]"
    return code


def _vec_expr(
    expr: Expr,
    loop_vars: tuple[str, ...],
    params: Mapping[str, int],
    offsets: Mapping[str, tuple[int, ...]],
    funcs: set[str],
    ivs_used: set[str],
) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, VarRef):
        if expr.name in loop_vars:
            ivs_used.add(expr.name)
            return f"__iv_{expr.name}"
        if expr.name in params:
            return str(params[expr.name])
        raise SemanticError(f"unknown variable {expr.name!r}", expr.location)
    if isinstance(expr, BinOp):
        lhs = _vec_expr(expr.lhs, loop_vars, params, offsets, funcs, ivs_used)
        rhs = _vec_expr(expr.rhs, loop_vars, params, offsets, funcs, ivs_used)
        op = "//" if expr.op == "/" else expr.op
        return f"({lhs} {op} {rhs})"
    if isinstance(expr, ArrayAccess):
        plan = plan_access(expr, loop_vars, params, offsets)
        return _slice_text(plan, loop_vars)
    if isinstance(expr, Call):
        funcs.add(expr.func)
        args = ", ".join(
            _vec_expr(a, loop_vars, params, offsets, funcs, ivs_used)
            for a in expr.args
        )
        return f"__fn_{expr.func}({args})"
    raise NotVectorizable(f"cannot vectorize expression {expr!r}")


# ----------------------------------------------------------------------
# rectangle decomposition
# ----------------------------------------------------------------------
def rectangles(
    iters: np.ndarray,
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Partition an iteration set into axis-aligned rectangles.

    Returns inclusive ``(lo, hi)`` bounds covering ``iters`` exactly, in
    lexicographic order; every rectangle is a contiguous range of the
    lex-sorted iterations (so executing them in order preserves every
    anti-dependence between rectangles).
    """
    iters = np.asarray(iters, dtype=np.int64)
    if iters.ndim != 2:
        raise ValueError("iterations must be a (count, depth) array")
    n, d = iters.shape
    if n == 0:
        return []
    lo, hi = iters.min(axis=0), iters.max(axis=0)
    if n == int(np.prod(hi - lo + 1)):  # dense bounding box
        return [(tuple(int(v) for v in lo), tuple(int(v) for v in hi))]

    order = np.lexsort(iters.T[::-1])
    iters = iters[order]
    # Runs along the innermost dimension: break where the outer prefix
    # changes or the inner coordinate jumps.
    if d > 1:
        prefix_change = np.any(np.diff(iters[:, :-1], axis=0) != 0, axis=1)
    else:
        prefix_change = np.zeros(n - 1, dtype=bool)
    inner_jump = np.diff(iters[:, -1]) != 1
    breaks = np.flatnonzero(prefix_change | inner_jump) + 1
    starts = np.concatenate([[0], breaks])
    stops = np.concatenate([breaks, [n]])

    rects: list[tuple[np.ndarray, np.ndarray]] = []
    for s, e in zip(starts, stops):
        r_lo, r_hi = iters[s].copy(), iters[e - 1].copy()
        # Merge with the previous rectangle when only the second-innermost
        # coordinate advanced by one and the inner run is identical — turns
        # the interior of a lex interval into a single 2-d rectangle.
        if rects and d >= 2:
            p_lo, p_hi = rects[-1]
            if (
                r_lo[d - 2] == r_hi[d - 2] == p_hi[d - 2] + 1
                and np.array_equal(p_lo[: d - 2], r_lo[: d - 2])
                and np.array_equal(p_lo[: d - 2], p_hi[: d - 2])
                and p_lo[d - 1] == r_lo[d - 1]
                and p_hi[d - 1] == r_hi[d - 1]
            ):
                p_hi[d - 2] = r_lo[d - 2]
                continue
        rects.append((r_lo, r_hi))
    return [
        (tuple(int(v) for v in lo), tuple(int(v) for v in hi))
        for lo, hi in rects
    ]


# ----------------------------------------------------------------------
# vectorized statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VectorizedStatement:
    """A statement compiled to a NumPy rectangle kernel.

    Callable with the same ``(store, funcs, iterations)`` signature as
    :class:`~repro.interp.compile.CompiledStatement`, so the two paths are
    drop-in interchangeable; the iteration batch is decomposed into
    rectangles and each executes as whole-array operations.
    """

    name: str
    source: str
    fn: Callable
    func_names: tuple[str, ...]

    def run_rect(
        self,
        store: ArrayStore,
        funcs: Mapping[str, Callable],
        lo: tuple[int, ...],
        hi: tuple[int, ...],
    ) -> None:
        self.fn(store, funcs, lo, hi)

    def __call__(self, store, funcs, iterations) -> None:
        iters = np.asarray(iterations, dtype=np.int64)
        if iters.size == 0:
            return
        for lo, hi in rectangles(iters):
            self.fn(store, funcs, lo, hi)


def vectorize_statement(
    scop: Scop,
    stmt: ScopStatement,
    funcs: Mapping[str, Callable] | None = None,
) -> VectorizedStatement:
    """Compile one statement into a rectangle kernel or raise NotVectorizable."""
    loop_vars = tuple(stmt.space.dims)
    if not loop_vars:
        raise NotVectorizable("statement has no loop dimensions")
    params = scop.params
    offsets = {
        name: tuple(lo for lo, _ in scop.array_extent(name))
        for name in scop.arrays
    }

    if stmt.assign.op != "=" and stmt.assign.op not in COMPOUND_OPS:
        raise NotVectorizable(
            f"unsupported assignment operator {stmt.assign.op!r}"
        )

    # Injective write: every loop variable drives exactly one dimension.
    write_plan = plan_access(stmt.assign.target, loop_vars, params, offsets)
    missing = set(loop_vars) - set(write_plan.axis_vars)
    if missing:
        raise NotVectorizable(
            f"write to {write_plan.array!r} does not use loop variable(s) "
            f"{sorted(missing)} (non-injective scatter)"
        )

    # No flow self-dependence: a read-after-write recurrence inside one
    # batch would observe pre-batch values under gather-before-scatter.
    if has_flow_self_dependence(scop, stmt):
        raise NotVectorizable(
            "flow self-dependence (recurrence) — block must run scalar"
        )

    func_names: set[str] = set()
    ivs_used: set[str] = set()
    try:
        rhs = _vec_expr(
            stmt.assign.value, loop_vars, params, offsets, func_names, ivs_used
        )
    except NotVectorizable:
        raise
    if stmt.assign.op != "=":
        lhs_read = _slice_text(write_plan, loop_vars)
        rhs = f"{lhs_read} {COMPOUND_OPS[stmt.assign.op]} ({rhs})"
    elif isinstance(stmt.assign.value, ArrayAccess) and (
        stmt.assign.value.array == write_plan.array
    ):
        # A bare same-array copy would assign a view onto itself; force a
        # materialized temporary to keep gather-before-scatter semantics.
        rhs = f"({rhs}).copy()"

    # Check every called function is elementwise (when funcs are known).
    if funcs is not None:
        for fname in sorted(func_names):
            fn = funcs.get(fname)
            if fn is None or not is_elementwise(fn):
                raise NotVectorizable(
                    f"opaque call to non-elementwise function {fname!r}"
                )

    arrays_used = sorted({a.array for a in stmt.accesses})
    lines = [f"def __vec_{stmt.name}(__store, __funcs, __lo, __hi):"]
    for arr in arrays_used:
        lines.append(f"    __arr_{arr} = __store.arrays[{arr!r}].data")
    for fname in sorted(func_names):
        lines.append(f"    __fn_{fname} = __funcs[{fname!r}]")
    for var in sorted(ivs_used):
        p = loop_vars.index(var)
        sub = ", ".join(
            ":" if v == var else "None" for v in loop_vars
        )
        lines.append(
            f"    __iv_{var} = __np.arange(__lo[{p}], __hi[{p}] + 1)[{sub}]"
        )
    lines.append(f"    __rhs = {rhs}")

    # Scatter: transpose the canonical grid into the write's axis order.
    target = f"__arr_{write_plan.array}["
    parts: list[str] = []
    for d in write_plan.dims:
        if d.var is None:
            parts.append(str(d.const))
        else:
            p = loop_vars.index(d.var)
            lo = f"{d.coeff}*__lo[{p}]{d.const:+d}" if d.const else (
                f"{d.coeff}*__lo[{p}]" if d.coeff != 1 else f"__lo[{p}]"
            )
            hi = f"{d.coeff}*__hi[{p}]{d.const + 1:+d}"
            step = f":{d.coeff}" if d.coeff != 1 else ""
            parts.append(f"{lo}:{hi}{step}")
    target += ", ".join(parts) + "]"
    store_perm = tuple(
        loop_vars.index(v) for v in write_plan.axis_vars
    )
    rhs_out = "__rhs"
    if store_perm != tuple(range(len(store_perm))):
        # A permuted write needs the full grid materialized before the
        # transpose (a scalar or broadcast RHS has too few axes).
        lines.append(
            "    __rhs = __np.broadcast_to(__rhs, "
            "tuple(h - l + 1 for l, h in zip(__lo, __hi)))"
        )
        rhs_out = f"__np.transpose(__rhs, {store_perm})"
    lines.append(f"    {target} = {rhs_out}")

    source = "\n".join(lines)
    namespace: dict[str, object] = {"__np": np}
    exec(source, namespace)  # noqa: S102 - compiling our own AST
    fn = namespace[f"__vec_{stmt.name}"]
    return VectorizedStatement(
        stmt.name, source, fn, tuple(sorted(func_names))
    )


# ----------------------------------------------------------------------
# whole-SCoP vectorization with coverage reporting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VectorEntry:
    """Vectorization outcome for one statement."""

    statement: str
    vectorized: VectorizedStatement | None
    reason: str | None  # fallback reason when not vectorized

    @property
    def ok(self) -> bool:
        return self.vectorized is not None


@dataclass(frozen=True)
class VectorProgram:
    """Per-statement vectorization plan of one SCoP."""

    entries: dict[str, VectorEntry]

    def get(self, statement: str) -> VectorizedStatement | None:
        entry = self.entries.get(statement)
        return entry.vectorized if entry is not None else None

    @property
    def statements_vectorized(self) -> int:
        return sum(1 for e in self.entries.values() if e.ok)

    @property
    def coverage(self) -> float:
        """Fraction of statements with a vector kernel (0..1)."""
        if not self.entries:
            return 0.0
        return self.statements_vectorized / len(self.entries)

    def fallback_reasons(self) -> dict[str, str]:
        return {
            name: e.reason
            for name, e in self.entries.items()
            if e.reason is not None
        }

    def require_full(self) -> None:
        """Raise SemanticError unless every statement vectorized (mode=on)."""
        reasons = self.fallback_reasons()
        if reasons:
            detail = "; ".join(f"{s}: {r}" for s, r in sorted(reasons.items()))
            raise SemanticError(
                f"--vectorize on: {len(reasons)} statement(s) cannot be "
                f"vectorized ({detail})"
            )


def vectorize_scop(
    scop: Scop, funcs: Mapping[str, Callable] | None = None
) -> VectorProgram:
    """Build the vectorization plan for every statement of a SCoP."""
    entries: dict[str, VectorEntry] = {}
    for stmt in scop.statements:
        try:
            vec = vectorize_statement(scop, stmt, funcs)
            entries[stmt.name] = VectorEntry(stmt.name, vec, None)
        except NotVectorizable as exc:
            entries[stmt.name] = VectorEntry(stmt.name, None, exc.reason)
    return VectorProgram(entries)
