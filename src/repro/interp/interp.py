"""Reference sequential interpreter.

Executes a kernel program in its original sequential order against an
:class:`~repro.interp.store.ArrayStore`.  This is the correctness oracle:
every transformed execution (task runtime, generated code, any topological
order of the task graph) must produce bit-identical arrays.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..lang.ast import Assign, Loop, Program
from ..scop import Scop, extract_scop
from .compile import CompiledStatement, compile_scop
from .store import ArrayStore

#: Default opaque functions for kernels written with f/g/h-style calls.
#: Deterministic, order-sensitive (non-commutative beyond the first
#: argument) so reordering bugs change the result.
DEFAULT_FUNCS: dict[str, Callable] = {}


def _mix(*args: float) -> float:
    acc = 1.0
    for k, a in enumerate(args):
        acc = (acc * 31.0 + (k + 1) * a) % 65521.0
    return acc


for _name in ("f", "g", "h", "u", "v", "w", "compute", "dot"):
    DEFAULT_FUNCS[_name] = _mix


class Interpreter:
    """Sequential executor for an extracted SCoP and its source program."""

    def __init__(
        self,
        program: Program,
        scop: Scop,
        funcs: Mapping[str, Callable] | None = None,
    ):
        self.program = program
        self.scop = scop
        self.funcs = dict(DEFAULT_FUNCS)
        if funcs:
            self.funcs.update(funcs)
        self.compiled: dict[str, CompiledStatement] = compile_scop(scop)
        missing = {
            f
            for c in self.compiled.values()
            for f in c.func_names
            if f not in self.funcs
        }
        if missing:
            raise KeyError(f"no implementation for functions: {sorted(missing)}")

    # ------------------------------------------------------------------
    @staticmethod
    def from_source(
        source_or_program: str | Program,
        params: Mapping[str, int],
        funcs: Mapping[str, Callable] | None = None,
    ) -> "Interpreter":
        from ..lang import parse

        program = (
            parse(source_or_program)
            if isinstance(source_or_program, str)
            else source_or_program
        )
        scop = extract_scop(program, dict(params))
        return Interpreter(program, scop, funcs)

    # ------------------------------------------------------------------
    def new_store(self, init: str = "index") -> ArrayStore:
        return ArrayStore.for_scop(self.scop, init)

    def run_sequential(self, store: ArrayStore) -> ArrayStore:
        """Execute the program in original order (handles imperfect nests)."""
        for nest in self.program.nests:
            self._run_loop(nest, {}, store)
        return store

    def _run_loop(
        self, loop: Loop, env: dict[str, int], store: ArrayStore
    ) -> None:
        from ..scop.extract import to_affine

        bound_vars = set(env)
        lb = to_affine(loop.lower, bound_vars, self.scop.params).evaluate(env)
        ub = to_affine(loop.upper, bound_vars, self.scop.params).evaluate(env)
        hi = ub if loop.upper_strict else ub + 1
        for value in range(lb, hi):
            env[loop.var] = value
            for item in loop.body:
                if isinstance(item, Loop):
                    self._run_loop(item, env, store)
                else:
                    self._run_statement(item, env, store)
        env.pop(loop.var, None)

    def _run_statement(
        self, stmt: Assign, env: dict[str, int], store: ArrayStore
    ) -> None:
        compiled = self.compiled[stmt.label]
        sstmt = self.scop.statement(stmt.label)
        point = tuple(env[v] for v in sstmt.space.dims)
        compiled(store, self.funcs, [point])

    # ------------------------------------------------------------------
    def run_block(
        self, store: ArrayStore, statement: str, iterations: np.ndarray
    ) -> None:
        """Execute one pipeline block (a batch of iterations of a statement)."""
        self.compiled[statement](store, self.funcs, iterations.tolist())

    def execute_blocks_in_order(
        self, store: ArrayStore, blocks: list
    ) -> ArrayStore:
        """Execute :class:`~repro.schedule.astgen.TaskBlock` items in the
        given order — used to validate topological orders of the task graph."""
        for block in blocks:
            self.run_block(store, block.statement, block.iterations)
        return store
