"""Reference sequential interpreter.

Executes a kernel program in its original sequential order against an
:class:`~repro.interp.store.ArrayStore`.  This is the correctness oracle:
every transformed execution (task runtime, generated code, any topological
order of the task graph) must produce bit-identical arrays.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..lang.ast import Assign, Loop, Program
from ..scop import Scop, extract_scop
from .compile import CompiledStatement, compile_scop
from .fused import FusedProgram, fuse_scop
from .store import ArrayStore
from .vectorize import VectorProgram, elementwise, vectorize_scop

#: Default opaque functions for kernels written with f/g/h-style calls.
#: Deterministic, order-sensitive (non-commutative beyond the first
#: argument) so reordering bugs change the result.
DEFAULT_FUNCS: dict[str, Callable] = {}


@elementwise
def _mix(*args: float) -> float:
    # Pure float64 arithmetic — maps over NumPy arrays with bit-identical
    # results, so the vectorized block path may call it on whole slices.
    acc = 1.0
    for k, a in enumerate(args):
        acc = (acc * 31.0 + (k + 1) * a) % 65521.0
    return acc


for _name in ("f", "g", "h", "u", "v", "w", "compute", "dot"):
    DEFAULT_FUNCS[_name] = _mix

# min/max are real ufuncs (not _mix): the reduction kernels rely on
# their associativity, which the pattern portfolio proves and the fuzz
# campaign exercises.
DEFAULT_FUNCS["min"] = np.minimum
DEFAULT_FUNCS["max"] = np.maximum


class Interpreter:
    """Sequential executor for an extracted SCoP and its source program."""

    def __init__(
        self,
        program: Program,
        scop: Scop,
        funcs: Mapping[str, Callable] | None = None,
        vectorize: str = "auto",
        fuse: str | None = None,
    ):
        if vectorize not in ("auto", "on", "off"):
            raise ValueError(
                f"vectorize must be 'auto', 'on' or 'off', got {vectorize!r}"
            )
        # The library default keeps the interpreter's dispatch ladder as it
        # always was (vectorized -> scalar); fused dispatch is opt-in here
        # and switched on by the driver/CLI layer, which defaults to
        # ``auto`` (ISSUE 8's default-on with per-statement fallback).
        if fuse is None:
            fuse = "off"
        if fuse not in ("auto", "on", "off"):
            raise ValueError(
                f"fuse must be 'auto', 'on' or 'off', got {fuse!r}"
            )
        self.program = program
        self.scop = scop
        self.funcs = dict(DEFAULT_FUNCS)
        if funcs:
            self.funcs.update(funcs)
        self.compiled: dict[str, CompiledStatement] = compile_scop(scop)
        self.vectorize = vectorize
        self.fuse = fuse
        self._vector_program: VectorProgram | None = None
        self._fused_program: FusedProgram | None = None
        #: Per-path execution counters, filled by :meth:`run_block`.
        self.block_counters = {
            "fused_blocks": 0,
            "vectorized_blocks": 0,
            "scalar_blocks": 0,
            "fused_iterations": 0,
            "vectorized_iterations": 0,
            "scalar_iterations": 0,
        }
        missing = {
            f
            for c in self.compiled.values()
            for f in c.func_names
            if f not in self.funcs
        }
        if missing:
            raise KeyError(f"no implementation for functions: {sorted(missing)}")
        if vectorize == "on":
            # Fail at construction, not mid-execution: ``on`` asserts full
            # coverage, so build the plan (and its SemanticError naming
            # every non-vectorizable statement) eagerly.
            self.vector_program
        if fuse == "on":
            self.fused_program

    # ------------------------------------------------------------------
    @staticmethod
    def from_source(
        source_or_program: str | Program,
        params: Mapping[str, int],
        funcs: Mapping[str, Callable] | None = None,
        vectorize: str = "auto",
        fuse: str | None = None,
    ) -> "Interpreter":
        from ..lang import parse
        from ..obs.spans import span

        if isinstance(source_or_program, str):
            with span("frontend.parse"):
                program = parse(source_or_program)
        else:
            program = source_or_program
        scop = extract_scop(program, dict(params))
        return Interpreter(program, scop, funcs, vectorize=vectorize, fuse=fuse)

    @property
    def vector_program(self) -> VectorProgram:
        """Lazily built vectorization plan (``--vectorize on`` asserts it
        covers every statement)."""
        if self._vector_program is None:
            plan = vectorize_scop(self.scop, self.funcs)
            if self.vectorize == "on":
                plan.require_full()
            self._vector_program = plan
        return self._vector_program

    @property
    def fused_program(self) -> FusedProgram:
        """Lazily built fusion plan (``--fuse on`` asserts full coverage)."""
        if self._fused_program is None:
            plan = fuse_scop(self.scop, self.funcs)
            if self.fuse == "on":
                plan.require_full()
            self._fused_program = plan
        return self._fused_program

    def adopt_fused(self, program: FusedProgram) -> None:
        """Install a fusion plan built elsewhere (worker processes receive
        the parent's plan as specs instead of re-running the Presburger
        legality analysis per worker)."""
        self._fused_program = program

    def fused_kernel(self, statement: str):
        """The fused closure for ``statement`` (or a chain label), or None
        when fusion is off / refused for it."""
        if self.fuse == "off":
            return None
        return self.fused_program.get(statement)

    # ------------------------------------------------------------------
    def new_store(self, init: str = "index") -> ArrayStore:
        return ArrayStore.for_scop(self.scop, init)

    def run_sequential(self, store: ArrayStore) -> ArrayStore:
        """Execute the program in original order (handles imperfect nests)."""
        for nest in self.program.nests:
            self._run_loop(nest, {}, store)
        return store

    def _run_loop(
        self, loop: Loop, env: dict[str, int], store: ArrayStore
    ) -> None:
        from ..scop.extract import to_affine

        bound_vars = set(env)
        lb = to_affine(loop.lower, bound_vars, self.scop.params).evaluate(env)
        ub = to_affine(loop.upper, bound_vars, self.scop.params).evaluate(env)
        hi = ub if loop.upper_strict else ub + 1
        for value in range(lb, hi):
            env[loop.var] = value
            for item in loop.body:
                if isinstance(item, Loop):
                    self._run_loop(item, env, store)
                else:
                    self._run_statement(item, env, store)
        env.pop(loop.var, None)

    def _run_statement(
        self, stmt: Assign, env: dict[str, int], store: ArrayStore
    ) -> None:
        compiled = self.compiled[stmt.label]
        sstmt = self.scop.statement(stmt.label)
        point = tuple(env[v] for v in sstmt.space.dims)
        compiled(store, self.funcs, [point])

    # ------------------------------------------------------------------
    def run_block(
        self, store: ArrayStore, statement: str, iterations: np.ndarray
    ) -> None:
        """Execute one pipeline block (a batch of iterations of a statement).

        Fallback ladder: fused closure (when ``fuse`` is not ``'off'``) →
        vectorized rectangle kernel (when ``vectorize`` is not ``'off'``) →
        compiled-loop body.  All paths are bit-identical by construction.
        """
        iters = np.asarray(iterations, dtype=np.int64)
        if self.fuse != "off":
            fused = self.fused_program.get(statement)
            if fused is not None:
                fused(store, self.funcs, iters)
                self.block_counters["fused_blocks"] += 1
                self.block_counters["fused_iterations"] += len(iters)
                return
        if self.vectorize != "off":
            vec = self.vector_program.get(statement)
            if vec is not None:
                vec(store, self.funcs, iters)
                self.block_counters["vectorized_blocks"] += 1
                self.block_counters["vectorized_iterations"] += len(iters)
                return
        self.compiled[statement](store, self.funcs, iters.tolist())
        self.block_counters["scalar_blocks"] += 1
        self.block_counters["scalar_iterations"] += len(iters)

    def execute_blocks_in_order(
        self, store: ArrayStore, blocks: list
    ) -> ArrayStore:
        """Execute :class:`~repro.schedule.astgen.TaskBlock` items in the
        given order — used to validate topological orders of the task graph."""
        for block in blocks:
            self.run_block(store, block.statement, block.iterations)
        return store
