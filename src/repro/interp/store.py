"""Array storage for kernel execution.

Arrays are NumPy ``float64`` buffers sized from the SCoP's access extents;
an offset per dimension maps (possibly negative) source indices onto the
buffer.  The store is shared between the sequential interpreter, the task
runtime, and generated code, so results can be compared bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scop import Scop


@dataclass
class ArrayView:
    """One kernel array: a buffer plus per-dimension index offsets."""

    name: str
    data: np.ndarray
    offsets: tuple[int, ...]

    def __getitem__(self, idx: tuple[int, ...]) -> float:
        return self.data[self._shift(idx)]

    def __setitem__(self, idx: tuple[int, ...], value: float) -> None:
        self.data[self._shift(idx)] = value

    def _shift(self, idx: tuple[int, ...]) -> tuple[int, ...]:
        if not isinstance(idx, tuple):
            idx = (idx,)
        return tuple(i - o for i, o in zip(idx, self.offsets))


class ArrayStore:
    """All arrays of one kernel execution."""

    def __init__(self, arrays: dict[str, ArrayView]):
        self.arrays = arrays

    @staticmethod
    def for_scop(scop: Scop, init: str = "index") -> "ArrayStore":
        """Allocate and deterministically initialize every array.

        ``init`` selects the fill: ``"index"`` (a distinct affine value per
        cell — good for correctness diffs), ``"zeros"`` or ``"ones"``.
        """
        arrays: dict[str, ArrayView] = {}
        for name in sorted(scop.arrays):
            extent = scop.array_extent(name)
            shape = tuple(hi - lo + 1 for lo, hi in extent)
            offsets = tuple(lo for lo, _ in extent)
            if init == "zeros":
                data = np.zeros(shape, dtype=np.float64)
            elif init == "ones":
                data = np.ones(shape, dtype=np.float64)
            elif init == "index":
                data = np.arange(
                    int(np.prod(shape)), dtype=np.float64
                ).reshape(shape)
                data = (data % 97.0) + 1.0  # bounded, nonzero, per-cell distinct-ish
            else:
                raise ValueError(f"unknown init {init!r}")
            arrays[name] = ArrayView(name, data, offsets)
        return ArrayStore(arrays)

    def __getitem__(self, name: str) -> ArrayView:
        return self.arrays[name]

    def copy(self) -> "ArrayStore":
        return ArrayStore(
            {
                name: ArrayView(view.name, view.data.copy(), view.offsets)
                for name, view in self.arrays.items()
            }
        )

    def equal(self, other: "ArrayStore") -> bool:
        if set(self.arrays) != set(other.arrays):
            return False
        return all(
            np.array_equal(self.arrays[n].data, other.arrays[n].data)
            for n in self.arrays
        )

    def max_abs_diff(self, other: "ArrayStore") -> float:
        worst = 0.0
        for n in self.arrays:
            diff = np.abs(self.arrays[n].data - other.arrays[n].data)
            if diff.size:
                worst = max(worst, float(diff.max()))
        return worst
