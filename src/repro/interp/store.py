"""Array storage for kernel execution.

Arrays are NumPy ``float64`` buffers sized from the SCoP's access extents;
an offset per dimension maps (possibly negative) source indices onto the
buffer.  The store is shared between the sequential interpreter, the task
runtime, and generated code, so results can be compared bit-for-bit.

:class:`SharedArrayStore` keeps the same layout inside one
``multiprocessing.shared_memory`` segment so worker processes of the
process execution backend mutate a single physical copy — the store
pickles as a tiny spec (segment name + per-array shape/offset/byte
offset) and each process re-views the same pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..scop import Scop


@dataclass
class ArrayView:
    """One kernel array: a buffer plus per-dimension index offsets."""

    name: str
    data: np.ndarray
    offsets: tuple[int, ...]

    def __getitem__(self, idx: tuple[int, ...]) -> float:
        return self.data[self._shift(idx)]

    def __setitem__(self, idx: tuple[int, ...], value: float) -> None:
        self.data[self._shift(idx)] = value

    def _shift(self, idx: tuple[int, ...]) -> tuple[int, ...]:
        if not isinstance(idx, tuple):
            idx = (idx,)
        return tuple(i - o for i, o in zip(idx, self.offsets))


class ArrayStore:
    """All arrays of one kernel execution."""

    def __init__(self, arrays: dict[str, ArrayView]):
        self.arrays = arrays

    @staticmethod
    def for_scop(scop: Scop, init: str = "index") -> "ArrayStore":
        """Allocate and deterministically initialize every array.

        ``init`` selects the fill: ``"index"`` (a distinct affine value per
        cell — good for correctness diffs), ``"zeros"`` or ``"ones"``.
        """
        arrays: dict[str, ArrayView] = {}
        for name in sorted(scop.arrays):
            extent = scop.array_extent(name)
            shape = tuple(hi - lo + 1 for lo, hi in extent)
            offsets = tuple(lo for lo, _ in extent)
            if init == "zeros":
                data = np.zeros(shape, dtype=np.float64)
            elif init == "ones":
                data = np.ones(shape, dtype=np.float64)
            elif init == "index":
                data = np.arange(
                    int(np.prod(shape)), dtype=np.float64
                ).reshape(shape)
                data = (data % 97.0) + 1.0  # bounded, nonzero, per-cell distinct-ish
            else:
                raise ValueError(f"unknown init {init!r}")
            arrays[name] = ArrayView(name, data, offsets)
        return ArrayStore(arrays)

    def __getitem__(self, name: str) -> ArrayView:
        return self.arrays[name]

    def copy(self) -> "ArrayStore":
        return ArrayStore(
            {
                name: ArrayView(view.name, view.data.copy(), view.offsets)
                for name, view in self.arrays.items()
            }
        )

    def equal(self, other: "ArrayStore") -> bool:
        if set(self.arrays) != set(other.arrays):
            return False
        return all(
            np.array_equal(self.arrays[n].data, other.arrays[n].data)
            for n in self.arrays
        )

    def max_abs_diff(self, other: "ArrayStore") -> float:
        worst = 0.0
        for n in self.arrays:
            diff = np.abs(self.arrays[n].data - other.arrays[n].data)
            if diff.size:
                worst = max(worst, float(diff.max()))
        return worst


# ----------------------------------------------------------------------
# shared-memory store (process execution backend)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedStoreSpec:
    """Picklable description of a :class:`SharedArrayStore` segment.

    ``arrays`` maps name -> (shape, offsets, byte_offset); workers attach
    with :meth:`SharedArrayStore.attach` and see the creator's pages.
    """

    segment: str
    arrays: dict[str, tuple[tuple[int, ...], tuple[int, ...], int]]


class SharedArrayStore(ArrayStore):
    """An :class:`ArrayStore` whose buffers live in one shared segment.

    The creating process calls :meth:`from_store` (copying an existing
    store's contents in) or :meth:`for_scop`, hands :attr:`spec` to worker
    processes, and finally :meth:`close` + :meth:`unlink`.  Workers call
    :meth:`attach` and :meth:`close` — never :meth:`unlink`.
    """

    def __init__(
        self,
        arrays: dict[str, ArrayView],
        shm: shared_memory.SharedMemory,
        spec: SharedStoreSpec,
        owner: bool,
    ):
        super().__init__(arrays)
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self._closed = False
        self._unlinked = False

    # -- construction ---------------------------------------------------
    @staticmethod
    def _layout(
        shapes: dict[str, tuple[int, ...]]
    ) -> tuple[dict[str, int], int]:
        """Byte offset per array (64-byte aligned) and the total size."""
        offsets: dict[str, int] = {}
        pos = 0
        for name in sorted(shapes):
            offsets[name] = pos
            nbytes = int(np.prod(shapes[name])) * 8  # float64
            pos += (nbytes + 63) & ~63
        return offsets, max(pos, 1)

    @classmethod
    def from_store(cls, store: ArrayStore) -> "SharedArrayStore":
        """Create a shared segment initialized with ``store``'s contents."""
        shapes = {n: v.data.shape for n, v in store.arrays.items()}
        byte_offsets, total = cls._layout(shapes)
        shm = shared_memory.SharedMemory(create=True, size=total)
        arrays: dict[str, ArrayView] = {}
        spec_arrays: dict[str, tuple] = {}
        for name, view in store.arrays.items():
            off = byte_offsets[name]
            data = np.ndarray(
                view.data.shape, dtype=np.float64, buffer=shm.buf, offset=off
            )
            data[...] = view.data
            arrays[name] = ArrayView(name, data, view.offsets)
            spec_arrays[name] = (
                tuple(view.data.shape),
                tuple(view.offsets),
                off,
            )
        spec = SharedStoreSpec(shm.name, spec_arrays)
        return cls(arrays, shm, spec, owner=True)

    @classmethod
    def for_scop(cls, scop: Scop, init: str = "index") -> "SharedArrayStore":
        return cls.from_store(ArrayStore.for_scop(scop, init))

    @classmethod
    def attach(cls, spec: SharedStoreSpec) -> "SharedArrayStore":
        """Map an existing segment in a worker process."""
        shm = shared_memory.SharedMemory(name=spec.segment)
        # CPython registers every attach with the resource tracker and the
        # tracker then unlinks the segment when the *worker* exits — before
        # the owner is done with it (bpo-38119).  Only the owner unlinks.
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        arrays = {
            name: ArrayView(
                name,
                np.ndarray(
                    shape, dtype=np.float64, buffer=shm.buf, offset=off
                ),
                offsets,
            )
            for name, (shape, offsets, off) in spec.arrays.items()
        }
        return cls(arrays, shm, spec, owner=False)

    # -- lifecycle ------------------------------------------------------
    def to_local(self) -> ArrayStore:
        """Copy the shared contents out into a plain in-process store."""
        return ArrayStore(
            {
                name: ArrayView(view.name, np.array(view.data), view.offsets)
                for name, view in self.arrays.items()
            }
        )

    def close(self) -> None:
        """Drop this process's mapping (shared pages survive elsewhere)."""
        if self._closed:
            return
        self._closed = True
        # The ndarray views hold exports of shm.buf; drop them first or
        # SharedMemory.close raises BufferError.
        self.arrays.clear()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment.  Owner-only, after every process closed."""
        if self._owner and not self._unlinked:
            self._unlinked = True
            try:
                # Re-register first: under a fork-shared tracker a worker's
                # attach/unregister pair already removed the entry, and
                # unlink's internal unregister would hit a KeyError in the
                # tracker process.  Registration is idempotent (set add).
                resource_tracker.register(self._shm._name, "shared_memory")
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self):  # best-effort cleanup on abandoned stores
        try:
            self.close()
            self.unlink()
        except Exception:
            pass
