"""Fused NumPy closures: one function call per task, zero interpretation.

The vectorized path of :mod:`repro.interp.vectorize` already executes a
block as strided array operations, but every task still walks through
``Interpreter.run_block`` — plan lookup, ``np.asarray``, rectangle
decomposition — before the first NumPy call.  On latency-bound pipelines
(BENCH_overhead.json) that per-task dispatch is the wall-clock floor.

This module collapses the floor: at compile time each fusable statement
is lowered to a :class:`FusedKernel`, a *declarative* :class:`ClosureSpec`
(array refs, affine index maps per dimension, assignment op, reduction
identity if any) plus a generated NumPy slicing closure that executes an
arbitrary block by substituting block bounds.  The spec is the source of
truth: :func:`build_closure` reconstructs the closure deterministically
from the spec alone, and ``FusedKernel`` pickles as its spec (via
``__reduce__``), so the ProcessBackend ships data, not code objects.

Legality is the PR3 vectorization gate re-applied — including the same
Presburger flow self-dependence check — but every refusal carries a
stable ``RPA06x`` diagnostic code so ``repro analyze --stats`` can
explain coverage.  On top of single statements, consecutive nests that
the PR1 explainer proves fusion-legal (:func:`fusion_legal_pair`, built
on ``analysis.explain._fusion_violations``) and that share one blocking
are merged into a single chain closure: one task executes a block of
*both* statements back to back.

Fallback ladder (per statement): fused closure → vectorized rectangle
kernel → compiled interpreter loop.  All three are bit-identical by
construction; the three-path battery in ``tests/interp/test_fused.py``
enforces it across serial/threads/processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..lang.errors import SemanticError
from .store import ArrayStore
from .vectorize import rectangles

__all__ = [
    "REDUCTION_IDENTITY",
    "ClosureSpec",
    "FuseEntry",
    "FusedKernel",
    "FusedProgram",
    "NotFusable",
    "StatementSpec",
    "build_closure",
    "chain_label",
    "closure_source",
    "fuse_scop",
    "fusion_legal_pair",
    "plan_chain_groups",
]

#: Identity element of the reduction a compound assignment performs, when
#: the DSL op has one (``/=`` and ``%=`` do not reduce associatively).
REDUCTION_IDENTITY: dict[str, float] = {"+=": 0.0, "-=": 0.0, "*=": 1.0}


class NotFusable(Exception):
    """Statement (or chain) fails a fusion legality check.

    ``code`` is a stable RPA06x diagnostic code (see
    :mod:`repro.analysis.diagnostics`) so coverage reports can aggregate
    refusals by cause rather than by message text.
    """

    def __init__(self, reason: str, code: str):
        self.reason = reason
        self.code = code
        super().__init__(f"{code}: {reason}")


# ----------------------------------------------------------------------
# declarative closure specs
# ----------------------------------------------------------------------
#
# Expression nodes are nested plain tuples (JSON maps them to lists):
#
#   ("int", value)                     integer literal / folded parameter
#   ("iv", var)                        loop variable as a value
#   ("bin", op, lhs, rhs)              op already normalized ("/" -> "//")
#   ("access", array, dims)            dims: ((var|None, coeff, const), ...)
#                                      const pre-shifted by the array offset
#   ("call", fname, (args...))         call to an elementwise function
#
# Everything is data — no AST nodes, no callables — so a spec serializes
# to JSON, hashes stably, and crosses process boundaries unchanged.

Node = tuple


@dataclass(frozen=True)
class StatementSpec:
    """Declarative form of one fused statement body."""

    name: str
    loop_vars: tuple[str, ...]
    op: str  # "=" or a compound op from COMPOUND_OPS
    write: Node  # ("access", array, dims) — the injective write
    rhs: Node
    reduction_identity: float | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "loop_vars": list(self.loop_vars),
            "op": self.op,
            "write": _node_to_json(self.write),
            "rhs": _node_to_json(self.rhs),
            "reduction_identity": self.reduction_identity,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "StatementSpec":
        return cls(
            name=d["name"],
            loop_vars=tuple(d["loop_vars"]),
            op=d["op"],
            write=_node_from_json(d["write"]),
            rhs=_node_from_json(d["rhs"]),
            reduction_identity=d.get("reduction_identity"),
        )


@dataclass(frozen=True)
class ClosureSpec:
    """Spec of a fused closure: one statement, or a fusion-legal chain."""

    statements: tuple[StatementSpec, ...]

    @property
    def label(self) -> str:
        return chain_label(tuple(s.name for s in self.statements))

    def to_dict(self) -> dict:
        return {"statements": [s.to_dict() for s in self.statements]}

    @classmethod
    def from_dict(cls, d: Mapping) -> "ClosureSpec":
        return cls(
            tuple(StatementSpec.from_dict(s) for s in d["statements"])
        )


def _node_to_json(node: Node):
    kind = node[0]
    if kind == "int":
        return ["int", node[1]]
    if kind == "iv":
        return ["iv", node[1]]
    if kind == "bin":
        return ["bin", node[1], _node_to_json(node[2]), _node_to_json(node[3])]
    if kind == "access":
        return ["access", node[1], [list(d) for d in node[2]]]
    if kind == "call":
        return ["call", node[1], [_node_to_json(a) for a in node[2]]]
    raise ValueError(f"unknown spec node {node!r}")


def _node_from_json(data) -> Node:
    kind = data[0]
    if kind == "int":
        return ("int", int(data[1]))
    if kind == "iv":
        return ("iv", data[1])
    if kind == "bin":
        return (
            "bin", data[1], _node_from_json(data[2]), _node_from_json(data[3])
        )
    if kind == "access":
        return (
            "access",
            data[1],
            tuple(
                (d[0], int(d[1]), int(d[2])) for d in data[2]
            ),
        )
    if kind == "call":
        return ("call", data[1], tuple(_node_from_json(a) for a in data[2]))
    raise ValueError(f"unknown spec node {data!r}")


def chain_label(names: tuple[str, ...]) -> str:
    """Task-graph label of a fused chain (``S+T``)."""
    return "+".join(names)


# ----------------------------------------------------------------------
# deterministic closure generation (spec -> source -> callable)
# ----------------------------------------------------------------------
def _access_slice(
    dims: tuple, loop_vars: tuple[str, ...], array: str
) -> str:
    """Slice text of an access aligned onto the canonical loop grid.

    Generates the same indexing as ``vectorize._slice_text`` so fused and
    vectorized kernels execute identical NumPy operations.
    """
    parts: list[str] = []
    axis_vars: list[str] = []
    for var, coeff, const in dims:
        if var is None:
            parts.append(str(const))
            continue
        axis_vars.append(var)
        p = loop_vars.index(var)
        lo = f"{coeff}*__lo[{p}]{const:+d}" if const else (
            f"{coeff}*__lo[{p}]" if coeff != 1 else f"__lo[{p}]"
        )
        hi = f"{coeff}*__hi[{p}]{const + 1:+d}"
        step = f":{coeff}" if coeff != 1 else ""
        parts.append(f"{lo}:{hi}{step}")
    code = f"__arr_{array}[{', '.join(parts)}]"

    present = tuple(v for v in loop_vars if v in axis_vars)
    perm = tuple(axis_vars.index(v) for v in present)
    if perm != tuple(range(len(perm))):
        code = f"{code}.transpose({perm})"
    if len(present) < len(loop_vars):
        sub = ", ".join(":" if v in present else "None" for v in loop_vars)
        code = f"{code}[{sub}]"
    return code


def _write_target(
    dims: tuple, loop_vars: tuple[str, ...], array: str
) -> tuple[str, tuple[int, ...]]:
    """Scatter target text and the axis permutation of the write."""
    parts: list[str] = []
    axis_vars: list[str] = []
    for var, coeff, const in dims:
        if var is None:
            parts.append(str(const))
            continue
        axis_vars.append(var)
        p = loop_vars.index(var)
        lo = f"{coeff}*__lo[{p}]{const:+d}" if const else (
            f"{coeff}*__lo[{p}]" if coeff != 1 else f"__lo[{p}]"
        )
        hi = f"{coeff}*__hi[{p}]{const + 1:+d}"
        step = f":{coeff}" if coeff != 1 else ""
        parts.append(f"{lo}:{hi}{step}")
    target = f"__arr_{array}[{', '.join(parts)}]"
    store_perm = tuple(loop_vars.index(v) for v in axis_vars)
    return target, store_perm


def _node_text(
    node: Node,
    loop_vars: tuple[str, ...],
    si: int,
    ivs_used: set[str],
) -> str:
    kind = node[0]
    if kind == "int":
        return str(node[1])
    if kind == "iv":
        ivs_used.add(node[1])
        return f"__iv{si}_{node[1]}"
    if kind == "bin":
        lhs = _node_text(node[2], loop_vars, si, ivs_used)
        rhs = _node_text(node[3], loop_vars, si, ivs_used)
        return f"({lhs} {node[1]} {rhs})"
    if kind == "access":
        return _access_slice(node[2], loop_vars, node[1])
    if kind == "call":
        args = ", ".join(
            _node_text(a, loop_vars, si, ivs_used) for a in node[2]
        )
        return f"__fn_{node[1]}({args})"
    raise ValueError(f"unknown spec node {node!r}")


def _spec_arrays(node: Node, out: set[str]) -> None:
    kind = node[0]
    if kind == "access":
        out.add(node[1])
    elif kind == "bin":
        _spec_arrays(node[2], out)
        _spec_arrays(node[3], out)
    elif kind == "call":
        for a in node[2]:
            _spec_arrays(a, out)


def _spec_funcs(node: Node, out: set[str]) -> None:
    kind = node[0]
    if kind == "call":
        out.add(node[1])
        for a in node[2]:
            _spec_funcs(a, out)
    elif kind == "bin":
        _spec_funcs(node[2], out)
        _spec_funcs(node[3], out)


def spec_arrays(spec: ClosureSpec) -> tuple[str, ...]:
    out: set[str] = set()
    for s in spec.statements:
        out.add(s.write[1])
        _spec_arrays(s.rhs, out)
    return tuple(sorted(out))


def spec_funcs(spec: ClosureSpec) -> tuple[str, ...]:
    out: set[str] = set()
    for s in spec.statements:
        _spec_funcs(s.rhs, out)
    return tuple(sorted(out))


def closure_source(spec: ClosureSpec) -> str:
    """Deterministic Python source of the fused closure for ``spec``.

    Purely a function of the spec (no live objects consulted), so
    spec → source → closure reconstruction is reproducible anywhere the
    spec can travel — the ProcessBackend pickling contract.
    """
    fn_name = "__fused_" + "__".join(s.name for s in spec.statements)
    lines = [f"def {fn_name}(__store, __funcs, __lo, __hi):"]
    for arr in spec_arrays(spec):
        lines.append(f"    __arr_{arr} = __store.arrays[{arr!r}].data")
    for fname in spec_funcs(spec):
        lines.append(f"    __fn_{fname} = __funcs[{fname!r}]")
    for si, stmt in enumerate(spec.statements):
        loop_vars = stmt.loop_vars
        ivs_used: set[str] = set()
        rhs = _node_text(stmt.rhs, loop_vars, si, ivs_used)
        _, write_array, write_dims = stmt.write
        if stmt.op != "=":
            lhs_read = _access_slice(write_dims, loop_vars, write_array)
            # compound op was normalized to its binary form at emit time
            rhs = f"{lhs_read} {stmt.op} ({rhs})"
        elif stmt.rhs[0] == "access" and stmt.rhs[1] == write_array:
            # bare same-array copy: materialize before assigning a view
            # onto itself (gather-before-scatter semantics)
            rhs = f"({rhs}).copy()"
        for var in sorted(ivs_used):
            p = loop_vars.index(var)
            sub = ", ".join(":" if v == var else "None" for v in loop_vars)
            lines.append(
                f"    __iv{si}_{var} = "
                f"__np.arange(__lo[{p}], __hi[{p}] + 1)[{sub}]"
            )
        lines.append(f"    __rhs{si} = {rhs}")
        target, store_perm = _write_target(write_dims, loop_vars, write_array)
        rhs_out = f"__rhs{si}"
        if store_perm != tuple(range(len(store_perm))):
            lines.append(
                f"    __rhs{si} = __np.broadcast_to(__rhs{si}, "
                "tuple(h - l + 1 for l, h in zip(__lo, __hi)))"
            )
            rhs_out = f"__np.transpose(__rhs{si}, {store_perm})"
        lines.append(f"    {target} = {rhs_out}")
    return "\n".join(lines)


@dataclass(eq=False)
class FusedKernel:
    """A compiled fused closure plus the spec it was built from.

    Picklable by spec: ``pickle.dumps(kernel)`` ships the declarative
    :class:`ClosureSpec` and the receiving process re-generates the
    closure with :func:`build_closure` — code objects never cross the
    wire.
    """

    spec: ClosureSpec
    source: str
    fn: Callable

    @property
    def label(self) -> str:
        return self.spec.label

    def run_rect(
        self,
        store: ArrayStore,
        funcs: Mapping[str, Callable],
        lo: tuple[int, ...],
        hi: tuple[int, ...],
    ) -> None:
        self.fn(store, funcs, lo, hi)

    def run_rects(
        self,
        store: ArrayStore,
        funcs: Mapping[str, Callable],
        rects,
    ) -> None:
        """Execute precomputed ``(lo, hi)`` rectangles — the one-call-per-
        task hot path (rectangle decomposition already paid at compile)."""
        fn = self.fn
        for lo, hi in rects:
            fn(store, funcs, lo, hi)

    def __call__(self, store, funcs, iterations) -> None:
        iters = np.asarray(iterations, dtype=np.int64)
        if iters.size == 0:
            return
        self.run_rects(store, funcs, rectangles(iters))

    def __reduce__(self):
        return (build_closure, (self.spec,))


def build_closure(spec: ClosureSpec) -> FusedKernel:
    """Reconstruct the executable closure from a declarative spec."""
    source = closure_source(spec)
    namespace: dict[str, object] = {"__np": np}
    exec(source, namespace)  # noqa: S102 - compiling our own spec
    fn_name = "__fused_" + "__".join(s.name for s in spec.statements)
    return FusedKernel(spec, source, namespace[fn_name])


# ----------------------------------------------------------------------
# whole-SCoP fusion plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuseEntry:
    """Fusion outcome for one statement."""

    statement: str
    kernel: FusedKernel | None
    reason: str | None  # fallback reason when not fused
    code: str | None  # RPA06x code of the refusal

    @property
    def ok(self) -> bool:
        return self.kernel is not None


@dataclass
class FusedProgram:
    """Per-statement fusion plan of one SCoP, plus registered chains."""

    entries: dict[str, FuseEntry]
    chains: dict[str, FusedKernel] = field(default_factory=dict)

    def get(self, statement: str) -> FusedKernel | None:
        entry = self.entries.get(statement)
        if entry is not None:
            return entry.kernel
        return self.chains.get(statement)

    def spec(self, statement: str) -> ClosureSpec | None:
        kernel = self.get(statement)
        return kernel.spec if kernel is not None else None

    def add_chain(self, label: str, kernel: FusedKernel) -> None:
        self.chains[label] = kernel

    @property
    def statements_fused(self) -> int:
        return sum(1 for e in self.entries.values() if e.ok)

    @property
    def coverage(self) -> float:
        """Fraction of statements with a fused closure (0..1)."""
        if not self.entries:
            return 0.0
        return self.statements_fused / len(self.entries)

    def fallback_reasons(self) -> dict[str, str]:
        return {
            name: e.reason
            for name, e in self.entries.items()
            if e.reason is not None
        }

    def fallbacks(self) -> dict[str, dict[str, str]]:
        """``{statement: {"reason": ..., "code": RPA06x}}`` for refusals."""
        return {
            name: {"reason": e.reason, "code": e.code}
            for name, e in self.entries.items()
            if not e.ok
        }

    def to_dict(self) -> dict:
        """JSON-ready form: specs and refusal records, no code objects.

        The declarative :class:`ClosureSpec` is already the pickling
        contract of the ProcessBackend; the same specs are the durable
        artifact format of the compile store.  :meth:`from_dict`
        regenerates every closure with :func:`build_closure`.
        """
        return {
            "entries": {
                name: {
                    "spec": (
                        e.kernel.spec.to_dict() if e.kernel is not None
                        else None
                    ),
                    "reason": e.reason,
                    "code": e.code,
                }
                for name, e in sorted(self.entries.items())
            },
            "chains": {
                label: kernel.spec.to_dict()
                for label, kernel in sorted(self.chains.items())
            },
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "FusedProgram":
        entries = {}
        for name, rec in d["entries"].items():
            spec = rec.get("spec")
            kernel = (
                build_closure(ClosureSpec.from_dict(spec))
                if spec is not None
                else None
            )
            entries[name] = FuseEntry(
                name, kernel, rec.get("reason"), rec.get("code")
            )
        chains = {
            label: build_closure(ClosureSpec.from_dict(spec))
            for label, spec in d.get("chains", {}).items()
        }
        return cls(entries, chains)

    def require_full(self) -> None:
        """Raise SemanticError unless every statement fused (mode=on)."""
        bad = self.fallbacks()
        if bad:
            detail = "; ".join(
                f"{s}: [{v['code']}] {v['reason']}"
                for s, v in sorted(bad.items())
            )
            raise SemanticError(
                f"--fuse on: {len(bad)} statement(s) cannot be fused "
                f"({detail})"
            )


def fuse_scop(
    scop, funcs: Mapping[str, Callable] | None = None
) -> FusedProgram:
    """Build the fusion plan for every statement of a SCoP."""
    from ..obs.spans import span
    from .compile import emit_closure_spec

    entries: dict[str, FuseEntry] = {}
    with span("compile.fuse"):
        for stmt in scop.statements:
            try:
                spec = emit_closure_spec(scop, stmt, funcs)
                kernel = build_closure(ClosureSpec((spec,)))
                entries[stmt.name] = FuseEntry(stmt.name, kernel, None, None)
            except NotFusable as exc:
                entries[stmt.name] = FuseEntry(
                    stmt.name, None, exc.reason, exc.code
                )
    return FusedProgram(entries)


# ----------------------------------------------------------------------
# chain fusion (block-chains the PR1 explainer proves legal)
# ----------------------------------------------------------------------
def fusion_legal_pair(scop, src, tgt) -> bool:
    """True when fusing the two nests reorders no dependence.

    Delegates to the PR1 explainer's ``_fusion_violations`` over every
    dependence kind — the same Presburger evidence ``repro analyze``
    prints when it classifies a nest pair fusion-legal.
    """
    from ..analysis.explain import _fusion_violations
    from ..scop.deps import DepKind, dependence_relation

    rels = {
        kind: dependence_relation(scop, src, tgt, kind) for kind in DepKind
    }
    return not _fusion_violations(scop, src, tgt, rels)


def plan_chain_groups(scop, ast, program: FusedProgram):
    """Group consecutive task nests into fusion-legal chains.

    Returns ``(groups, chain_kernels)`` where ``groups`` is a list of
    lists of ``TaskLoopNest`` (singletons execute as before; longer
    groups merge into one task stream) and ``chain_kernels`` maps chain
    labels to their merged :class:`FusedKernel` (also registered on
    ``program`` so worker processes can look them up by label).

    A nest joins the current group only when every condition that makes
    the merge observationally equivalent holds:

    * all members have fused single-statement kernels;
    * identical blocking — same block count and bit-identical iteration
      arrays per block index, so one rectangle decomposition serves all
      members and chain tasks stay lex-contiguous;
    * ``fusion_legal_pair`` with every existing member — no dependence
      forces a later member's instance before an earlier member's;
    * every token a joining nest consumes from a member resolves at the
      same (or an earlier) block index — same-index work runs inside the
      merged task, earlier indices are ordered by the chain's self-chain;
    * tokens of every non-last member are consumed only inside the group
      (the merged task publishes only the last member's token, so an
      outside consumer would lose its ordering edge).
    """
    nests = list(ast.nests)
    member_specs: dict[str, StatementSpec] = {}
    for nest in nests:
        kernel = program.entries.get(nest.statement)
        if kernel is not None and kernel.ok:
            member_specs[nest.statement] = kernel.kernel.spec.statements[0]

    consumers: dict[str, set[str]] = {}
    for nest in nests:
        for blk in nest.blocks:
            for s, _ in blk.in_tokens:
                if s != nest.statement:
                    consumers.setdefault(s, set()).add(nest.statement)

    stmt_of = {s.name: s for s in scop.statements}

    def mergeable(group, nxt) -> bool:
        if nxt.statement not in member_specs:
            return False
        if any(n.statement not in member_specs for n in group):
            return False
        base = group[0]
        if len(nxt.blocks) != len(base.blocks):
            return False
        for a, b in zip(base.blocks, nxt.blocks):
            if not np.array_equal(
                np.asarray(a.iterations), np.asarray(b.iterations)
            ):
                return False
        for n in group:
            if not fusion_legal_pair(
                scop, stmt_of[n.statement], stmt_of[nxt.statement]
            ):
                return False
        members = {n.statement for n in group}
        ends = {n.statement: [blk.end for blk in n.blocks] for n in group}
        for b, blk in enumerate(nxt.blocks):
            for s, end in blk.in_tokens:
                if s in members and tuple(end) > tuple(ends[s][b]):
                    return False
        return True

    def build(run: list) -> list[list]:
        groups: list[list] = []
        i = 0
        while i < len(run):
            group = [run[i]]
            j = i + 1
            while j < len(run) and mergeable(group, run[j]):
                group.append(run[j])
                j += 1
            # trim: a non-last member whose token leaks outside the group
            # must end its group (the merged task only publishes the last
            # member's token); split trailing members off and regroup them
            rest: list = []
            while len(group) > 1:
                members = {n.statement for n in group}
                leaky = any(
                    consumers.get(n.statement, set()) - members
                    for n in group[:-1]
                )
                if not leaky:
                    break
                rest.insert(0, group.pop())
            groups.append(group)
            if rest:
                groups.extend(build(rest))
            i = j
        return groups

    groups = build(nests)

    chain_kernels: dict[str, FusedKernel] = {}
    for group in groups:
        if len(group) < 2:
            continue
        label = chain_label(tuple(n.statement for n in group))
        spec = ClosureSpec(
            tuple(member_specs[n.statement] for n in group)
        )
        kernel = build_closure(spec)
        program.add_chain(label, kernel)
        chain_kernels[label] = kernel
    return groups, chain_kernels
