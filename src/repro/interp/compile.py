"""Compilation of kernel statements to Python callables.

Each labelled assignment is translated once into a Python function that
executes a *batch* of iterations against an :class:`ArrayStore` — the same
compiled body is used by the sequential interpreter, the task runtime, and
the emitted task programs, so all execution paths share identical
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..lang.ast import ArrayAccess, BinOp, Call, Expr, IntLit, VarRef
from ..lang.errors import SemanticError
from ..scop import Scop, ScopStatement
from .store import ArrayStore

#: A compiled statement body: (store, funcs, iterations) -> None
StatementFn = Callable[[ArrayStore, Mapping[str, Callable], Iterable], None]

#: Compound-assignment operators and the binary operator each expands to.
#: ``/=`` floors like every division in the DSL (``_expr_to_py`` maps ``/``
#: to ``//`` as well), keeping value semantics uniform.
COMPOUND_OPS: dict[str, str] = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "//",
    "%=": "%",
}


@dataclass(frozen=True)
class CompiledStatement:
    """A statement body compiled to a Python batch executor."""

    name: str
    source: str
    fn: StatementFn
    func_names: tuple[str, ...]

    def __call__(self, store, funcs, iterations) -> None:
        self.fn(store, funcs, iterations)


def _expr_to_py(
    expr: Expr,
    loop_vars: set[str],
    params: Mapping[str, int],
    offsets: Mapping[str, tuple[int, ...]],
    funcs: set[str],
) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, VarRef):
        if expr.name in loop_vars:
            return expr.name
        if expr.name in params:
            return str(params[expr.name])
        raise SemanticError(f"unknown variable {expr.name!r}", expr.location)
    if isinstance(expr, BinOp):
        lhs = _expr_to_py(expr.lhs, loop_vars, params, offsets, funcs)
        rhs = _expr_to_py(expr.rhs, loop_vars, params, offsets, funcs)
        op = "//" if expr.op == "/" else expr.op
        return f"({lhs} {op} {rhs})"
    if isinstance(expr, ArrayAccess):
        idx = []
        offs = offsets[expr.array]
        for k, e in enumerate(expr.indices):
            sub = _expr_to_py(e, loop_vars, params, offsets, funcs)
            off = offs[k]
            idx.append(f"({sub}) - ({off})" if off else sub)
        return f"__arr_{expr.array}[{', '.join(idx)}]"
    if isinstance(expr, Call):
        funcs.add(expr.func)
        args = ", ".join(
            _expr_to_py(a, loop_vars, params, offsets, funcs)
            for a in expr.args
        )
        return f"__fn_{expr.func}({args})"
    raise SemanticError(f"cannot compile expression {expr!r}")


def compile_statement(scop: Scop, stmt: ScopStatement) -> CompiledStatement:
    """Compile one statement into a batch executor over iteration rows."""
    loop_vars = set(stmt.space.dims)
    offsets = {
        name: tuple(lo for lo, _ in scop.array_extent(name))
        for name in scop.arrays
    }
    func_names: set[str] = set()

    lhs = _expr_to_py(
        stmt.assign.target, loop_vars, scop.params, offsets, func_names
    )
    rhs = _expr_to_py(
        stmt.assign.value, loop_vars, scop.params, offsets, func_names
    )
    if stmt.assign.op != "=":
        try:
            binop = COMPOUND_OPS[stmt.assign.op]
        except KeyError:
            raise SemanticError(
                f"unsupported assignment operator {stmt.assign.op!r} "
                f"in statement {stmt.name}; supported: "
                f"=, {', '.join(sorted(COMPOUND_OPS))}",
                stmt.assign.location,
            ) from None
        rhs = f"{lhs} {binop} ({rhs})"

    arrays_used = sorted(
        {a.array for a in stmt.accesses}
    )
    ivs = ", ".join(stmt.space.dims)
    unpack = f"for {ivs} in __iters:" if stmt.depth > 1 else (
        f"for ({ivs},) in __iters:"
    )
    lines = [
        f"def __stmt_{stmt.name}(__store, __funcs, __iters):",
    ]
    for arr in arrays_used:
        lines.append(f"    __arr_{arr} = __store.arrays[{arr!r}].data")
    for fname in sorted(func_names):
        lines.append(f"    __fn_{fname} = __funcs[{fname!r}]")
    lines.append(f"    {unpack}")
    lines.append(f"        {lhs} = {rhs}")
    source = "\n".join(lines)

    namespace: dict[str, object] = {}
    exec(source, namespace)  # noqa: S102 - compiling our own AST
    fn = namespace[f"__stmt_{stmt.name}"]
    return CompiledStatement(stmt.name, source, fn, tuple(sorted(func_names)))


def compile_scop(scop: Scop) -> dict[str, CompiledStatement]:
    """Compile every statement of a SCoP."""
    return {s.name: compile_statement(scop, s) for s in scop.statements}
