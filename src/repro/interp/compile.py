"""Compilation of kernel statements to Python callables.

Each labelled assignment is translated once into a Python function that
executes a *batch* of iterations against an :class:`ArrayStore` — the same
compiled body is used by the sequential interpreter, the task runtime, and
the emitted task programs, so all execution paths share identical
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..lang.ast import ArrayAccess, BinOp, Call, Expr, IntLit, VarRef
from ..lang.errors import SemanticError
from ..scop import Scop, ScopStatement
from .store import ArrayStore

#: A compiled statement body: (store, funcs, iterations) -> None
StatementFn = Callable[[ArrayStore, Mapping[str, Callable], Iterable], None]

#: Compound-assignment operators and the binary operator each expands to.
#: ``/=`` floors like every division in the DSL (``_expr_to_py`` maps ``/``
#: to ``//`` as well), keeping value semantics uniform.
COMPOUND_OPS: dict[str, str] = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "//",
    "%=": "%",
}


@dataclass(frozen=True)
class CompiledStatement:
    """A statement body compiled to a Python batch executor."""

    name: str
    source: str
    fn: StatementFn
    func_names: tuple[str, ...]

    def __call__(self, store, funcs, iterations) -> None:
        self.fn(store, funcs, iterations)


def _expr_to_py(
    expr: Expr,
    loop_vars: set[str],
    params: Mapping[str, int],
    offsets: Mapping[str, tuple[int, ...]],
    funcs: set[str],
) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, VarRef):
        if expr.name in loop_vars:
            return expr.name
        if expr.name in params:
            return str(params[expr.name])
        raise SemanticError(f"unknown variable {expr.name!r}", expr.location)
    if isinstance(expr, BinOp):
        lhs = _expr_to_py(expr.lhs, loop_vars, params, offsets, funcs)
        rhs = _expr_to_py(expr.rhs, loop_vars, params, offsets, funcs)
        op = "//" if expr.op == "/" else expr.op
        return f"({lhs} {op} {rhs})"
    if isinstance(expr, ArrayAccess):
        idx = []
        offs = offsets[expr.array]
        for k, e in enumerate(expr.indices):
            sub = _expr_to_py(e, loop_vars, params, offsets, funcs)
            off = offs[k]
            idx.append(f"({sub}) - ({off})" if off else sub)
        return f"__arr_{expr.array}[{', '.join(idx)}]"
    if isinstance(expr, Call):
        funcs.add(expr.func)
        args = ", ".join(
            _expr_to_py(a, loop_vars, params, offsets, funcs)
            for a in expr.args
        )
        return f"__fn_{expr.func}({args})"
    raise SemanticError(f"cannot compile expression {expr!r}")


def compile_statement(scop: Scop, stmt: ScopStatement) -> CompiledStatement:
    """Compile one statement into a batch executor over iteration rows."""
    loop_vars = set(stmt.space.dims)
    offsets = {
        name: tuple(lo for lo, _ in scop.array_extent(name))
        for name in scop.arrays
    }
    func_names: set[str] = set()

    lhs = _expr_to_py(
        stmt.assign.target, loop_vars, scop.params, offsets, func_names
    )
    rhs = _expr_to_py(
        stmt.assign.value, loop_vars, scop.params, offsets, func_names
    )
    if stmt.assign.op != "=":
        try:
            binop = COMPOUND_OPS[stmt.assign.op]
        except KeyError:
            raise SemanticError(
                f"unsupported assignment operator {stmt.assign.op!r} "
                f"in statement {stmt.name}; supported: "
                f"=, {', '.join(sorted(COMPOUND_OPS))}",
                stmt.assign.location,
            ) from None
        rhs = f"{lhs} {binop} ({rhs})"

    arrays_used = sorted(
        {a.array for a in stmt.accesses}
    )
    ivs = ", ".join(stmt.space.dims)
    unpack = f"for {ivs} in __iters:" if stmt.depth > 1 else (
        f"for ({ivs},) in __iters:"
    )
    lines = [
        f"def __stmt_{stmt.name}(__store, __funcs, __iters):",
    ]
    for arr in arrays_used:
        lines.append(f"    __arr_{arr} = __store.arrays[{arr!r}].data")
    for fname in sorted(func_names):
        lines.append(f"    __fn_{fname} = __funcs[{fname!r}]")
    lines.append(f"    {unpack}")
    lines.append(f"        {lhs} = {rhs}")
    source = "\n".join(lines)

    namespace: dict[str, object] = {}
    exec(source, namespace)  # noqa: S102 - compiling our own AST
    fn = namespace[f"__stmt_{stmt.name}"]
    return CompiledStatement(stmt.name, source, fn, tuple(sorted(func_names)))


def compile_scop(scop: Scop) -> dict[str, CompiledStatement]:
    """Compile every statement of a SCoP."""
    return {s.name: compile_statement(scop, s) for s in scop.statements}


# ----------------------------------------------------------------------
# declarative closure specs (megakernel fusion front end)
# ----------------------------------------------------------------------
def emit_closure_spec(scop: Scop, stmt: ScopStatement, funcs=None):
    """Lower one statement into a declarative fused-closure spec.

    Applies the PR3 vectorization legality gate — affine slice-form
    subscripts, positive strides, injective write, the shared Presburger
    flow self-dependence check, elementwise-only calls — but reports each
    refusal as :class:`~repro.interp.fused.NotFusable` with a stable
    RPA06x code so coverage reports can aggregate by cause.  Returns a
    :class:`~repro.interp.fused.StatementSpec` (pure data: building the
    closure from it is :func:`~repro.interp.fused.build_closure`'s job).
    """
    from .fused import (
        REDUCTION_IDENTITY,
        NotFusable,
        StatementSpec,
    )
    from .vectorize import (
        NotVectorizable,
        has_flow_self_dependence,
        is_elementwise,
        linear_form,
    )

    loop_vars = tuple(stmt.space.dims)
    if not loop_vars:
        raise NotFusable("statement has no loop dimensions", "RPA060")
    params = scop.params
    offsets = {
        name: tuple(lo for lo, _ in scop.array_extent(name))
        for name in scop.arrays
    }

    if stmt.assign.op != "=" and stmt.assign.op not in COMPOUND_OPS:
        raise NotFusable(
            f"unsupported assignment operator {stmt.assign.op!r}", "RPA061"
        )

    def access_dims(acc: ArrayAccess) -> tuple:
        dims: list[tuple] = []
        seen: set[str] = set()
        for k, idx in enumerate(acc.indices):
            try:
                coeffs, const = linear_form(idx, loop_vars, params)
            except NotVectorizable as exc:
                raise NotFusable(
                    f"{exc.reason} ({acc.array!r})", "RPA062"
                ) from None
            if len(coeffs) > 1:
                raise NotFusable(
                    f"coupled subscript {idx} of {acc.array!r} "
                    "(two loop variables in one dimension)",
                    "RPA062",
                )
            const -= offsets[acc.array][k]
            if not coeffs:
                dims.append((None, 0, const))
                continue
            (var, coeff), = coeffs.items()
            if coeff <= 0:
                raise NotFusable(
                    f"non-positive stride {coeff} in subscript {idx} "
                    f"of {acc.array!r}",
                    "RPA063",
                )
            if var in seen:
                raise NotFusable(
                    f"loop variable {var!r} repeated across dimensions "
                    f"of {acc.array!r} (diagonal access)",
                    "RPA064",
                )
            seen.add(var)
            dims.append((var, coeff, const))
        return tuple(dims)

    write_dims = access_dims(stmt.assign.target)
    write_vars = {var for var, _, _ in write_dims if var is not None}
    missing = set(loop_vars) - write_vars
    if missing:
        raise NotFusable(
            f"write to {stmt.assign.target.array!r} does not use loop "
            f"variable(s) {sorted(missing)} (non-injective scatter)",
            "RPA065",
        )

    if has_flow_self_dependence(scop, stmt):
        raise NotFusable(
            "flow self-dependence (recurrence) — block must run scalar",
            "RPA066",
        )

    func_names: set[str] = set()

    def node(expr: Expr) -> tuple:
        if isinstance(expr, IntLit):
            return ("int", expr.value)
        if isinstance(expr, VarRef):
            if expr.name in loop_vars:
                return ("iv", expr.name)
            if expr.name in params:
                return ("int", params[expr.name])
            raise SemanticError(
                f"unknown variable {expr.name!r}", expr.location
            )
        if isinstance(expr, BinOp):
            op = "//" if expr.op == "/" else expr.op
            return ("bin", op, node(expr.lhs), node(expr.rhs))
        if isinstance(expr, ArrayAccess):
            return ("access", expr.array, access_dims(expr))
        if isinstance(expr, Call):
            func_names.add(expr.func)
            return ("call", expr.func, tuple(node(a) for a in expr.args))
        raise NotFusable(f"cannot fuse expression {expr!r}", "RPA062")

    rhs = node(stmt.assign.value)

    if funcs is not None:
        for fname in sorted(func_names):
            fn = funcs.get(fname)
            if fn is None or not is_elementwise(fn):
                raise NotFusable(
                    f"opaque call to non-elementwise function {fname!r}",
                    "RPA067",
                )

    op = stmt.assign.op
    return StatementSpec(
        name=stmt.name,
        loop_vars=loop_vars,
        op="=" if op == "=" else COMPOUND_OPS[op],
        write=("access", stmt.assign.target.array, write_dims),
        rhs=rhs,
        reduction_identity=REDUCTION_IDENTITY.get(op),
    )
