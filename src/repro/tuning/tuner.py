"""The granularity auto-tuner.

Given a detected pipeline at the paper's finest safe blocking, pick a
coarsening factor per statement that minimizes (predicted or measured)
wall time, and apply it through the existing
:meth:`~repro.pipeline.blocking.Blocking.coarsened` machinery with the
dependency relations re-derived by
:func:`repro.pipeline.detect.derive_dependencies`.

``mode="model"`` ranks candidate factors on the calibrated
:class:`~repro.tuning.costmodel.OverheadModel` via the discrete-event
simulator — cheap enough to scan a log-spaced ladder of global factors
and then refine per statement.  ``mode="search"`` measures a real
execution per global candidate on the requested backend instead; slower
but assumption-free.

Every application re-checks legality structurally: coarse ends must be a
subset of the fine ends with the final end preserved (so every block
still ends on an end that dominates the pipeline-map anchors — fine ends
dominate anchors by construction, and coarsening only moves iterations
to *later* ends), and the re-derived task graph must be acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from .costmodel import (
    DispatchCostModel,
    OverheadModel,
    calibrate_dispatch,
    calibrate_overhead,
)

if TYPE_CHECKING:
    from ..interp import Interpreter
    from ..pipeline import PipelineInfo

MODES = ("model", "search")


class CoarseningLegalityError(RuntimeError):
    """A coarsened blocking violated the structural legality conditions."""


@dataclass(frozen=True)
class TunedPlan:
    """What the tuner decided and why."""

    mode: str
    #: statement name -> applied coarsening factor (1 = untouched)
    factors: dict[str, int]
    #: the re-blocked pipeline info the factors produce
    info: "PipelineInfo"
    model: OverheadModel | None
    #: global candidate factor -> predicted (model) or measured (search)
    #: seconds, for the bench reports
    scores: dict[int, float]
    #: both dispatch ladders' calibrations, when fused dispatch was on
    #: (``model`` is then ``dispatch.active(interp.fuse)``)
    dispatch: DispatchCostModel | None = None

    @property
    def tasks(self) -> int:
        return self.info.num_tasks()

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "factors": dict(self.factors),
            "tasks": self.tasks,
            "scores_s": {str(k): v for k, v in sorted(self.scores.items())},
            "model": self.model.as_dict() if self.model else None,
            "dispatch": self.dispatch.as_dict() if self.dispatch else None,
        }

    def summary(self) -> str:
        factors = ", ".join(
            f"{name}x{f}" for name, f in sorted(self.factors.items())
        )
        return (
            f"tuned coarsening ({self.mode}): {factors or 'none'} "
            f"-> {self.tasks} tasks"
        )


def apply_coarsening(
    info: "PipelineInfo", factors: Mapping[str, int]
) -> "PipelineInfo":
    """Re-block ``info`` with per-statement factors and re-derive deps.

    Factors are relative to ``info``'s current blocks (missing statements
    keep theirs).  Raises :class:`CoarseningLegalityError` if any coarse
    blocking breaks the structural conditions or the resulting task
    graph is not a DAG.
    """
    import dataclasses

    from ..pipeline.detect import derive_dependencies

    blockings = {}
    for name, blocking in info.blockings.items():
        factor = int(factors.get(name, 1))
        try:
            coarse = blocking.coarsened(factor)
        except (AssertionError, ValueError) as exc:
            raise CoarseningLegalityError(
                f"coarsening {name} by {factor}: {exc}"
            ) from exc
        if factor > 1 and blocking.num_blocks:
            fine_last = blocking.ends.points[-1]
            coarse_last = coarse.ends.points[-1]
            if not (fine_last == coarse_last).all():
                raise CoarseningLegalityError(
                    f"coarsening {name} by {factor} moved the final block "
                    "end — left-over iterations would lose their block"
                )
        blockings[name] = coarse
    in_deps, out_deps = derive_dependencies(
        info.scop, info.pipeline_maps, blockings
    )
    coarse_info = dataclasses.replace(
        info, blockings=blockings, in_deps=in_deps, out_deps=out_deps
    )
    _check_acyclic(coarse_info)
    return coarse_info


def _check_acyclic(info: "PipelineInfo") -> None:
    from ..schedule import generate_task_ast
    from ..tasking import CyclicTaskGraphError, TaskGraph

    try:
        TaskGraph.from_task_ast(generate_task_ast(info))
    except CyclicTaskGraphError as exc:
        raise CoarseningLegalityError(
            f"coarsened task graph is cyclic: {exc}"
        ) from exc


def candidate_factors(info: "PipelineInfo", workers: int) -> list[int]:
    """Log-spaced ladder of global factors, plus the workers-aware pick.

    1 (the paper's finest), powers of two up to the largest statement's
    block count (fully serial per statement), and ``blocks / (2 ·
    workers)`` — roughly two waves per worker, the rule-of-thumb sweet
    spot when per-task overhead dominates.
    """
    max_blocks = max(
        (b.num_blocks for b in info.blockings.values()), default=1
    )
    factors = {1}
    f = 2
    while f < max_blocks:
        factors.add(f)
        f *= 2
    if max_blocks > 1:
        factors.add(max_blocks)
        factors.add(max(1, max_blocks // max(1, 2 * workers)))
    return sorted(factors)


def _measured_wall(
    interp: "Interpreter",
    info: "PipelineInfo",
    backend: str,
    workers: int,
    repeats: int,
) -> float:
    from ..interp import execute_measured

    best = None
    for _ in range(max(1, repeats)):
        _, stats = execute_measured(
            interp, info, backend=backend, workers=workers
        )
        if best is None or stats.wall_time < best:
            best = stats.wall_time
    return best


def auto_tune(
    interp: "Interpreter",
    info: "PipelineInfo",
    workers: int = 4,
    mode: str = "model",
    model: OverheadModel | None = None,
    backend: str = "threads",
    repeats: int = 2,
    dispatch: DispatchCostModel | None = None,
) -> TunedPlan:
    """Pick coarsening factors for ``info`` and return the tuned plan.

    ``mode="model"`` calibrates an :class:`OverheadModel` (unless one is
    passed in), scores every global candidate factor on the simulator,
    then greedily refines each statement's factor by trying its
    neighbours on the ladder.  ``mode="search"`` measures each global
    candidate for real on ``backend`` and keeps the fastest — no
    per-statement refinement, the measurement budget is the ladder.

    When the caller's interpreter has fused dispatch enabled, the model
    mode calibrates *both* ladders (:func:`calibrate_dispatch`) and
    scores with the fused overhead pair — fused closures pay more per
    task and less per iteration, so tuning with the interpreter's pair
    would claim 1-iteration blocks are cheap exactly where they are not.
    """
    if mode not in MODES:
        raise ValueError(f"unknown tuning mode {mode!r}; choose from {MODES}")
    candidates = candidate_factors(info, workers)

    if mode == "search":
        scores = {
            f: _measured_wall(
                interp,
                apply_coarsening(info, {n: f for n in info.blockings}),
                backend,
                workers,
                repeats,
            )
            for f in candidates
        }
        best = min(scores, key=scores.get)
        factors = {name: best for name in info.blockings}
        return TunedPlan(
            mode=mode,
            factors=factors,
            info=apply_coarsening(info, factors),
            model=model,
            scores=scores,
            dispatch=dispatch,
        )

    if model is None:
        if (interp.fuse or "off") != "off":
            if dispatch is None:
                dispatch = calibrate_dispatch(interp, info, repeats=repeats)
            model = dispatch.active(interp.fuse)
        else:
            model = calibrate_overhead(interp, info, repeats=repeats)
    scores = {
        f: model.predict_makespan(
            apply_coarsening(info, {n: f for n in info.blockings}), workers
        )
        for f in candidates
    }
    best = min(scores, key=scores.get)
    factors = {name: best for name in info.blockings}
    best_score = scores[best]

    # One greedy refinement pass: each statement tries the neighbouring
    # ladder rungs while the others keep their factor.
    for name in info.blockings:
        current = factors[name]
        for trial in (max(1, current // 2), current * 2):
            if trial == current:
                continue
            if trial > max(1, info.blockings[name].num_blocks):
                continue
            attempt = dict(factors)
            attempt[name] = trial
            try:
                predicted = model.predict_makespan(
                    apply_coarsening(info, attempt), workers
                )
            except CoarseningLegalityError:
                continue
            if predicted < best_score:
                best_score = predicted
                factors = attempt
    return TunedPlan(
        mode=mode,
        factors=factors,
        info=apply_coarsening(info, factors),
        model=model,
        scores=scores,
        dispatch=dispatch,
    )
