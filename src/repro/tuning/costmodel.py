"""The calibrated per-task / per-iteration cost model.

The discrete-event simulator (:func:`repro.tasking.simulate`) charges an
*abstract* overhead per task; ``benchmarks/bench_calibration.py`` sweeps
it to show how robust the figures are to the choice.  Here the overhead
stops being free: two measured serial runs of the same kernel at
different granularities pin both parameters of

    ``wall ≈ per_task_s · tasks + per_iter_s · iterations``

because the iteration count is identical while the task count differs —
per-task cost is the slope over tasks, per-iteration cost the remainder.
The model then predicts the makespan of any re-blocking by simulating
its task graph with block cost ``per_iter_s · size`` and overhead
``per_task_s``, which is what the granularity tuner ranks candidates
with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..interp import Interpreter
    from ..pipeline import PipelineInfo

#: Floor for fitted parameters — measurement noise must not produce a
#: zero or negative cost (the simulator needs positive work).
_FLOOR_S = 1e-9


@dataclass(frozen=True)
class OverheadModel:
    """Seconds per task and per statement-iteration, plus provenance."""

    per_task_s: float
    per_iter_s: float
    #: (tasks, iterations, wall seconds) of the calibration runs
    samples: tuple[tuple[int, int, float], ...] = ()

    def predict_wall(self, tasks: int, iterations: int) -> float:
        """Serial wall-clock prediction of the linear model."""
        return self.per_task_s * tasks + self.per_iter_s * iterations

    def predict_makespan(self, info: "PipelineInfo", workers: int) -> float:
        """Simulated pipelined makespan (seconds) of one re-blocking."""
        from ..schedule import generate_task_ast
        from ..tasking import TaskGraph, simulate

        graph = TaskGraph.from_task_ast(
            generate_task_ast(info),
            cost_of_block=lambda b: self.per_iter_s * b.size,
        )
        return simulate(
            graph, workers=workers, overhead=self.per_task_s
        ).makespan

    def as_dict(self) -> dict:
        return {
            "per_task_s": self.per_task_s,
            "per_iter_s": self.per_iter_s,
            "samples": [list(s) for s in self.samples],
        }

    def __str__(self) -> str:
        return (
            f"OverheadModel(per_task={self.per_task_s * 1e6:.1f}us, "
            f"per_iter={self.per_iter_s * 1e6:.1f}us)"
        )


@dataclass(frozen=True)
class DispatchCostModel:
    """Separate overhead pairs for the two dispatch ladders.

    A fused closure pays a *higher* per-task cost than the interpreter
    ladder (closure entry, operand gather, one NumPy call) but a much
    lower per-iteration cost — so at 1-iteration blocks fused dispatch
    *loses*, and the granularity tuner must know where the lines cross
    instead of assuming one overhead pair fits both.
    """

    #: the interpreter/vectorized ladder (``fuse="off"``)
    interp: OverheadModel
    #: fused-closure dispatch (``fuse="auto"``/``"on"``)
    fused: OverheadModel

    #: returned by :meth:`crossover_iters` when fused dispatch never
    #: catches up (its per-iteration cost is not actually lower)
    NEVER = 1 << 62

    def crossover_iters(self) -> int:
        """Smallest block size (iterations) where fused dispatch wins.

        Solves ``fused.per_task + s·fused.per_iter <= interp.per_task +
        s·interp.per_iter``: 1 when fused is cheaper even per task,
        :data:`NEVER` when fused's per-iteration cost is not lower.
        """
        import math

        extra_task = self.fused.per_task_s - self.interp.per_task_s
        iter_gain = self.interp.per_iter_s - self.fused.per_iter_s
        if extra_task <= 0:
            return 1
        if iter_gain <= 0:
            return self.NEVER
        return max(1, math.ceil(extra_task / iter_gain))

    def active(self, fuse: str | None) -> OverheadModel:
        """The overhead pair the executor's ladder will actually pay."""
        return self.interp if (fuse or "off") == "off" else self.fused

    def as_dict(self) -> dict:
        crossover = self.crossover_iters()
        return {
            "interp": self.interp.as_dict(),
            "fused": self.fused.as_dict(),
            "crossover_iters": (
                None if crossover == self.NEVER else crossover
            ),
        }

    def __str__(self) -> str:
        crossover = self.crossover_iters()
        where = (
            "never" if crossover == self.NEVER else f">={crossover} iters"
        )
        return (
            f"DispatchCostModel(interp={self.interp}, "
            f"fused={self.fused}, fused wins {where})"
        )


def calibrate_dispatch(
    interp: "Interpreter",
    info: "PipelineInfo",
    repeats: int = 2,
) -> DispatchCostModel:
    """Calibrate both dispatch ladders on the same kernel and blocking.

    Builds two sibling interpreters over the caller's program/SCoP —
    one with ``fuse="off"``, one with fused dispatch — and runs
    :func:`calibrate_overhead` on each, so every parameter is a real
    measurement of the ladder that would pay it.
    """
    from ..interp import Interpreter

    base = Interpreter(
        interp.program, interp.scop, interp.funcs,
        vectorize=interp.vectorize, fuse="off",
    )
    fused_mode = interp.fuse if interp.fuse not in (None, "off") else "auto"
    fused = Interpreter(
        interp.program, interp.scop, interp.funcs,
        vectorize=interp.vectorize, fuse=fused_mode,
    )
    return DispatchCostModel(
        interp=calibrate_overhead(base, info, repeats=repeats),
        fused=calibrate_overhead(fused, info, repeats=repeats),
    )


def _measure_serial(
    interp: "Interpreter", info: "PipelineInfo", repeats: int
) -> tuple[int, int, float]:
    """Best-of-``repeats`` serial wall time of one blocking of the kernel."""
    from ..interp import execute_measured

    best = None
    for _ in range(max(1, repeats)):
        _, stats = execute_measured(interp, info, backend="serial")
        if best is None or stats.wall_time < best.wall_time:
            best = stats
    return best.blocks_total, best.iterations_total, best.wall_time


def calibrate_overhead(
    interp: "Interpreter",
    info: "PipelineInfo",
    repeats: int = 2,
) -> OverheadModel:
    """Fit the model from two measured serial runs of ``info``'s kernel.

    The *fine* sample is ``info`` as given; the *coarse* sample collapses
    every statement into a single block (the fewest tasks any coarsening
    can reach), maximizing the task-count lever between the two runs.
    When ``info`` is already maximally coarse the per-task cost cannot be
    observed and falls back to the floor.
    """
    from .tuner import apply_coarsening

    max_blocks = max(
        (b.num_blocks for b in info.blockings.values()), default=1
    )
    fine = _measure_serial(interp, info, repeats)
    samples = [fine]
    if max_blocks > 1:
        coarse_info = apply_coarsening(
            info, {name: max_blocks for name in info.blockings}
        )
        coarse = _measure_serial(interp, coarse_info, repeats)
        samples.append(coarse)
        dt = fine[0] - coarse[0]
        per_task = (fine[2] - coarse[2]) / dt if dt else 0.0
        per_task = max(_FLOOR_S, per_task)
        per_iter = (coarse[2] - per_task * coarse[0]) / max(1, coarse[1])
    else:
        per_task = _FLOOR_S
        per_iter = fine[2] / max(1, fine[1])
    return OverheadModel(
        per_task_s=per_task,
        per_iter_s=max(_FLOOR_S, per_iter),
        samples=tuple(samples),
    )
