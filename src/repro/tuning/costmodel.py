"""The calibrated per-task / per-iteration cost model.

The discrete-event simulator (:func:`repro.tasking.simulate`) charges an
*abstract* overhead per task; ``benchmarks/bench_calibration.py`` sweeps
it to show how robust the figures are to the choice.  Here the overhead
stops being free: two measured serial runs of the same kernel at
different granularities pin both parameters of

    ``wall ≈ per_task_s · tasks + per_iter_s · iterations``

because the iteration count is identical while the task count differs —
per-task cost is the slope over tasks, per-iteration cost the remainder.
The model then predicts the makespan of any re-blocking by simulating
its task graph with block cost ``per_iter_s · size`` and overhead
``per_task_s``, which is what the granularity tuner ranks candidates
with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..interp import Interpreter
    from ..pipeline import PipelineInfo

#: Floor for fitted parameters — measurement noise must not produce a
#: zero or negative cost (the simulator needs positive work).
_FLOOR_S = 1e-9


@dataclass(frozen=True)
class OverheadModel:
    """Seconds per task and per statement-iteration, plus provenance."""

    per_task_s: float
    per_iter_s: float
    #: (tasks, iterations, wall seconds) of the calibration runs
    samples: tuple[tuple[int, int, float], ...] = ()

    def predict_wall(self, tasks: int, iterations: int) -> float:
        """Serial wall-clock prediction of the linear model."""
        return self.per_task_s * tasks + self.per_iter_s * iterations

    def predict_makespan(self, info: "PipelineInfo", workers: int) -> float:
        """Simulated pipelined makespan (seconds) of one re-blocking."""
        from ..schedule import generate_task_ast
        from ..tasking import TaskGraph, simulate

        graph = TaskGraph.from_task_ast(
            generate_task_ast(info),
            cost_of_block=lambda b: self.per_iter_s * b.size,
        )
        return simulate(
            graph, workers=workers, overhead=self.per_task_s
        ).makespan

    def as_dict(self) -> dict:
        return {
            "per_task_s": self.per_task_s,
            "per_iter_s": self.per_iter_s,
            "samples": [list(s) for s in self.samples],
        }

    def __str__(self) -> str:
        return (
            f"OverheadModel(per_task={self.per_task_s * 1e6:.1f}us, "
            f"per_iter={self.per_iter_s * 1e6:.1f}us)"
        )


def _measure_serial(
    interp: "Interpreter", info: "PipelineInfo", repeats: int
) -> tuple[int, int, float]:
    """Best-of-``repeats`` serial wall time of one blocking of the kernel."""
    from ..interp import execute_measured

    best = None
    for _ in range(max(1, repeats)):
        _, stats = execute_measured(interp, info, backend="serial")
        if best is None or stats.wall_time < best.wall_time:
            best = stats
    return best.blocks_total, best.iterations_total, best.wall_time


def calibrate_overhead(
    interp: "Interpreter",
    info: "PipelineInfo",
    repeats: int = 2,
) -> OverheadModel:
    """Fit the model from two measured serial runs of ``info``'s kernel.

    The *fine* sample is ``info`` as given; the *coarse* sample collapses
    every statement into a single block (the fewest tasks any coarsening
    can reach), maximizing the task-count lever between the two runs.
    When ``info`` is already maximally coarse the per-task cost cannot be
    observed and falls back to the floor.
    """
    from .tuner import apply_coarsening

    max_blocks = max(
        (b.num_blocks for b in info.blockings.values()), default=1
    )
    fine = _measure_serial(interp, info, repeats)
    samples = [fine]
    if max_blocks > 1:
        coarse_info = apply_coarsening(
            info, {name: max_blocks for name in info.blockings}
        )
        coarse = _measure_serial(interp, coarse_info, repeats)
        samples.append(coarse)
        dt = fine[0] - coarse[0]
        per_task = (fine[2] - coarse[2]) / dt if dt else 0.0
        per_task = max(_FLOOR_S, per_task)
        per_iter = (coarse[2] - per_task * coarse[0]) / max(1, coarse[1])
    else:
        per_task = _FLOOR_S
        per_iter = fine[2] / max(1, fine[1])
    return OverheadModel(
        per_task_s=per_task,
        per_iter_s=max(_FLOOR_S, per_iter),
        samples=tuple(samples),
    )
