"""Task-granularity auto-tuning.

The paper's Figure 10 shows pipeline speed-up collapsing once blocks get
small relative to per-task overhead; its granularity knob (coarsening)
is left manual.  This package closes the loop with the measured
execution layer of :mod:`repro.interp.executor`:

* :mod:`~repro.tuning.costmodel` — a two-parameter linear cost model
  (``wall ≈ per_task_s · tasks + per_iter_s · iterations``) calibrated
  from real serial runs at two granularities;
* :mod:`~repro.tuning.tuner` — candidate coarsening factors evaluated
  either on the model via the discrete-event simulator (``mode="model"``)
  or by actually running them (``mode="search"``), per-statement factors
  applied through :meth:`repro.pipeline.blocking.Blocking.coarsened`
  with a legality re-check.
"""

from .costmodel import (
    DispatchCostModel,
    OverheadModel,
    calibrate_dispatch,
    calibrate_overhead,
)
from .tuner import (
    CoarseningLegalityError,
    TunedPlan,
    apply_coarsening,
    auto_tune,
    candidate_factors,
)

__all__ = [
    "CoarseningLegalityError",
    "DispatchCostModel",
    "OverheadModel",
    "TunedPlan",
    "apply_coarsening",
    "auto_tune",
    "calibrate_dispatch",
    "calibrate_overhead",
    "candidate_factors",
]
