"""Privatization transformation stage: execute what the portfolio proved.

The pattern portfolio (PR 6) produces machine-checked
:class:`~repro.analysis.portfolio.privatize.PrivatizationProof` objects
showing that reduction-blocked nest pairs become pipelinable once the
accumulator is privatized.  This module is the transformation that *acts*
on those proofs, following Doerfert et al. ("Polly's Polyhedral
Scheduling in the Presence of Reductions") and Yang et al. ("Simplifying
Dependent Reductions in the Polyhedral Model"):

1. :func:`plan_privatization` turns a portfolio report into a
   :class:`PrivatizationPlan` — one :class:`PrivatizedGroup` per
   accumulator array whose *every* incident dependence is provably
   reduction-carried.  The plan's extended proof (self pairs included,
   unlike the portfolio's cross-nest pair proofs) is re-verified by
   :func:`~repro.schedule.legality.verify_privatization`; detector
   output is never consumed directly.
2. :func:`privatize_info` rewrites the pipeline info: privatized
   statements are re-blocked into ``parts`` contiguous chunks (their
   original blocking is a full barrier — one block — exactly because of
   the dependences the proof removes) and the pipeline maps between
   privatized statements are dropped.
3. :func:`build_privatized_graph` builds the task graph with the
   per-statement self chain *disabled* for privatized statements and one
   generated *join task* per group combining the private accumulators.
4. :func:`verify_privatized_graph` re-checks the join structure: the
   instance-level :func:`~repro.schedule.legality.check_legality` cannot
   see join tasks (they execute no statement instances), so a schedule
   that silently dropped the combine step would otherwise pass.  The
   structural check closes that hole: every member block must precede
   its group's join, and every non-member task touching the accumulator
   must follow it.

Execution-side semantics (allocation, identity initialization, the
deterministic combine order) live in :mod:`repro.interp.privexec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..pipeline import PipelineInfo
from ..pipeline.blocking import Blocking, blocking_from_ends
from ..pipeline.detect import derive_dependencies
from ..presburger import PointRelation, PointSet
from ..scop import DepKind, Scop

if TYPE_CHECKING:  # avoid the schedule <-> tasking / analysis cycles
    from ..analysis.portfolio.analyze import PortfolioReport
    from ..analysis.portfolio.privatize import PrivatizationProof
    from ..tasking.task import TaskGraph
    from .astgen import TaskAst
    from .legality import PrivatizationCheck

#: Identity element per operator group: combining a private initialized
#: to the identity with the group operator is a no-op, so a task that
#: executed zero iterations contributes nothing at the join.
IDENTITIES: dict[str, float] = {
    "sum": 0.0,
    "product": 1.0,
    "min": math.inf,
    "max": -math.inf,
}

_JOIN_PREFIX = "join("


def join_label(array: str) -> str:
    """Statement label of the generated join/combine task of one group."""
    return f"{_JOIN_PREFIX}{array})"


def is_join_label(statement: str) -> bool:
    return statement.startswith(_JOIN_PREFIX) and statement.endswith(")")


class PrivatizationError(ValueError):
    """A privatization plan or proof was rejected before codegen."""


@dataclass(frozen=True)
class PrivatizedGroup:
    """One accumulator array the plan privatizes.

    ``identity`` is validated against the operator group at construction
    *and* again by :meth:`PrivatizationPlan.validate` before execution —
    a forged group with a wrong identity element (``sum`` privates
    initialized to 1.0, say) must never reach codegen.
    """

    array: str
    group: str  # ReductionGroup value ("sum", "product", "min", "max")
    identity: float
    statements: tuple[str, ...]
    proof: "PrivatizationProof"
    verification: "PrivatizationCheck"

    def __post_init__(self) -> None:
        self.check()

    def check(self) -> None:
        """Raise unless the group is internally consistent and verified."""
        if self.group not in IDENTITIES:
            raise PrivatizationError(
                f"unknown operator group {self.group!r} for {self.array!r}"
            )
        expected = IDENTITIES[self.group]
        same = self.identity == expected or (
            math.isnan(expected) and math.isnan(self.identity)
        )
        if not same:
            raise PrivatizationError(
                f"wrong identity element for {self.group} over "
                f"{self.array!r}: got {self.identity!r}, the {self.group} "
                f"identity is {expected!r}"
            )
        if not self.statements:
            raise PrivatizationError(
                f"privatized group over {self.array!r} has no statements"
            )
        if not self.verification.ok:
            raise PrivatizationError(
                f"privatized group over {self.array!r} carries an "
                f"unverified proof: {self.verification.failures[0]}"
            )

    def describe(self) -> str:
        return (
            f"{self.group} over {self.array!r} "
            f"({', '.join(self.statements)}; identity {self.identity:g})"
        )


@dataclass(frozen=True)
class PrivatizationPlan:
    """Everything the transformation stage may act on.

    ``rejected`` records accumulator candidates the planner refused,
    with the reason — ``subswap``-style non-commuting updates land here,
    never in ``groups``.
    """

    groups: tuple[PrivatizedGroup, ...]
    rejected: tuple[tuple[str, str], ...] = ()

    @property
    def statements(self) -> frozenset[str]:
        return frozenset(s for g in self.groups for s in g.statements)

    @property
    def arrays(self) -> tuple[str, ...]:
        return tuple(g.array for g in self.groups)

    def group_of(self, array: str) -> PrivatizedGroup:
        for g in self.groups:
            if g.array == array:
                return g
        raise KeyError(array)

    def relaxed(self) -> dict[tuple[str, str, DepKind], PointRelation]:
        """The merged relaxed-dependence map for ``check_legality``."""
        out: dict[tuple[str, str, DepKind], PointRelation] = {}
        for g in self.groups:
            out.update(g.proof.relaxed_map())
        return out

    def validate(self) -> None:
        """Re-check every group (tamper guard on the execution path)."""
        for g in self.groups:
            g.check()

    def describe(self) -> str:
        if not self.groups:
            return "privatization plan: no verified reduction groups"
        lines = [f"privatization plan: {len(self.groups)} group(s)"]
        for g in self.groups:
            lines.append(f"  privatize {g.describe()}")
        for array, reason in self.rejected:
            lines.append(f"  refused {array!r}: {reason}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "groups": [
                {
                    "array": g.array,
                    "group": g.group,
                    "identity": g.identity,
                    "statements": list(g.statements),
                    "removed_pairs": g.proof.removed_pairs,
                    "verified": bool(g.verification.ok),
                }
                for g in self.groups
            ],
            "rejected": [
                {"array": a, "reason": r} for a, r in self.rejected
            ],
        }


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def plan_privatization(
    scop: Scop,
    report: "PortfolioReport | None" = None,
    arrays: tuple[str, ...] | None = None,
) -> PrivatizationPlan:
    """Build the privatization plan for one SCoP.

    A group forms around accumulator array ``T`` only when

    * every statement updating ``T`` is a verified associative
      accumulation of one common operator group;
    * no other statement reads or writes ``T``;
    * every dependence relation incident to a member statement — self
      pairs included — is *fully* reduction-carried (empty residual).

    The resulting extended proof is handed to
    :func:`~repro.schedule.legality.verify_privatization`; a group whose
    proof fails re-verification is refused, not silently kept.

    ``report`` defaults to running the portfolio detectors here;
    ``arrays`` restricts planning to the named accumulators (used when
    replaying external proofs).
    """
    from ..analysis.portfolio.analyze import run_portfolio
    from ..analysis.portfolio.privatize import (
        PrivatizationProof,
        ReductionClaim,
        RemovedDependence,
    )
    from ..obs.spans import span
    from .legality import verify_privatization

    with span("schedule.privatize.plan") as sp:
        if report is None:
            report = run_portfolio(scop)
        specs, partitions = report.specs, report.partitions

        groups: list[PrivatizedGroup] = []
        rejected: list[tuple[str, str]] = []
        candidates = sorted({spec.array for spec in specs.values()})
        if arrays is not None:
            candidates = [a for a in candidates if a in arrays]

        for array in candidates:
            members = sorted(
                name for name, sp_ in specs.items() if sp_.array == array
            )
            ops = {specs[m].group for m in members}
            if len(ops) != 1:
                rejected.append(
                    (array, "updates mix operator groups "
                     + "/".join(sorted(g.value for g in ops)))
                )
                continue
            outside = sorted(
                st.name
                for st in scop.statements
                if st.name not in members
                and any(
                    a.array == array for a in (*st.reads, *st.writes)
                )
            )
            if outside:
                rejected.append(
                    (array, "accessed by non-reduction statement(s) "
                     + ", ".join(outside))
                )
                continue

            removed: list[RemovedDependence] = []
            residual_reason = None
            for part in partitions.values():
                touches = part.source in members or part.target in members
                if not touches:
                    continue
                if not part.residual.is_empty():
                    residual_reason = (
                        f"{part.kind.value} {part.source} -> {part.target} "
                        f"keeps {len(part.residual)} true dependence pair(s)"
                    )
                    break
                removed.append(
                    RemovedDependence(
                        part.source,
                        part.target,
                        part.kind,
                        part.reduction_carried,
                    )
                )
            if residual_reason is not None:
                rejected.append((array, residual_reason))
                continue

            group_value = next(iter(ops)).value
            proof = PrivatizationProof(
                claims=tuple(
                    ReductionClaim.of(specs[m]) for m in members
                ),
                removed=tuple(removed),
            )
            # Trust boundary: the plan only carries proofs the legality
            # layer re-derived from the SCoP itself.
            check = verify_privatization(scop, proof)
            if not check.ok:
                rejected.append(
                    (array, f"proof re-verification failed: "
                     f"{check.failures[0]}")
                )
                continue
            groups.append(
                PrivatizedGroup(
                    array=array,
                    group=group_value,
                    identity=IDENTITIES[group_value],
                    statements=tuple(members),
                    proof=proof,
                    verification=check,
                )
            )
        sp.set(groups=len(groups), rejected=len(rejected))
        return PrivatizationPlan(tuple(groups), tuple(rejected))


def plan_from_proofs(
    scop: Scop, proofs: "tuple[PrivatizationProof, ...] | list"
) -> PrivatizationPlan:
    """Plan privatization from externally supplied (replayed) proofs.

    Every proof is independently re-verified first — a forged proof (a
    non-commuting operator claimed associative, an inflated removed set,
    pairs smuggled onto non-accumulator memory) raises
    :class:`PrivatizationError` here, before any schedule or codegen
    consumes it.  The surviving arrays then go through the full
    :func:`plan_privatization` gate, which recomputes the dependence
    partitions from the SCoP: an externally replayed proof may cover
    only the cross-nest pairs, while re-blocking also reorders self
    pairs, so the plan must re-derive the complete relaxed set itself.
    """
    from .legality import verify_privatization

    claimed: list[str] = []
    for proof in proofs:
        check = verify_privatization(scop, proof)
        if not check.ok:
            raise PrivatizationError(
                "replayed privatization proof rejected: "
                + "; ".join(str(f) for f in check.failures[:3])
            )
        claimed.extend(proof.arrays)
    plan = plan_privatization(scop, arrays=tuple(sorted(set(claimed))))
    missing = sorted(set(claimed) - set(plan.arrays))
    if missing:
        reasons = {a: r for a, r in plan.rejected}
        raise PrivatizationError(
            "replayed proof arrays cannot be privatized: "
            + "; ".join(
                f"{a!r} ({reasons.get(a, 'no reduction statements')})"
                for a in missing
            )
        )
    return plan


# ----------------------------------------------------------------------
# schedule rewriting
# ----------------------------------------------------------------------
def chunked_blocking(
    statement: str, domain: PointSet, parts: int
) -> Blocking:
    """Re-block one statement's domain into ``parts`` contiguous chunks.

    The privatized statements' detected blocking is a single full-domain
    block (the dependences the proof removes forced a barrier); chunking
    is what actually creates parallelism.  Chunks are contiguous in
    lexicographic order, so the in-block execution order every backend
    uses stays the sequential one.
    """
    if parts < 1:
        raise PrivatizationError("parts must be >= 1")
    n = len(domain)
    if n == 0:
        return blocking_from_ends(statement, domain, PointSet.empty(domain.ndim))
    parts = min(parts, n)
    bounds = np.unique((np.arange(1, parts + 1, dtype=np.int64) * n) // parts) - 1
    ends = PointSet(domain.points[bounds])
    return blocking_from_ends(statement, domain, ends)


def privatize_info(
    info: PipelineInfo, plan: PrivatizationPlan, parts: int = 4
) -> PipelineInfo:
    """Rewrite the pipeline info under a verified privatization plan.

    Pipeline maps between privatized statements are dropped (their
    dependences are exactly the proof's removed set) and each privatized
    statement is re-blocked into ``parts`` chunks; the ``Q_S`` /
    ``Q_S^O`` relations of the surviving maps are re-derived through the
    standard Algorithm-1 path.
    """
    members = plan.statements
    if not members:
        return info
    kept: dict = {}
    for (src, tgt), pmap in info.pipeline_maps.items():
        src_in, tgt_in = src in members, tgt in members
        if src_in and tgt_in:
            continue
        if src_in or tgt_in:
            # cannot happen for a gated plan: a dependence between a
            # member and a non-member would have left a residual
            raise PrivatizationError(
                f"pipeline map {src} -> {tgt} crosses the privatization "
                "boundary; the plan does not cover it"
            )
        kept[(src, tgt)] = pmap

    blockings = dict(info.blockings)
    for name in sorted(members):
        stmt = info.scop.statement(name)
        blockings[name] = chunked_blocking(name, stmt.points, parts)
    in_deps, out_deps = derive_dependencies(info.scop, kept, blockings)
    return PipelineInfo(info.scop, kept, blockings, in_deps, out_deps)


# ----------------------------------------------------------------------
# task-graph construction and the join-structure re-check
# ----------------------------------------------------------------------
def build_privatized_graph(
    ast: "TaskAst",
    plan: PrivatizationPlan,
    cost_of_block: Callable | None = None,
    join_cost: float = 1.0,
) -> "tuple[TaskGraph, dict[str, int]]":
    """Task graph of a privatized schedule: unchained members + joins.

    Privatized statements run their blocks unordered (their self chain
    is exactly what privatization removes); one join task per group
    waits on every member block.  Join tasks carry ``block=None`` — they
    execute no statement instances, only the combine — which is why
    :func:`verify_privatized_graph` exists alongside ``check_legality``.
    """
    from ..tasking.task import TaskGraph

    graph = TaskGraph.from_task_ast(
        ast, cost_of_block=cost_of_block, unchained=plan.statements
    )
    joins: dict[str, int] = {}
    for group in plan.groups:
        members = set(group.statements)
        preds = [t.task_id for t in graph.tasks if t.statement in members]
        jid = graph.add_task(join_label(group.array), 0, cost=join_cost)
        for p in preds:
            graph.add_edge(p, jid)
        joins[group.array] = jid
    graph.validate()
    return graph, joins


@dataclass(frozen=True)
class PrivatizedGraphCheck:
    """Outcome of the structural join-coverage re-check."""

    checked_groups: int
    issues: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.issues

    def raise_if_invalid(self) -> None:
        if self.issues:
            raise PrivatizationError(
                f"privatized task graph rejected: {self.issues[0]}"
            )

    def __str__(self) -> str:
        status = "ok" if self.ok else f"{len(self.issues)} issue(s)"
        return (
            f"PrivatizedGraphCheck({self.checked_groups} group(s), {status})"
        )


def verify_privatized_graph(
    scop: Scop, plan: PrivatizationPlan, graph: "TaskGraph"
) -> PrivatizedGraphCheck:
    """Re-check the join structure of a privatized task graph.

    ``check_legality`` only sees tasks that execute statement instances;
    a join task (``block=None``) is invisible to it, so a schedule that
    *omitted* the combine step would still look legal.  This check
    closes the gap: per group there must be exactly one join task, every
    member block must (transitively) precede it, and every non-member
    task whose statement touches the accumulator must follow it.
    """
    reach = graph.reachability()
    issues: list[str] = []
    for group in plan.groups:
        label = join_label(group.array)
        joins = [t.task_id for t in graph.tasks if t.statement == label]
        if len(joins) != 1:
            issues.append(
                f"group {group.array!r}: expected exactly one join task, "
                f"found {len(joins)}"
            )
            continue
        jid = joins[0]
        members = set(group.statements)
        for task in graph.tasks:
            if task.task_id == jid:
                continue
            if task.statement in members:
                if not reach[task.task_id, jid]:
                    issues.append(
                        f"group {group.array!r}: member block {task} does "
                        "not precede the join"
                    )
            elif task.block is not None and _touches(
                scop, task.statement, group.array
            ):
                if not reach[jid, task.task_id]:
                    issues.append(
                        f"group {group.array!r}: task {task} accesses the "
                        "accumulator but is not ordered after the join"
                    )
    return PrivatizedGraphCheck(len(plan.groups), tuple(issues))


def _touches(scop: Scop, statement: str, array: str) -> bool:
    try:
        stmt = scop.statement(statement)
    except KeyError:
        return False
    return any(a.array == array for a in (*stmt.reads, *stmt.writes))
