"""Serialization of task ASTs (analysis-result caching).

The pipeline analysis is a compile-time pass; for large instantiations it
is worth caching.  A :class:`~repro.schedule.astgen.TaskAst` is fully
self-contained (blocks, iterations, dependency tokens), so saving it is
enough to rebuild task graphs and run/simulate later without re-running
Algorithm 1 — ``save_task_ast`` / ``load_task_ast`` round-trip it through
a single ``.npz`` file (NumPy arrays for the bulk, a JSON header for the
structure).
"""

from __future__ import annotations

import io
import json

import numpy as np

from .astgen import TaskAst, TaskBlock, TaskLoopNest

FORMAT_VERSION = 1


def save_task_ast(path: str, ast: TaskAst) -> None:
    """Write a task AST to ``path`` (``.npz``)."""
    header: dict = {"version": FORMAT_VERSION, "nests": []}
    arrays: dict[str, np.ndarray] = {}
    for n_idx, nest in enumerate(ast.nests):
        nest_rec = {
            "statement": nest.statement,
            "depth": nest.depth,
            "blocks": [],
        }
        for block in nest.blocks:
            key = f"iters_{n_idx}_{block.block_id}"
            arrays[key] = block.iterations
            nest_rec["blocks"].append(
                {
                    "block_id": block.block_id,
                    "end": list(block.end),
                    "iters": key,
                    "in_tokens": [
                        [stmt, list(end)] for stmt, end in block.in_tokens
                    ],
                }
            )
        header["nests"].append(nest_rec)
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_task_ast(path: str) -> TaskAst:
    """Read a task AST written by :func:`save_task_ast`."""
    with np.load(path) as data:
        header = json.loads(bytes(data["__header__"]).decode("utf-8"))
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported task-AST format version {header.get('version')}"
            )
        nests: list[TaskLoopNest] = []
        for nest_rec in header["nests"]:
            statement = nest_rec["statement"]
            blocks: list[TaskBlock] = []
            for rec in nest_rec["blocks"]:
                iters = np.asarray(data[rec["iters"]], dtype=np.int64)
                end = tuple(int(v) for v in rec["end"])
                in_tokens = tuple(
                    (stmt, tuple(int(v) for v in e))
                    for stmt, e in rec["in_tokens"]
                )
                blocks.append(
                    TaskBlock(
                        statement=statement,
                        block_id=int(rec["block_id"]),
                        end=end,
                        iterations=iters,
                        in_tokens=in_tokens,
                        out_token=(statement, end),
                    )
                )
            nests.append(
                TaskLoopNest(statement, int(nest_rec["depth"]), tuple(blocks))
            )
    return TaskAst(tuple(nests))


def dumps_task_ast(ast: TaskAst) -> bytes:
    """In-memory variant of :func:`save_task_ast`."""
    buffer = io.BytesIO()
    save_task_ast(buffer, ast)  # type: ignore[arg-type]
    return buffer.getvalue()


def loads_task_ast(blob: bytes) -> TaskAst:
    """Inverse of :func:`dumps_task_ast`."""
    return load_task_ast(io.BytesIO(blob))  # type: ignore[arg-type]
