"""Serialization of task ASTs (analysis-result caching).

The pipeline analysis is a compile-time pass; for large instantiations it
is worth caching.  A :class:`~repro.schedule.astgen.TaskAst` is fully
self-contained (blocks, iterations, dependency tokens), so saving it is
enough to rebuild task graphs and run/simulate later without re-running
Algorithm 1.  Two containers share one packed layout:

* ``save_task_ast`` / ``load_task_ast`` — a single ``.npz`` file
  (NumPy arrays for the bulk, a JSON header for the structure);
* ``dumps_task_ast`` / ``loads_task_ast`` — an in-memory blob for the
  artifact store: zlib-compressed pickle of the same packed arrays,
  *without* the zip container (``np.load`` drags in ``zipfile`` +
  ``pathlib``, ~10ms of import cost in a fresh warm-serving process).

The packed layout (format version 2) differs from version 1 in two ways
that matter at thousands of blocks:

* every block's iteration array lives in ONE flat ``int64`` array plus
  a ``(n_blocks, 2)`` shape table — version 1 stored one npz member per
  block, and the per-member zip open/decompress overhead dominated warm
  artifact-store loads;
* ``in_tokens`` are stored as integer indices into the global block
  list (a consumed token is some producer block's ``out_token``), not
  as literal ``[statement, end]`` pairs — smaller header, shared tuple
  objects on load.  Tokens produced by no block (defensive case) are
  kept literally in ``"in_extra"``.

Loaded iteration arrays view into the flat array (no copy).  Version-1
``.npz`` files and blobs are still read.
"""

from __future__ import annotations

import io
import json
import pickle
import zlib

import numpy as np

from .astgen import TaskAst, TaskBlock, TaskLoopNest

FORMAT_VERSION = 2

#: magic prefix of the in-memory blob container (zip-free pickle)
BLOB_MAGIC = b"RPTAST2\x00"


# ----------------------------------------------------------------------
# packed layout: AST <-> (header, flat, shapes)
# ----------------------------------------------------------------------
def _pack(ast: TaskAst) -> tuple[dict, np.ndarray, np.ndarray]:
    token_index: dict = {}
    idx = 0
    for nest in ast.nests:
        for block in nest.blocks:
            token_index[(nest.statement, tuple(block.end))] = idx
            idx += 1

    header: dict = {"version": FORMAT_VERSION, "nests": []}
    chunks: list[np.ndarray] = []
    shapes: list[tuple[int, int]] = []
    for nest in ast.nests:
        nest_rec = {
            "statement": nest.statement,
            "depth": nest.depth,
            "blocks": [],
        }
        for block in nest.blocks:
            iters = np.ascontiguousarray(block.iterations, dtype=np.int64)
            chunks.append(iters.ravel())
            # cols == -1 marks a 1-D iteration array (shape preserved)
            shapes.append(
                (iters.shape[0], iters.shape[1])
                if iters.ndim == 2
                else (iters.shape[0], -1)
            )
            rec: dict = {
                "block_id": block.block_id,
                "end": list(block.end),
                "in": [],
            }
            for stmt, end in block.in_tokens:
                ref = token_index.get((stmt, tuple(end)))
                if ref is None:
                    rec.setdefault("in_extra", []).append([stmt, list(end)])
                else:
                    rec["in"].append(ref)
            nest_rec["blocks"].append(rec)
        header["nests"].append(nest_rec)
    flat = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    return header, flat, np.asarray(shapes, dtype=np.int64).reshape(-1, 2)


def _unpack(header: dict, flat: np.ndarray, shapes: np.ndarray) -> TaskAst:
    flat = np.asarray(flat, dtype=np.int64)
    shapes = np.asarray(shapes, dtype=np.int64)

    # Pass 1: every block's out_token, in global block order — in_token
    # indices resolve against this (and the tuples are shared, not
    # re-materialized per consumer).
    out_tokens: list = []
    for nest_rec in header["nests"]:
        statement = nest_rec["statement"]
        for rec in nest_rec["blocks"]:
            out_tokens.append((statement, tuple(rec["end"])))

    nests: list[TaskLoopNest] = []
    offset = 0
    b_idx = 0
    for nest_rec in header["nests"]:
        statement = nest_rec["statement"]
        blocks: list[TaskBlock] = []
        for rec in nest_rec["blocks"]:
            rows = int(shapes[b_idx, 0])
            cols = int(shapes[b_idx, 1])
            count = rows * (1 if cols == -1 else cols)
            iters = flat[offset : offset + count]
            if cols != -1:
                iters = iters.reshape(rows, cols)
            offset += count
            in_tokens = [out_tokens[i] for i in rec["in"]]
            for stmt, end in rec.get("in_extra", ()):
                in_tokens.append((stmt, tuple(end)))
            blocks.append(
                TaskBlock(
                    statement=statement,
                    block_id=int(rec["block_id"]),
                    end=out_tokens[b_idx][1],
                    iterations=iters,
                    in_tokens=tuple(in_tokens),
                    out_token=out_tokens[b_idx],
                )
            )
            b_idx += 1
        nests.append(
            TaskLoopNest(statement, int(nest_rec["depth"]), tuple(blocks))
        )
    return TaskAst(tuple(nests))


# ----------------------------------------------------------------------
# file container (.npz)
# ----------------------------------------------------------------------
def save_task_ast(path: str, ast: TaskAst) -> None:
    """Write a task AST to ``path`` (``.npz``, format version 2)."""
    header, flat, shapes = _pack(ast)
    np.savez_compressed(
        path,
        __header__=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        flat=flat,
        shapes=shapes,
    )


def load_task_ast(path: str) -> TaskAst:
    """Read a task AST written by :func:`save_task_ast` (version 1 or 2)."""
    with np.load(path) as data:
        header = json.loads(bytes(data["__header__"]).decode("utf-8"))
        version = header.get("version")
        if version == 1:
            return _load_v1(header, data)
        if version == FORMAT_VERSION:
            return _unpack(header, data["flat"], data["shapes"])
        raise ValueError(f"unsupported task-AST format version {version}")


def _load_v1(header: dict, data) -> TaskAst:
    """Version-1 layout: one npz member per block (slow, kept readable)."""
    nests: list[TaskLoopNest] = []
    for nest_rec in header["nests"]:
        statement = nest_rec["statement"]
        blocks: list[TaskBlock] = []
        for rec in nest_rec["blocks"]:
            iters = np.asarray(data[rec["iters"]], dtype=np.int64)
            end = tuple(int(v) for v in rec["end"])
            blocks.append(
                TaskBlock(
                    statement=statement,
                    block_id=int(rec["block_id"]),
                    end=end,
                    iterations=iters,
                    in_tokens=tuple(
                        (stmt, tuple(int(v) for v in e))
                        for stmt, e in rec["in_tokens"]
                    ),
                    out_token=(statement, end),
                )
            )
        nests.append(
            TaskLoopNest(statement, int(nest_rec["depth"]), tuple(blocks))
        )
    return TaskAst(tuple(nests))


# ----------------------------------------------------------------------
# in-memory container (artifact-store blobs)
# ----------------------------------------------------------------------
def dumps_task_ast(ast: TaskAst) -> bytes:
    """Task AST -> bytes, the artifact-store blob (zip-free)."""
    header, flat, shapes = _pack(ast)
    doc = {"header": header, "flat": flat, "shapes": shapes}
    return BLOB_MAGIC + zlib.compress(
        pickle.dumps(doc, protocol=4), level=1
    )


def loads_task_ast(blob: bytes) -> TaskAst:
    """Inverse of :func:`dumps_task_ast`; also reads v1 ``.npz`` blobs."""
    if blob.startswith(BLOB_MAGIC):
        doc = pickle.loads(zlib.decompress(blob[len(BLOB_MAGIC) :]))
        return _unpack(doc["header"], doc["flat"], doc["shapes"])
    # historical blobs were whole .npz files (zip container)
    return load_task_ast(io.BytesIO(blob))  # type: ignore[arg-type]
