"""AST generation from the pipelined schedule tree (Section 5.3).

Lowers the schedule tree to a task-annotated loop AST in the spirit of the
paper's Figure 6: one loop nest per statement iterating its pipeline blocks
in lexicographic order, each block annotated with the dependency tokens the
code generator turns into OpenMP-style ``depend`` clauses.

A *token* is ``(statement name, block end tuple)`` — the printable form of
the ``Q_S`` / ``Q_S^O`` relations evaluated at one block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pipeline import PipelineInfo
from .build import PIPELINE_MARK, PipelineMarkPayload, build_schedule
from .tree import DomainNode, ExpansionNode, MarkNode, ScheduleTree

Token = tuple[str, tuple[int, ...]]


@dataclass(frozen=True)
class TaskBlock:
    """One pipeline block — the unit that becomes an OpenMP task."""

    statement: str
    block_id: int
    end: tuple[int, ...]
    iterations: np.ndarray
    in_tokens: tuple[Token, ...]
    out_token: Token

    @property
    def size(self) -> int:
        return self.iterations.shape[0]

    def __str__(self) -> str:
        deps = ", ".join(f"{s}{list(e)}" for s, e in self.in_tokens)
        return (
            f"task {self.statement}#{self.block_id} end={list(self.end)} "
            f"({self.size} iters) in:[{deps}]"
        )


@dataclass(frozen=True)
class TaskLoopNest:
    """The task loop nest of one statement (its pipeline loop + body)."""

    statement: str
    depth: int
    blocks: tuple[TaskBlock, ...]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def total_iterations(self) -> int:
        return sum(b.size for b in self.blocks)


@dataclass(frozen=True)
class TaskAst:
    """Task-annotated AST of the whole pipelined SCoP."""

    nests: tuple[TaskLoopNest, ...]

    def nest(self, statement: str) -> TaskLoopNest:
        for n in self.nests:
            if n.statement == statement:
                return n
        raise KeyError(statement)

    def all_blocks(self) -> list[TaskBlock]:
        return [b for n in self.nests for b in n.blocks]

    def pretty(self) -> str:
        """Figure-6 style rendering of the task AST."""
        lines: list[str] = []
        for nest in self.nests:
            lines.append(
                f"// statement {nest.statement}: {nest.num_blocks} tasks, "
                f"pipeline loop over {nest.depth}-d blocks"
            )
            lines.append(f"for (b = 0; b < {nest.num_blocks}; b += 1) {{")
            example = nest.blocks[0] if nest.blocks else None
            if example is not None:
                deps = ", ".join(
                    f"{s}@{list(e)}" for s, e in example.in_tokens
                ) or "none"
                lines.append(
                    f"  // task: out {nest.statement}@end(b); "
                    f"in (b=0 shown): {deps}"
                )
            lines.append(f"  for (iter in block b of {nest.statement})")
            lines.append(f"    {nest.statement}(iter);")
            lines.append("}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


def generate_task_ast(
    info: PipelineInfo, schedule: ScheduleTree | None = None
) -> TaskAst:
    """Lower a (pipelined) schedule tree to the task-annotated AST.

    The tree defaults to :func:`~repro.schedule.build.build_schedule` of the
    given pipeline info.  Statement order follows the tree's sequence.
    """
    from ..obs.spans import span

    schedule = schedule if schedule is not None else build_schedule(info)
    with span("schedule.astgen"):
        nests: list[TaskLoopNest] = []
        for node in schedule.walk():
            if isinstance(node, DomainNode) and _is_block_domain(node):
                nests.append(_lower_statement(info, node))
        return TaskAst(tuple(nests))


def _is_block_domain(node: DomainNode) -> bool:
    """Block-level domain nodes have an expansion somewhere below them."""
    return any(isinstance(n, ExpansionNode) for n in node.walk())


def _lower_statement(info: PipelineInfo, node: DomainNode) -> TaskLoopNest:
    name = node.statement
    blocking = info.blockings[name]
    payload = _find_payload(node)

    # Pre-compute per-dependency lookup tables: block end -> required end.
    dep_tables: list[tuple[str, dict[tuple[int, ...], tuple[int, ...]]]] = []
    for dep in payload.in_deps:
        table = {
            tuple(int(v) for v in row[: dep.relation.n_in]): tuple(
                int(v) for v in row[dep.relation.n_in :]
            )
            for row in dep.relation.pairs
        }
        dep_tables.append((dep.source, table))

    blocks: list[TaskBlock] = []
    per_block_iters = blocking.iterations_by_block()
    for block_id in range(blocking.num_blocks):
        end = tuple(int(v) for v in blocking.ends.points[block_id])
        iters = per_block_iters[block_id]
        in_tokens = tuple(
            (src, table[end]) for src, table in dep_tables if end in table
        )
        blocks.append(
            TaskBlock(
                statement=name,
                block_id=block_id,
                end=end,
                iterations=iters,
                in_tokens=in_tokens,
                out_token=(name, end),
            )
        )
    depth = blocking.ends.ndim
    return TaskLoopNest(name, depth, tuple(blocks))


def _find_payload(node: DomainNode) -> PipelineMarkPayload:
    for n in node.walk():
        if isinstance(n, MarkNode) and n.name == PIPELINE_MARK:
            return n.payload
    raise ValueError(
        f"statement {node.statement} has no {PIPELINE_MARK!r} mark node"
    )
