"""Schedule trees, Algorithm 2, and task-AST generation (Section 5.2–5.3)."""

from .astgen import TaskAst, TaskBlock, TaskLoopNest, Token, generate_task_ast
from .legality import (
    IllegalScheduleError,
    LegalityReport,
    PrivatizationCheck,
    ProofFailure,
    Violation,
    check_legality,
    verify_privatization,
)
from .serialize import (
    dumps_task_ast,
    load_task_ast,
    loads_task_ast,
    save_task_ast,
)
from .build import (
    PIPELINE_MARK,
    PipelineMarkPayload,
    build_schedule,
    build_statement_tree,
)
from .tree import (
    BandNode,
    DomainNode,
    ExpansionNode,
    Leaf,
    MarkNode,
    ScheduleNode,
    ScheduleTree,
    SequenceNode,
)

__all__ = [
    "BandNode",
    "DomainNode",
    "IllegalScheduleError",
    "LegalityReport",
    "ExpansionNode",
    "Leaf",
    "MarkNode",
    "PIPELINE_MARK",
    "PipelineMarkPayload",
    "PrivatizationCheck",
    "ProofFailure",
    "ScheduleNode",
    "ScheduleTree",
    "SequenceNode",
    "TaskAst",
    "TaskBlock",
    "TaskLoopNest",
    "Token",
    "Violation",
    "check_legality",
    "verify_privatization",
    "dumps_task_ast",
    "load_task_ast",
    "loads_task_ast",
    "save_task_ast",
    "build_schedule",
    "build_statement_tree",
    "generate_task_ast",
]
