"""Algorithm 2: schedule-tree construction from pipeline information.

For each statement S with combined blocking ``E_S`` the algorithm builds

* a *block* schedule over ``Range(E_S)`` — a domain node plus a band node
  iterating the blocks in lexicographic order (the outer loops; the
  innermost of them is the *pipeline loop*);
* an *intra-block* schedule over ``Dom(E_S)`` preceded by a mark node
  carrying the pipeline dependency relations (``Q_S``, ``Q_S^O``);
* an expansion node gluing the two with contraction ``E_S``.

The statement trees are sequenced in program order, mirroring line 13 of
Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pipeline import BlockDependency, PipelineInfo
from ..presburger import PointRelation
from .tree import (
    BandNode,
    DomainNode,
    ExpansionNode,
    Leaf,
    MarkNode,
    ScheduleNode,
    ScheduleTree,
    SequenceNode,
)

PIPELINE_MARK = "pipeline_deps"


@dataclass(frozen=True)
class PipelineMarkPayload:
    """Payload of the pipeline mark node.

    Mirrors the paper's ``pw_multi_aff_list`` (in-dependencies) and
    ``pw_multi_aff`` (out-dependency) attached per statement.
    """

    statement: str
    in_deps: tuple[BlockDependency, ...]
    out_dep: PointRelation


def build_statement_tree(info: PipelineInfo, name: str) -> ScheduleNode:
    """Lines 2-12 of Algorithm 2 for a single statement."""
    blocking = info.blockings[name]
    d_e = blocking.mapping.domain()  # Dom(E_S): the iterations
    r_e = blocking.ends  # Range(E_S): the blocks

    payload = PipelineMarkPayload(
        statement=name,
        in_deps=info.in_deps.get(name, ()),
        out_dep=info.out_deps[name],
    )

    # Intra-block schedule: domain over iterations, mark, inner band.
    intra = DomainNode(
        name,
        d_e,
        MarkNode(
            PIPELINE_MARK,
            payload,
            BandNode(d_e.ndim, Leaf(), role="intra"),
        ),
    )

    # Block schedule: domain over block ends, band over blocks, expansion.
    return DomainNode(
        name,
        r_e,
        BandNode(
            r_e.ndim,
            ExpansionNode(blocking.mapping, intra),
            role="block",
        ),
    )


def build_schedule(info: PipelineInfo) -> ScheduleTree:
    """Algorithm 2: the full pipelined schedule tree of the SCoP."""
    from ..obs.spans import span

    with span("schedule.tree"):
        branches = tuple(
            build_statement_tree(info, stmt.name)
            for stmt in info.scop.statements
        )
        if len(branches) == 1:
            return ScheduleTree(branches[0])
        return ScheduleTree(SequenceNode(branches))
