"""Legality checking of pipelined task graphs.

A transformed schedule is legal when every instance-level dependence of the
original program is preserved: if instance ``a`` must execute before
instance ``b``, then ``a``'s task precedes ``b``'s task in the graph (or
they share a task, whose internal execution stays in lexicographic order).

:func:`check_legality` verifies this exhaustively against the memory-based
dependences of the SCoP — flow, anti and output — using the task graph's
transitive reachability.  It is the library form of the oracle used across
the test-suite, and what a cautious user should run after transforming a
kernel with custom options (coarsening, relaxed chains, extra dependence
classes).

The check is exact but quadratic in the number of tasks; it is meant for
validation, not for the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from ..pipeline import PipelineInfo
from ..scop import DepKind, Scop, dependence_relation

if TYPE_CHECKING:  # avoid the schedule <-> tasking package cycle
    from ..tasking.task import TaskGraph


@dataclass(frozen=True)
class Violation:
    """One dependence pair the task graph fails to order."""

    kind: DepKind
    source: str
    source_instance: tuple[int, ...]
    target: str
    target_instance: tuple[int, ...]

    def __str__(self) -> str:
        return (
            f"{self.kind.value}: {self.source}{list(self.source_instance)} "
            f"must precede {self.target}{list(self.target_instance)}"
        )


@dataclass(frozen=True)
class LegalityReport:
    """Outcome of a legality check."""

    checked_pairs: int
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_illegal(self) -> None:
        if self.violations:
            raise IllegalScheduleError(
                f"{len(self.violations)} dependence(s) violated; first: "
                f"{self.violations[0]}"
            )

    def __str__(self) -> str:
        status = "legal" if self.ok else f"{len(self.violations)} violations"
        return f"LegalityReport({self.checked_pairs} pairs checked, {status})"


class IllegalScheduleError(RuntimeError):
    """The transformed schedule reorders a dependence."""


def check_legality(
    scop: Scop,
    info: PipelineInfo,
    graph: "TaskGraph",
    kinds: tuple[DepKind, ...] = tuple(DepKind),
    max_violations: int = 20,
) -> LegalityReport:
    """Verify the task graph against every instance-level dependence."""
    from ..obs.spans import span

    with span("schedule.legality"):
        return _check_legality(scop, info, graph, kinds, max_violations)


def _check_legality(
    scop: Scop,
    info: PipelineInfo,
    graph: "TaskGraph",
    kinds: tuple[DepKind, ...],
    max_violations: int,
) -> LegalityReport:
    reach = graph.reachability()
    token_to_task = {
        task.block.out_token: task.task_id
        for task in graph.tasks
        if task.block is not None
    }

    checked = 0
    violations: list[Violation] = []
    for source in scop.statements:
        sb = info.blockings[source.name]
        s_task_of_block = _tasks_by_block(token_to_task, sb, source.name)
        for target in scop.statements:
            tb = info.blockings[target.name]
            t_task_of_block = _tasks_by_block(token_to_task, tb, target.name)
            for kind in kinds:
                rel = dependence_relation(scop, source, target, kind)
                if rel.is_empty():
                    continue
                checked += len(rel)
                src_blocks = sb.block_of_rows(rel.out_part)
                tgt_blocks = tb.block_of_rows(rel.in_part)
                s_tids = s_task_of_block[src_blocks]
                t_tids = t_task_of_block[tgt_blocks]
                ordered = reach[s_tids, t_tids]
                same = s_tids == t_tids
                if source.name == target.name:
                    # same task: intra-task execution is lexicographic, so
                    # the dependence holds iff src precedes tgt there —
                    # guaranteed because dependence pairs satisfy src <lex
                    # tgt within one statement.
                    ok = ordered | same
                else:
                    # different statements never share a task
                    ok = ordered
                for idx in np.nonzero(~ok)[0]:
                    if len(violations) >= max_violations:
                        break
                    violations.append(
                        Violation(
                            kind,
                            source.name,
                            tuple(int(v) for v in rel.out_part[idx]),
                            target.name,
                            tuple(int(v) for v in rel.in_part[idx]),
                        )
                    )
    return LegalityReport(checked, tuple(violations))


def _tasks_by_block(token_to_task, blocking, statement: str) -> np.ndarray:
    """Task id per block id of one statement."""
    out = np.empty(blocking.num_blocks, dtype=np.int64)
    for block_id in range(blocking.num_blocks):
        end = tuple(int(v) for v in blocking.ends.points[block_id])
        out[block_id] = token_to_task[(statement, end)]
    return out
