"""Legality checking of pipelined task graphs.

A transformed schedule is legal when every instance-level dependence of the
original program is preserved: if instance ``a`` must execute before
instance ``b``, then ``a``'s task precedes ``b``'s task in the graph (or
they share a task, whose internal execution stays in lexicographic order).

:func:`check_legality` verifies this exhaustively against the memory-based
dependences of the SCoP — flow, anti and output — using the task graph's
transitive reachability.  It is the library form of the oracle used across
the test-suite, and what a cautious user should run after transforming a
kernel with custom options (coarsening, relaxed chains, extra dependence
classes).

The check is exact but quadratic in the number of tasks; it is meant for
validation, not for the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING, Mapping

from ..pipeline import PipelineInfo
from ..presburger import PointRelation
from ..scop import DepKind, Scop, ScopStatement, dependence_relation

if TYPE_CHECKING:  # avoid the schedule <-> tasking package cycle
    from ..analysis.portfolio.privatize import PrivatizationProof
    from ..tasking.task import TaskGraph

#: (source statement, target statement, dependence kind) — the key shape
#: of a relaxed-dependence map (``PrivatizationProof.relaxed_map()``)
RelaxedMap = Mapping[tuple[str, str, DepKind], PointRelation]


@dataclass(frozen=True)
class Violation:
    """One dependence pair the task graph fails to order."""

    kind: DepKind
    source: str
    source_instance: tuple[int, ...]
    target: str
    target_instance: tuple[int, ...]

    def __str__(self) -> str:
        return (
            f"{self.kind.value}: {self.source}{list(self.source_instance)} "
            f"must precede {self.target}{list(self.target_instance)}"
        )


@dataclass(frozen=True)
class LegalityReport:
    """Outcome of a legality check."""

    checked_pairs: int
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_illegal(self) -> None:
        if self.violations:
            raise IllegalScheduleError(
                f"{len(self.violations)} dependence(s) violated; first: "
                f"{self.violations[0]}"
            )

    def __str__(self) -> str:
        status = "legal" if self.ok else f"{len(self.violations)} violations"
        return f"LegalityReport({self.checked_pairs} pairs checked, {status})"


class IllegalScheduleError(RuntimeError):
    """The transformed schedule reorders a dependence."""


def check_legality(
    scop: Scop,
    info: PipelineInfo,
    graph: "TaskGraph",
    kinds: tuple[DepKind, ...] = tuple(DepKind),
    max_violations: int = 20,
    relaxed: RelaxedMap | None = None,
) -> LegalityReport:
    """Verify the task graph against every instance-level dependence.

    ``relaxed`` maps ``(source, target, kind)`` to instance pairs the
    schedule is allowed to reorder — the removed set of a *verified*
    privatization proof (:func:`verify_privatization`).  Those pairs are
    subtracted from each dependence relation before checking; everything
    else must still be preserved.
    """
    from ..obs.spans import span

    with span("schedule.legality"):
        return _check_legality(
            scop, info, graph, kinds, max_violations, relaxed
        )


def _check_legality(
    scop: Scop,
    info: PipelineInfo,
    graph: "TaskGraph",
    kinds: tuple[DepKind, ...],
    max_violations: int,
    relaxed: RelaxedMap | None = None,
) -> LegalityReport:
    reach = graph.reachability()
    token_to_task = {
        task.block.out_token: task.task_id
        for task in graph.tasks
        if task.block is not None
    }

    checked = 0
    violations: list[Violation] = []
    for source in scop.statements:
        sb = info.blockings[source.name]
        s_task_of_block = _tasks_by_block(token_to_task, sb, source.name)
        for target in scop.statements:
            tb = info.blockings[target.name]
            t_task_of_block = _tasks_by_block(token_to_task, tb, target.name)
            for kind in kinds:
                rel = dependence_relation(scop, source, target, kind)
                if relaxed:
                    cut = relaxed.get((source.name, target.name, kind))
                    if cut is not None and not cut.is_empty():
                        rel = rel.difference(cut)
                if rel.is_empty():
                    continue
                checked += len(rel)
                src_blocks = sb.block_of_rows(rel.out_part)
                tgt_blocks = tb.block_of_rows(rel.in_part)
                s_tids = s_task_of_block[src_blocks]
                t_tids = t_task_of_block[tgt_blocks]
                ordered = reach[s_tids, t_tids]
                same = s_tids == t_tids
                if source.name == target.name:
                    # same task: intra-task execution is lexicographic, so
                    # the dependence holds iff src precedes tgt there —
                    # guaranteed because dependence pairs satisfy src <lex
                    # tgt within one statement.
                    ok = ordered | same
                else:
                    # different statements never share a task
                    ok = ordered
                for idx in np.nonzero(~ok)[0]:
                    if len(violations) >= max_violations:
                        break
                    violations.append(
                        Violation(
                            kind,
                            source.name,
                            tuple(int(v) for v in rel.out_part[idx]),
                            target.name,
                            tuple(int(v) for v in rel.in_part[idx]),
                        )
                    )
    return LegalityReport(checked, tuple(violations))


def _tasks_by_block(token_to_task, blocking, statement: str) -> np.ndarray:
    """Task id per block id of one statement."""
    out = np.empty(blocking.num_blocks, dtype=np.int64)
    for block_id in range(blocking.num_blocks):
        end = tuple(int(v) for v in blocking.ends.points[block_id])
        out[block_id] = token_to_task[(statement, end)]
    return out


# ----------------------------------------------------------------------
# privatization proof checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProofFailure:
    """One claim of a privatization proof the checker could not confirm."""

    claim: str
    reason: str

    def __str__(self) -> str:
        return f"{self.claim}: {self.reason}"


@dataclass(frozen=True)
class PrivatizationCheck:
    """Outcome of independently re-verifying a privatization proof."""

    claims_checked: int
    relations_checked: int
    checked_instance_pairs: int
    failures: tuple[ProofFailure, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_rejected(self) -> None:
        if self.failures:
            raise IllegalScheduleError(
                f"privatization proof rejected: {self.failures[0]}"
            )

    def __str__(self) -> str:
        status = "verified" if self.ok else f"{len(self.failures)} failures"
        return (
            f"PrivatizationCheck({self.claims_checked} claims, "
            f"{self.checked_instance_pairs} instance pairs, {status})"
        )


def verify_privatization(scop: Scop, proof) -> PrivatizationCheck:
    """Re-derive every claim of a privatization proof from the SCoP.

    This is the trust boundary of the pattern portfolio: a
    ``PrivatizationProof`` arrives as *alleged* evidence and nothing in
    it is taken at face value.  The checker shares only the AST-level
    reduction matcher with the detector and recomputes all relations
    from the SCoP's access functions:

    1. every claimed statement re-matches the reduction shape, with the
       claimed array, operator group and operator;
    2. every removed relation connects two claimed statements whose
       updates commute (same array, same group);
    3. the removed pairs are a subset of the recomputed memory-based
       dependence relation — the proof cannot smuggle in extra freedom;
    4. no removed pair is induced by an access pair on any array other
       than the privatized accumulator — relaxing it would reorder
       non-accumulator state.

    Under 1-4, executing the removed pairs in any order is safe: each
    relaxed pair orders only commuting updates of an array that
    privatization gives each task a private copy of.
    """
    # the one shared component: the syntactic reduction matcher
    from ..analysis.portfolio.reduction import reduction_update_spec

    failures: list[ProofFailure] = []
    pairs_checked = 0

    specs = {}
    for claim in proof.claims:
        try:
            stmt = scop.statement(claim.statement)
        except KeyError:
            failures.append(
                ProofFailure(claim.statement, "no such statement")
            )
            continue
        spec = reduction_update_spec(stmt.assign)
        if spec is None:
            failures.append(
                ProofFailure(
                    claim.statement,
                    "statement is not a recognizable associative "
                    "accumulation",
                )
            )
        elif (
            spec.array != claim.array
            or spec.group.value != claim.group
            or spec.operator != claim.operator
        ):
            failures.append(
                ProofFailure(
                    claim.statement,
                    f"claimed {claim.group} over {claim.array!r} "
                    f"({claim.operator}) but the statement is "
                    f"{spec.describe()}",
                )
            )
        else:
            specs[claim.statement] = spec

    for rem in proof.removed:
        name = f"{rem.kind.value} {rem.source} -> {rem.target}"
        sspec = specs.get(rem.source)
        tspec = specs.get(rem.target)
        if sspec is None or tspec is None:
            failures.append(
                ProofFailure(name, "an endpoint carries no verified claim")
            )
            continue
        if sspec.array != tspec.array or sspec.group is not tspec.group:
            failures.append(
                ProofFailure(
                    name,
                    f"endpoint updates do not commute: {sspec.describe()} "
                    f"vs {tspec.describe()}",
                )
            )
            continue
        src = scop.statement(rem.source)
        tgt = scop.statement(rem.target)
        if rem.pairs.n_in != tgt.depth or rem.pairs.n_out != src.depth:
            failures.append(
                ProofFailure(name, "removed relation has wrong dimensions")
            )
            continue
        full = dependence_relation(scop, src, tgt, rem.kind)
        if not rem.pairs.difference(full).is_empty():
            failures.append(
                ProofFailure(
                    name,
                    "removed pairs are not all actual dependence pairs",
                )
            )
            continue
        others = _induced_through_others(scop, src, tgt, rem.kind, sspec.array)
        if not rem.pairs.intersect(others).is_empty():
            failures.append(
                ProofFailure(
                    name,
                    "a removed pair is also induced by a non-accumulator "
                    "access pair; relaxing it would reorder other memory",
                )
            )
            continue
        pairs_checked += len(rem.pairs)

    return PrivatizationCheck(
        len(proof.claims), len(proof.removed), pairs_checked, tuple(failures)
    )


def _induced_through_others(
    scop: Scop,
    src: ScopStatement,
    tgt: ScopStatement,
    kind: DepKind,
    accumulator: str,
) -> PointRelation:
    """Dependence pairs induced by any array other than the accumulator.

    Recomputed here from the access functions — deliberately not the
    detector's partition — so the checker stands on its own.
    """
    from ..scop.deps import _filter_execution_order

    if kind is DepKind.FLOW:
        src_accs, tgt_accs = src.writes, tgt.reads
    elif kind is DepKind.ANTI:
        src_accs, tgt_accs = src.reads, tgt.writes
    else:
        src_accs, tgt_accs = src.writes, tgt.writes

    out = PointRelation.empty(tgt.depth, src.depth)
    for sa in src_accs:
        for ta in tgt_accs:
            if sa.array != ta.array or sa.array == accumulator:
                continue
            array_id = scop.array_ids[sa.array]
            sr = sa.explicit_relation(
                src.points, src.space, array_id, scop.mem_rank
            )
            tr = ta.explicit_relation(
                tgt.points, tgt.space, array_id, scop.mem_rank
            )
            out = out.union(
                _filter_execution_order(sr.inverse().after(tr), src, tgt)
            )
    return out
