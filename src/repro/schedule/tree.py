"""Schedule trees (ISL schedule-tree analogue, Section 5.2).

The node vocabulary follows ISL: *domain* nodes introduce statement
instances, *band* nodes give a partial schedule (here always the identity,
i.e. lexicographic order over their dimensions), *sequence* nodes order
children, *mark* nodes attach payloads (the pipeline dependency info), and
*expansion* nodes expand block tuples into the iterations they contract
from.  The tree is immutable; builders in :mod:`repro.schedule.build`
assemble Algorithm 2's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..presburger import PointRelation, PointSet


class ScheduleNode:
    """Base class for schedule tree nodes."""

    child: "ScheduleNode | None"

    def walk(self) -> Iterator["ScheduleNode"]:
        yield self
        for c in self.children():
            yield from c.walk()

    def children(self) -> tuple["ScheduleNode", ...]:
        child = getattr(self, "child", None)
        return (child,) if child is not None else ()

    # ------------------------------------------------------------------
    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self._label()]
        for c in self.children():
            lines.append(c.pretty(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__

    def __str__(self) -> str:
        return self.pretty()


@dataclass(frozen=True)
class Leaf(ScheduleNode):
    """A schedule tree leaf."""

    def children(self) -> tuple[ScheduleNode, ...]:
        return ()

    def _label(self) -> str:
        return "leaf"


@dataclass(frozen=True)
class DomainNode(ScheduleNode):
    """Introduces the instances scheduled by the subtree."""

    statement: str
    domain: PointSet
    child: ScheduleNode = field(default_factory=Leaf)

    def _label(self) -> str:
        return f"domain {self.statement} ({len(self.domain)} points)"


@dataclass(frozen=True)
class BandNode(ScheduleNode):
    """A partial schedule over ``ndim`` dimensions (identity order here).

    ``coincident`` flags, as in ISL, record per-dimension parallelism; the
    pipeline transformation leaves them False (blocks of one statement run
    in order).
    """

    ndim: int
    child: ScheduleNode = field(default_factory=Leaf)
    coincident: tuple[bool, ...] = ()
    role: str = "band"  # "block" (pipeline loop) or "intra" (inside block)

    def _label(self) -> str:
        return f"band[{self.ndim}] ({self.role})"


@dataclass(frozen=True)
class SequenceNode(ScheduleNode):
    """Children execute one after another."""

    branches: tuple[ScheduleNode, ...]

    def children(self) -> tuple[ScheduleNode, ...]:
        return self.branches

    def _label(self) -> str:
        return f"sequence ({len(self.branches)} children)"


@dataclass(frozen=True)
class MarkNode(ScheduleNode):
    """An annotation carried through to AST generation."""

    name: str
    payload: Any
    child: ScheduleNode = field(default_factory=Leaf)

    def _label(self) -> str:
        return f"mark {self.name!r}"


@dataclass(frozen=True)
class ExpansionNode(ScheduleNode):
    """Expands block tuples into their member iterations.

    ``contraction`` is the combined blocking map ``E_S``: it maps each
    iteration to the block (end) that contracts it, exactly the contraction
    function Algorithm 2 passes to ISL's ``expand``.
    """

    contraction: PointRelation
    child: ScheduleNode = field(default_factory=Leaf)

    def _label(self) -> str:
        return f"expansion (|E| = {len(self.contraction)})"


@dataclass(frozen=True)
class ScheduleTree:
    """A rooted schedule tree."""

    root: ScheduleNode

    def walk(self) -> Iterator[ScheduleNode]:
        return self.root.walk()

    def marks(self, name: str | None = None) -> list[MarkNode]:
        return [
            n
            for n in self.walk()
            if isinstance(n, MarkNode) and (name is None or n.name == name)
        ]

    def pretty(self) -> str:
        return self.root.pretty()

    def __str__(self) -> str:
        return self.pretty()
