#!/usr/bin/env python3
"""Writing your own tasking layer (the paper's portability claim).

Section 7 expects the tasking layer to be replaceable "with minimal
changes".  Concretely: a backend is any object with the CreateTask
signature of Figure 7 —

    create_task(func, task_input, out_depend, out_idx,
                in_depend=(), in_idx=(), cost=1.0, statement=None)

plus ``run(workers)``.  This example implements a *tracing* backend that
wraps the bundled thread-pool backend and records the dependency traffic,
then runs the generated task program of Listing 1 through it unchanged.

Run:  python examples/custom_backend.py
"""

from repro.codegen import emit_task_program, load_task_program
from repro.interp import Interpreter
from repro.pipeline import detect_pipeline
from repro.tasking import FuturesBackend

LISTING1 = """
for(i=0; i<N-1; i++)
  for(j=0; j<N-1; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for(i=0; i<N/2-1; i++)
  for(j=0; j<N/2-1; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
"""


class TracingBackend:
    """Counts depend-clause traffic while delegating to a real backend."""

    def __init__(self, write_num: int, workers: int = 4):
        self.inner = FuturesBackend(write_num, workers)
        self.tasks_created = 0
        self.in_dependencies = 0
        self.slots_written: set[int] = set()

    def create_task(self, func, task_input, out_depend, out_idx,
                    in_depend=(), in_idx=(), cost=1.0, statement=None):
        self.tasks_created += 1
        self.in_dependencies += len(in_depend)
        self.slots_written.add(self.inner.slot(out_depend, out_idx))
        return self.inner.create_task(
            func, task_input, out_depend, out_idx, in_depend, in_idx,
            cost, statement,
        )

    def run(self, workers: int = 0):
        return self.inner.run(workers)


def main() -> None:
    interp = Interpreter.from_source(LISTING1, {"N": 14})
    info = detect_pipeline(interp.scop)
    module = load_task_program(emit_task_program(info))

    seq = interp.run_sequential(interp.new_store())
    store = interp.new_store()

    def run_block(statement, iters):
        interp.compiled[statement](store, interp.funcs, iters)

    backend = TracingBackend(write_num=module.WRITE_NUM, workers=4)
    module.build_tasks(backend, run_block)
    backend.run()

    print(f"tasks created:          {backend.tasks_created}")
    print(f"in-dependencies issued: {backend.in_dependencies}")
    print(f"distinct out slots:     {len(backend.slots_written)}")
    print(f"result matches sequential: {seq.equal(store)}")


if __name__ == "__main__":
    main()
