#!/usr/bin/env python3
"""Quickstart: cross-loop pipeline detection on the paper's Listing 1.

Walks the full stack on the motivating example of the paper:

1. parse the two-loop-nest kernel,
2. extract its SCoP and show that no loop is parallel (what stock Polly
   sees),
3. compute the pipeline map ``T_{S,R}`` (Section 4.1),
4. block the iteration domains (Section 4.2) and derive the block
   dependencies (Section 4.3),
5. build the schedule tree (Algorithm 2) and the task AST (Figure 6),
6. execute the pipelined task graph on real threads and check the result
   against sequential execution,
7. simulate the execution on a quad-core and report the speed-up.

Run:  python examples/quickstart.py
"""

from repro.interp import Interpreter
from repro.pipeline import compute_pipeline_map, detect_pipeline
from repro.schedule import build_schedule, generate_task_ast
from repro.scop import parallel_levels
from repro.tasking import TaskGraph, bind_interpreter_actions, execute, simulate

LISTING1 = """
for(i=0; i<N-1; i++)
  for(j=0; j<N-1; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);

for(i=0; i<N/2-1; i++)
  for(j=0; j<N/2-1; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
"""


def main() -> None:
    n = 20  # the size the paper instantiates in its worked example
    interp = Interpreter.from_source(LISTING1, {"N": n})
    scop = interp.scop

    print("=== SCoP ===")
    print(scop)

    print("\n=== What per-loop parallelism finds (the Polly view) ===")
    for nest in (0, 1):
        levels = parallel_levels(scop, nest)
        print(f"nest {nest}: parallel loop levels = {levels or 'none'}")

    print("\n=== Pipeline map T_{S,R} (Section 4.1) ===")
    pm = compute_pipeline_map(scop, scop.statement("S"), scop.statement("R"))
    assert pm is not None
    from repro.pipeline import describe_pipeline_map

    print(f"  {describe_pipeline_map(pm)}")
    for probe in ((0, 0), (0, 2), (0, 16), (8, 16)):
        out = pm.relation.lookup(probe)
        if out.shape[0]:
            print(f"  after S{list(probe)} finishes, R may run up to "
                  f"R{out[0].tolist()}")

    print("\n=== Blocking + dependencies (Algorithm 1) ===")
    info = detect_pipeline(scop)
    print(info.summary())

    print("\n=== Schedule tree (Algorithm 2) ===")
    print(build_schedule(info).pretty())

    print("\n=== Task AST (Figure 6) ===")
    ast = generate_task_ast(info)
    print(ast.pretty())

    print("\n=== Execute pipelined on 4 threads and verify ===")
    graph = TaskGraph.from_task_ast(ast)
    seq = interp.run_sequential(interp.new_store())
    par = interp.new_store()
    bind_interpreter_actions(graph, interp, par)
    execute(graph, workers=4)
    print(f"arrays identical to sequential execution: {seq.equal(par)}")

    print("\n=== Simulated quad-core performance ===")
    sim = simulate(graph, workers=8)
    print(f"tasks: {len(graph)}, critical path: "
          f"{graph.critical_path()[0]:.0f} units")
    print(f"sequential: {graph.total_cost():.0f} units, "
          f"pipelined makespan: {sim.makespan:.0f} units, "
          f"speed-up: {graph.total_cost() / sim.makespan:.2f}x")


if __name__ == "__main__":
    main()
