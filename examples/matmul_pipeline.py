#!/usr/bin/env python3
"""Mini Figure 11: pipeline vs Polly on 3mm and its generalized variant.

Demonstrates the paper's headline trade-off: on a plain chain of matrix
multiplications every loop nest is a parallel loop and Polly wins; on the
generalized variant (neighbour-coupled updates) both loop levels carry
dependences, Polly finds nothing, and only cross-loop pipelining gains.

Run:  python examples/matmul_pipeline.py
"""

import math

from repro.baselines import polly_decisions
from repro.bench import build_scop, run_pipeline, run_polly
from repro.workloads import MatmulKernel


def report(kernel: MatmulKernel, size: int = 24) -> None:
    scop = build_scop(kernel.source(size))
    cost = kernel.cost_model(size)

    print(f"--- {kernel.name} ({size}x{size} matrices) ---")
    for dec in polly_decisions(scop, cost.iter_costs):
        what = (
            f"parallel at loop level {dec.parallel_level}"
            if dec.parallelized
            else "sequential (both levels carry dependences)"
        )
        print(f"  nest {dec.nest_index}: {what}")

    pipe = run_pipeline(kernel.name, scop, cost)
    polly8 = run_polly(kernel.name, scop, cost, threads=8)
    pollyn = run_polly(kernel.name, scop, cost, threads=kernel.n)
    for res in (pipe, polly8, pollyn):
        print(
            f"  {res.strategy:>10}: {res.speedup:5.2f}x "
            f"(log2 = {math.log2(res.speedup):5.2f})"
        )


def main() -> None:
    report(MatmulKernel(3, "mm"))
    print()
    report(MatmulKernel(3, "gmm"))


if __name__ == "__main__":
    main()
