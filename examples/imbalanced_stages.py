#!/usr/bin/env python3
"""Section 4.4: the efficiency bounds on imbalanced loop nests.

Equation 5 bounds the pipelined running time between the heaviest nest and
the sequential total; Equation 6 decomposes it into starting time + the
heaviest nest + finishing time.  This example builds a four-nest kernel
whose third nest dominates, simulates the pipelined schedule, prints an
ASCII timeline (the paper's Figure 5), and checks the bounds.

Run:  python examples/imbalanced_stages.py
"""

from repro.baselines import nest_costs, sequential_time
from repro.bench import ascii_timeline, build_scop, pipeline_task_graph
from repro.tasking import simulate
from repro.workloads import CostModel

KERNEL = """
for(i=0; i<32; i++)
  for(j=0; j<32; j++)
    S1: A1[i][j] = compute(A1[i][j]);
for(i=0; i<32; i++)
  for(j=0; j<32; j++)
    S2: A2[i][j] = compute(A2[i][j], A1[i][j]);
for(i=0; i<32; i++)
  for(j=0; j<32; j++)
    S3: A3[i][j] = compute(A3[i][j], A2[i][j]);
for(i=0; i<32; i++)
  for(j=0; j<32; j++)
    S4: A4[i][j] = compute(A4[i][j], A3[i][j]);
"""

#: The third nest is 6x heavier than the others (Figure 5's L_max).
COSTS = CostModel({"S1": 1.0, "S2": 1.0, "S3": 6.0, "S4": 1.0})


def main() -> None:
    scop = build_scop(KERNEL)
    seq = sequential_time(scop, COSTS.iter_costs)
    per_nest = nest_costs(scop, COSTS.iter_costs)
    l_max = max(per_nest.values())

    graph = pipeline_task_graph(scop, COSTS)
    sim = simulate(graph, workers=8)

    print("per-nest cost:", {k: f"{v:.0f}" for k, v in per_nest.items()})
    print(f"sequential total: {seq:.0f}, heaviest nest L_max: {l_max:.0f}")
    print(f"pipelined makespan: {sim.makespan:.0f} "
          f"(speed-up {seq / sim.makespan:.2f}x)")
    print(f"Equation 5 holds: "
          f"{l_max:.0f} <= {sim.makespan:.0f} <= {seq:.0f} -> "
          f"{l_max <= sim.makespan <= seq}")
    print("\ntimeline (Figure 5): each row is one loop nest\n")
    print(ascii_timeline(graph, sim))


if __name__ == "__main__":
    main()
