#!/usr/bin/env python3
"""Listing 3: three loop nests and the combined blocking of Section 4.2.

The third nest U depends on *both* S (via ``A[2i][2j]``) and R (via
``B[i][j]``), so S ends up with two source blocking maps and U with two
target blocking maps; Equation 3 refines them into one blocking per
statement.  The example also dumps the generated task program (the
Section 5.4 code generation) and runs it through the CreateTask layer.

Run:  python examples/three_nests.py
"""

from repro.codegen import emit_task_program, run_generated
from repro.interp import Interpreter
from repro.pipeline import detect_pipeline
from repro.schedule import generate_task_ast

LISTING3 = """
for(i=0; i<N-1; i++)
  for(j=0; j<N-1; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);

for(i=0; i<N/2-1; i++)
  for(j=0; j<N/2-1; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);

for(i=0; i<N/2-1; i++)
  for(j=0; j<N/2-1; j++)
    U: C[i][j] = h(A[2*i][2*j], B[i][j], C[i][j+1], C[i+1][j+1], C[i][j]);
"""


def main() -> None:
    interp = Interpreter.from_source(LISTING3, {"N": 16})
    info = detect_pipeline(interp.scop)

    print("=== Pipeline maps found (Algorithm 1) ===")
    for (src, tgt), pm in sorted(info.pipeline_maps.items()):
        print(f"  {src} -> {tgt}: {len(pm.relation)} anchors")

    print("\n=== Combined blockings (Equation 3) ===")
    for name, blocking in info.blockings.items():
        sources = [d.source for d in info.in_deps[name]]
        print(f"  {name}: {blocking.num_blocks} blocks"
              + (f", waits on {sources}" if sources else ""))

    print("\n=== Task AST (the paper's Figure 6) ===")
    print(generate_task_ast(info).pretty())

    print("\n=== Generated task program (Section 5.4), head ===")
    source = emit_task_program(info)
    print("\n".join(source.splitlines()[:30]))
    print(f"... ({len(source.splitlines())} lines total)")

    print("\n=== Run the generated program through CreateTask ===")
    seq = interp.run_sequential(interp.new_store())
    store = interp.new_store()
    _, system, result = run_generated(info, interp, store, workers=4)
    print(f"tasks created: {len(system)}, run ok: {result.ok}, "
          f"matches sequential: {seq.equal(store)}")


if __name__ == "__main__":
    main()
