// Deliberately non-pipelinable: R consumes A in fully reversed order,
// so R's first iteration already needs S's last one — the pipeline map
// of Section 4.1 degenerates to a full barrier, and fusion would run
// the dependence backwards.  `repro analyze` classifies the nest pair
// as sequential and names the blocking access pair (rule RPA031).
for(i=0; i<N; i++)
  for(j=0; j<N; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);

for(i=0; i<N; i++)
  for(j=0; j<N; j++)
    R: B[i][j] = g(A[N-1-i][N-1-j], B[i][j+1], B[i+1][j+1], B[i][j]);
