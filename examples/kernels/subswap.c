// Counterexample: T = e - T is NOT an associative accumulation (the
// update x -> e - x does not commute with itself), so although the
// shape mirrors histogram.c — same array, reversed second pass, full
// dependence barrier — the portfolio must NOT reclassify this pair.
// It stays sequential, guarding against false privatization claims.
for(i=0; i<N; i++)
  for(j=0; j<N; j++)
    S: T[i][j] = A[i][j] - T[i][j];

for(i=0; i<N; i++)
  for(j=0; j<N; j++)
    R: T[N-1-i][N-1-j] = B[i][j] - T[N-1-i][N-1-j];
