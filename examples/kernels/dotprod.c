// Dot product: the canonical sum reduction into a single cell.
// The write s[0] is non-injective (every iteration hits the same cell),
// so strict validation rejects the kernel for pipelining — but the
// pattern portfolio proves the statement is an associative sum
// accumulation, downgrades the over-write to RPA055 and reports the
// nest as a privatizable reduction.
for(i=0; i<N; i++)
  S: s[0] += dot(a[i], b[i]);
